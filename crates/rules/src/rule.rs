//! Association rules from closed sets.
//!
//! Rules are generated in the classic single-consequent form: for every
//! closed frequent set `Z` and every item `i ∈ Z` (with `|Z| ≥ 2`), the
//! candidate rule is `Z \ {i} → {i}`. Antecedent supports come from the
//! [`ClosedSupportOracle`], so no second mining pass over the database is
//! needed. Confidence and lift are computed from absolute supports.

use crate::oracle::ClosedSupportOracle;
use fim_core::{ItemSet, MiningResult};

/// One association rule `antecedent → consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct AssociationRule {
    /// The rule body (non-empty).
    pub antecedent: ItemSet,
    /// The rule head (a single item in the generated basis).
    pub consequent: ItemSet,
    /// Absolute support of `antecedent ∪ consequent`.
    pub support: u32,
    /// `supp(A ∪ C) / supp(A)`.
    pub confidence: f64,
    /// `confidence / (supp(C) / n)` — how much the rule beats independence.
    pub lift: f64,
}

impl AssociationRule {
    /// Relative support w.r.t. `n` transactions.
    pub fn relative_support(&self, n: u32) -> f64 {
        f64::from(self.support) / f64::from(n.max(1))
    }
}

/// Generates association rules from a closed-set mining result.
#[derive(Clone, Copy, Debug)]
pub struct RuleMiner {
    /// Minimum confidence for a rule to be reported.
    pub min_confidence: f64,
    /// Minimum lift for a rule to be reported (use 0.0 to disable).
    pub min_lift: f64,
}

impl Default for RuleMiner {
    fn default() -> Self {
        RuleMiner {
            min_confidence: 0.6,
            min_lift: 0.0,
        }
    }
}

impl RuleMiner {
    /// Creates a miner with a confidence threshold.
    pub fn with_confidence(min_confidence: f64) -> Self {
        RuleMiner {
            min_confidence,
            ..Default::default()
        }
    }

    /// Derives single-consequent rules from `closed` (a closed-set mining
    /// result over `total_transactions` transactions).
    ///
    /// Rules whose antecedent support cannot be reconstructed (impossible
    /// when `closed` is complete for its threshold) are skipped defensively.
    pub fn derive(&self, closed: &MiningResult, total_transactions: u32) -> Vec<AssociationRule> {
        let oracle = ClosedSupportOracle::new(closed);
        let n = total_transactions.max(1);
        let mut rules = Vec::new();
        for z in &closed.sets {
            if z.items.len() < 2 {
                continue;
            }
            for item in z.items.iter() {
                let consequent = ItemSet::from([item]);
                let antecedent = z.items.minus(&consequent);
                let Some(ante_supp) = oracle.support_of(&antecedent) else {
                    continue;
                };
                let Some(cons_supp) = oracle.support_of(&consequent) else {
                    continue;
                };
                let confidence = f64::from(z.support) / f64::from(ante_supp);
                let lift = confidence / (f64::from(cons_supp) / f64::from(n));
                if confidence >= self.min_confidence && lift >= self.min_lift {
                    rules.push(AssociationRule {
                        antecedent,
                        consequent,
                        support: z.support,
                        confidence,
                        lift,
                    });
                }
            }
        }
        // deduplicate: the same rule can arise from different closed sets
        // when the antecedent is not closed; keep the max-support instance
        rules.sort_by(|a, b| {
            (&a.antecedent, &a.consequent, std::cmp::Reverse(a.support)).cmp(&(
                &b.antecedent,
                &b.consequent,
                std::cmp::Reverse(b.support),
            ))
        });
        rules.dedup_by(|next, keep| {
            next.antecedent == keep.antecedent && next.consequent == keep.consequent
        });
        // strongest first
        rules.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.support.cmp(&a.support))
        });
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::{mine_all_frequent, mine_reference};
    use fim_core::RecodedDatabase;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn rule_metrics_are_consistent() {
        let db = paper_db();
        let closed = mine_reference(&db, 2);
        let rules = RuleMiner::with_confidence(0.0).derive(&closed, 8);
        assert!(!rules.is_empty());
        for r in &rules {
            let union = r.antecedent.union(&r.consequent);
            assert_eq!(db.support(&union), r.support, "{r:?}");
            let ante = db.support(&r.antecedent);
            assert!((r.confidence - f64::from(r.support) / f64::from(ante)).abs() < 1e-12);
            let cons = db.support(&r.consequent);
            let expected_lift = r.confidence / (f64::from(cons) / 8.0);
            assert!((r.lift - expected_lift).abs() < 1e-9, "{r:?}");
            assert!(r.confidence <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn known_rule_e_implies_d() {
        // every transaction containing e also contains d (cover(e) = cover(de))
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let rules = RuleMiner::with_confidence(0.99).derive(&closed, 8);
        let rule = rules
            .iter()
            .find(|r| r.antecedent == ItemSet::from([4]) && r.consequent == ItemSet::from([3]));
        let rule = rule.expect("rule {e} -> {d} must be found");
        assert_eq!(rule.support, 3);
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        // lift = 1.0 / (6/8)
        assert!((rule.lift - 8.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn confidence_threshold_filters() {
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let strict = RuleMiner::with_confidence(0.95).derive(&closed, 8);
        let lax = RuleMiner::with_confidence(0.1).derive(&closed, 8);
        assert!(strict.len() < lax.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.95));
    }

    #[test]
    fn lift_threshold_filters() {
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let miner = RuleMiner {
            min_confidence: 0.0,
            min_lift: 1.5,
        };
        let rules = miner.derive(&closed, 8);
        assert!(rules.iter().all(|r| r.lift >= 1.5));
    }

    #[test]
    fn no_duplicate_rules() {
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let rules = RuleMiner::with_confidence(0.0).derive(&closed, 8);
        let mut seen = std::collections::HashSet::new();
        for r in &rules {
            assert!(
                seen.insert((r.antecedent.clone(), r.consequent.clone())),
                "duplicate {r:?}"
            );
        }
    }

    #[test]
    fn rules_ordered_by_confidence() {
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let rules = RuleMiner::with_confidence(0.0).derive(&closed, 8);
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn rules_from_closed_match_rules_from_all_frequent() {
        // supports reconstructed from closed sets must equal direct counts,
        // so rule metrics agree with what all-frequent mining would yield
        let db = paper_db();
        let closed = mine_reference(&db, 2);
        let all = mine_all_frequent(&db, 2);
        let rules = RuleMiner::with_confidence(0.0).derive(&closed, 8);
        for r in &rules {
            let union = r.antecedent.union(&r.consequent);
            assert_eq!(all.support_of(&union), Some(r.support));
        }
    }

    #[test]
    fn relative_support() {
        let r = AssociationRule {
            antecedent: ItemSet::from([0]),
            consequent: ItemSet::from([1]),
            support: 4,
            confidence: 1.0,
            lift: 1.0,
        };
        assert!((r.relative_support(8) - 0.5).abs() < 1e-12);
    }
}

//! Support reconstruction from closed sets (paper §2.3).
//!
//! Every frequent item set has a uniquely determined closed superset with
//! the same support, so `supp(F) = max { supp(C) : C closed ⊇ F }` — the
//! maximum, because no superset can have greater support (the apriori
//! property). The oracle indexes the closed sets by item so that a query
//! only scans the sets containing the query's least frequent item.

use fim_core::{Item, ItemSet, MiningResult};

/// Reconstructs supports of arbitrary frequent item sets from a closed-set
/// mining result.
#[derive(Clone, Debug)]
pub struct ClosedSupportOracle {
    sets: Vec<(ItemSet, u32)>,
    /// Per item: indices into `sets` of the closed sets containing it.
    by_item: Vec<Vec<u32>>,
    num_items: usize,
}

impl ClosedSupportOracle {
    /// Builds the oracle from a mining result (any item-code space; the
    /// index adapts to the largest code present).
    pub fn new(result: &MiningResult) -> Self {
        let num_items = result
            .sets
            .iter()
            .filter_map(|s| s.items.max_item())
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut by_item: Vec<Vec<u32>> = vec![Vec::new(); num_items];
        let mut sets = Vec::with_capacity(result.sets.len());
        for (idx, s) in result.sets.iter().enumerate() {
            for item in s.items.iter() {
                by_item[item as usize].push(idx as u32);
            }
            sets.push((s.items.clone(), s.support));
        }
        ClosedSupportOracle {
            sets,
            by_item,
            num_items,
        }
    }

    /// Number of indexed closed sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the oracle is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The support of `items`, or `None` when no closed superset exists
    /// (the set is infrequent at the mining threshold, or out of universe).
    pub fn support_of(&self, items: &ItemSet) -> Option<u32> {
        let Some(first) = items.min_item() else {
            // the empty set's support is the total transaction count, which
            // the closed sets alone do not determine; treat as unknown
            return None;
        };
        // scan the shortest per-item posting list among the query items
        let mut best_item: Item = first;
        let mut best_len = usize::MAX;
        for item in items.iter() {
            let len = self
                .by_item
                .get(item as usize)
                .map_or(0, |postings| postings.len());
            if len < best_len {
                best_len = len;
                best_item = item;
            }
        }
        if best_len == 0 {
            return None;
        }
        self.by_item[best_item as usize]
            .iter()
            .filter_map(|&idx| {
                let (set, supp) = &self.sets[idx as usize];
                items.is_subset_of(set).then_some(*supp)
            })
            .max()
    }

    /// The closure of `items` among the indexed sets: the smallest closed
    /// superset carrying the maximal support, if any.
    pub fn closure_of(&self, items: &ItemSet) -> Option<&ItemSet> {
        let supp = self.support_of(items)?;
        items.min_item().and_then(|_| {
            let mut best_item = items.min_item().unwrap();
            let mut best_len = usize::MAX;
            for item in items.iter() {
                let len = self.by_item[item as usize].len();
                if len < best_len {
                    best_len = len;
                    best_item = item;
                }
            }
            self.by_item[best_item as usize]
                .iter()
                .filter_map(|&idx| {
                    let (set, s) = &self.sets[idx as usize];
                    (*s == supp && items.is_subset_of(set)).then_some(set)
                })
                .min_by_key(|set| set.len())
        })
    }

    /// The item universe size the oracle was built over.
    pub fn num_items(&self) -> usize {
        self.num_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::{mine_all_frequent, mine_reference};
    use fim_core::RecodedDatabase;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn reconstructs_every_frequent_support() {
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let oracle = ClosedSupportOracle::new(&closed);
        let all = mine_all_frequent(&db, 1);
        for f in &all.sets {
            assert_eq!(
                oracle.support_of(&f.items),
                Some(f.support),
                "set {:?}",
                f.items
            );
        }
    }

    #[test]
    fn infrequent_sets_are_none() {
        let db = paper_db();
        let closed = mine_reference(&db, 3);
        let oracle = ClosedSupportOracle::new(&closed);
        // {a,e} has support 1 < 3 → no closed superset at this threshold
        assert_eq!(oracle.support_of(&ItemSet::from([0, 4])), None);
        // {b,e} never co-occurs
        assert_eq!(oracle.support_of(&ItemSet::from([1, 4])), None);
    }

    #[test]
    fn closure_of_returns_smallest_equal_support_superset() {
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let oracle = ClosedSupportOracle::new(&closed);
        // closure of {e} is {d,e}
        assert_eq!(
            oracle.closure_of(&ItemSet::from([4])),
            Some(&ItemSet::from([3, 4]))
        );
        // a closed set is its own closure
        assert_eq!(
            oracle.closure_of(&ItemSet::from([1, 2])),
            Some(&ItemSet::from([1, 2]))
        );
    }

    #[test]
    fn empty_query_and_empty_oracle() {
        let oracle = ClosedSupportOracle::new(&MiningResult::new());
        assert!(oracle.is_empty());
        assert_eq!(oracle.support_of(&ItemSet::from([0])), None);
        assert_eq!(oracle.support_of(&ItemSet::empty()), None);
        assert_eq!(oracle.num_items(), 0);
    }

    #[test]
    fn out_of_universe_item() {
        let db = paper_db();
        let closed = mine_reference(&db, 1);
        let oracle = ClosedSupportOracle::new(&closed);
        assert_eq!(oracle.support_of(&ItemSet::from([42])), None);
    }
}

//! # fim-rules
//!
//! Association rule induction on top of closed frequent item sets — the
//! application that motivated frequent item set mining in the first place
//! (paper §1–2) and the reason closed sets are the preferred condensed
//! representation: they preserve every frequent set's support.
//!
//! * [`ClosedSupportOracle`] reconstructs the support of *any* frequent
//!   item set from the closed sets alone, using the paper's §2.3 identity:
//!   `supp(F) = max { supp(C) : C closed, F ⊆ C }`.
//! * [`RuleMiner`] derives association rules `X → Y` with support,
//!   confidence, and lift from a closed-set mining result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod rule;

pub use oracle::ClosedSupportOracle;
pub use rule::{AssociationRule, RuleMiner};

//! Property tests: support reconstruction and rule metrics against direct
//! counting on random databases.

use fim_core::reference::{mine_all_frequent, mine_reference};
use fim_core::{ItemSet, RecodedDatabase};
use fim_rules::{ClosedSupportOracle, RuleMiner};
use proptest::collection::vec;
use proptest::prelude::*;

fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=8).prop_flat_map(|m| {
        vec(vec(0..m, 1..=m as usize), 1..10)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn oracle_reconstructs_all_frequent_supports(db in small_db(), minsupp in 1u32..4) {
        let closed = mine_reference(&db, minsupp);
        let oracle = ClosedSupportOracle::new(&closed);
        for f in &mine_all_frequent(&db, minsupp).sets {
            prop_assert_eq!(oracle.support_of(&f.items), Some(f.support));
        }
    }

    #[test]
    fn oracle_rejects_infrequent_sets(db in small_db(), minsupp in 2u32..5) {
        let closed = mine_reference(&db, minsupp);
        let oracle = ClosedSupportOracle::new(&closed);
        // any set whose true support is below minsupp must return None
        for i in 0..db.num_items() {
            for j in (i + 1)..db.num_items() {
                let s = ItemSet::from([i, j]);
                let true_supp = db.support(&s);
                if true_supp < minsupp {
                    prop_assert_eq!(oracle.support_of(&s), None, "set {:?}", s);
                } else {
                    prop_assert_eq!(oracle.support_of(&s), Some(true_supp));
                }
            }
        }
    }

    #[test]
    fn rule_metrics_match_direct_counts(db in small_db(), minsupp in 1u32..4) {
        let closed = mine_reference(&db, minsupp);
        let n = db.num_transactions() as u32;
        let rules = RuleMiner { min_confidence: 0.0, min_lift: 0.0 }.derive(&closed, n);
        for r in &rules {
            let union = r.antecedent.union(&r.consequent);
            prop_assert_eq!(db.support(&union), r.support);
            let ante = db.support(&r.antecedent);
            prop_assert!(ante >= r.support);
            let conf = f64::from(r.support) / f64::from(ante);
            prop_assert!((r.confidence - conf).abs() < 1e-12);
            let cons = db.support(&r.consequent);
            let lift = conf / (f64::from(cons) / f64::from(n));
            prop_assert!((r.lift - lift).abs() < 1e-9);
        }
    }

    #[test]
    fn thresholds_are_respected(db in small_db(), conf in 0.0f64..1.0, lift in 0.5f64..2.0) {
        let closed = mine_reference(&db, 1);
        let rules = RuleMiner { min_confidence: conf, min_lift: lift }
            .derive(&closed, db.num_transactions() as u32);
        for r in &rules {
            prop_assert!(r.confidence >= conf);
            prop_assert!(r.lift >= lift);
            prop_assert!(!r.antecedent.is_empty());
            prop_assert_eq!(r.consequent.len(), 1);
        }
    }

    #[test]
    fn maximal_sets_consistent_with_oracle(db in small_db(), minsupp in 1u32..4) {
        // every frequent set is a subset of some maximal set, and the
        // oracle agrees on its support
        let closed = mine_reference(&db, minsupp);
        let maximal = fim_core::maximal_from_closed(&closed);
        let oracle = ClosedSupportOracle::new(&closed);
        for f in &mine_all_frequent(&db, minsupp).sets {
            prop_assert!(maximal.sets.iter().any(|m| f.items.is_subset_of(&m.items)));
            prop_assert_eq!(oracle.support_of(&f.items), Some(f.support));
        }
    }
}

//! The malformed-input corpus under `tests/data/malformed/`: every file
//! must be rejected with a [`FimError::Parse`] carrying the right line
//! number — never a panic, never a silent partial read. The same corpus is
//! fed to the CLI by the CI fault-injection job, which asserts the
//! documented parse exit code.

use fim_core::FimError;
use fim_io::fimi::{read_fimi_path_with_limits, FimiLimits};
use fim_io::read_fimi_path;
use std::path::PathBuf;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

fn expect_parse_at(result: Result<fim_core::TransactionDatabase, FimError>, line: usize) {
    match result {
        Err(FimError::Parse { line: got, message }) => {
            assert_eq!(got, line, "wrong line in: {message}");
        }
        Err(other) => panic!("expected a parse error, got {other}"),
        Ok(db) => panic!(
            "malformed file was accepted ({} transactions)",
            db.num_transactions()
        ),
    }
}

#[test]
fn valid_file_parses() {
    let db = read_fimi_path(data("valid.fimi")).expect("valid corpus file");
    assert_eq!(db.num_transactions(), 3);
    assert_eq!(db.num_items(), 4);
}

#[test]
fn control_char_rejected() {
    expect_parse_at(read_fimi_path(data("malformed/control_char.fimi")), 2);
}

#[test]
fn huge_item_code_rejected() {
    expect_parse_at(read_fimi_path(data("malformed/huge_code.fimi")), 2);
}

#[test]
fn negative_item_code_rejected() {
    expect_parse_at(read_fimi_path(data("malformed/negative_code.fimi")), 2);
}

#[test]
fn invalid_utf8_rejected() {
    expect_parse_at(read_fimi_path(data("malformed/not_utf8.fimi")), 2);
}

#[test]
fn over_long_line_rejected_under_tight_limit() {
    let limits = FimiLimits {
        max_line_bytes: 1024,
        ..FimiLimits::default()
    };
    expect_parse_at(
        read_fimi_path_with_limits(data("malformed/long_line.fimi"), &limits),
        2,
    );
}

#[test]
fn corpus_is_complete() {
    // guard against corpus files being added without a matching test
    let dir = data("malformed");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("malformed corpus directory")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "control_char.fimi",
            "huge_code.fimi",
            "long_line.fimi",
            "negative_code.fimi",
            "not_utf8.fimi",
        ]
    );
}

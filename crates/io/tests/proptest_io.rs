//! Property tests: FIMI and matrix round-trips on random inputs.

use fim_io::{read_fimi, read_matrix, write_fimi, write_matrix};
use fim_synth::ExpressionMatrix;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fimi_roundtrip_random_databases(txs in vec(vec(0u32..30, 0..10usize), 0..20)) {
        let db = fim_core::TransactionDatabase::from_codes(txs);
        let mut buf = Vec::new();
        write_fimi(&db, &mut buf).unwrap();
        let back = read_fimi(&buf[..]).unwrap();
        prop_assert_eq!(back.num_transactions(), db.num_transactions());
        // name-level equality: each transaction maps to the same name sets
        for (a, b) in db.transactions().iter().zip(back.transactions()) {
            let na: Vec<&str> = a.iter().map(|i| db.catalog().name(i).unwrap()).collect();
            let mut nb: Vec<&str> = b.iter().map(|i| back.catalog().name(i).unwrap()).collect();
            let mut na = na;
            na.sort_unstable();
            nb.sort_unstable();
            prop_assert_eq!(na, nb);
        }
    }

    #[test]
    fn matrix_roundtrip_random_values(
        genes in 1usize..8,
        conditions in 1usize..8,
        raw in vec(-100i32..100, 0..64),
    ) {
        let mut values: Vec<f64> = raw.into_iter().map(|x| f64::from(x) / 16.0).collect();
        values.resize(genes * conditions, 0.25);
        let m = ExpressionMatrix::from_values(genes, conditions, values);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back = read_matrix(&buf[..]).unwrap();
        prop_assert_eq!(back.genes(), genes);
        prop_assert_eq!(back.conditions(), conditions);
        prop_assert_eq!(back.values(), m.values());
    }

    #[test]
    fn fimi_mining_survives_roundtrip(
        txs in vec(vec(0u32..8, 1..6usize), 1..10),
        minsupp in 1u32..4,
    ) {
        use fim_core::{mine_closed, reference::ReferenceMiner};
        let db = fim_core::TransactionDatabase::from_codes(txs);
        let mut buf = Vec::new();
        write_fimi(&db, &mut buf).unwrap();
        let back = read_fimi(&buf[..]).unwrap();
        // supports of closed sets are invariant under the roundtrip
        let a = mine_closed(&db, minsupp, &ReferenceMiner);
        let b = mine_closed(&back, minsupp, &ReferenceMiner);
        let mut sa: Vec<(usize, u32)> = a.sets.iter().map(|s| (s.items.len(), s.support)).collect();
        let mut sb: Vec<(usize, u32)> = b.sets.iter().map(|s| (s.items.len(), s.support)).collect();
        sa.sort_unstable();
        sb.sort_unstable();
        prop_assert_eq!(sa, sb);
    }
}

//! Named-catalog stream checkpoints: persisting an [`IstaStream`] together
//! with the item-name catalog of the transaction source feeding it.
//!
//! The raw tree snapshot of [`fim_ista::snapshot`] stores item *codes*
//! only. A stream fed from a FIMI file, however, interns item *names* in
//! order of appearance — resuming such a stream in a fresh process needs
//! the name ↔ code mapping back, or the continuation would silently remap
//! items. This module wraps the tree snapshot with the catalog:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"ISTC"
//!      4     4  format version (little-endian u32, currently 1)
//!      8     4  name_count — must equal the tree's item universe
//!     12     …  names      — per name: u32 byte length + UTF-8 bytes
//!      …     4  crc32      — IEEE CRC-32 of bytes 4..here
//!      …     …  tree       — an embedded fim-ista snapshot (own CRC)
//! ```
//!
//! Every load failure — truncation, bit flips, a name count that does not
//! match the tree universe, trailing garbage — is a [`FimError::Corrupt`].

use fim_core::{catalog::ItemCatalog, FimError};
use fim_ista::snapshot::crc32;
use fim_ista::IstaStream;
use std::io::{Read, Write};

/// Magic bytes opening every named-catalog checkpoint.
pub const MAGIC: [u8; 4] = *b"ISTC";

/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// Longest accepted item name in bytes (far above any real token; a cap so
/// a corrupt length field cannot trigger a huge allocation).
const MAX_NAME_BYTES: u32 = 1 << 16;

/// Writes `stream` plus the `catalog` that names its item codes.
///
/// The catalog must cover exactly the stream's item universe (code `i`
/// named for every `i < num_items`); anything else is a
/// [`FimError::InvalidInput`]. Compacts the stream's tree first
/// (output-invariant).
pub fn write_stream_checkpoint(
    stream: &mut IstaStream,
    catalog: &ItemCatalog,
    w: &mut dyn Write,
) -> Result<(), FimError> {
    if catalog.len() != stream.num_items() as usize {
        return Err(FimError::InvalidInput(format!(
            "catalog names {} items but the stream universe has {}",
            catalog.len(),
            stream.num_items()
        )));
    }
    let mut header: Vec<u8> = Vec::new();
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&(catalog.len() as u32).to_le_bytes());
    for code in 0..catalog.len() as u32 {
        let name = catalog.name(code).ok_or_else(|| {
            FimError::InvalidInput(format!("item code {code} has no catalog name"))
        })?;
        let bytes = name.as_bytes();
        if bytes.len() as u64 > u64::from(MAX_NAME_BYTES) {
            return Err(FimError::InvalidInput(format!(
                "item name for code {code} exceeds {MAX_NAME_BYTES} bytes"
            )));
        }
        header.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        header.extend_from_slice(bytes);
    }
    w.write_all(&MAGIC)?;
    w.write_all(&header)?;
    w.write_all(&crc32(&header).to_le_bytes())?;
    stream.write_snapshot(w)
}

/// Reads a checkpoint written by [`write_stream_checkpoint`], returning the
/// resumed stream and the reconstructed catalog. The input must end exactly
/// at the embedded tree snapshot's end; trailing bytes are corruption.
pub fn read_stream_checkpoint(r: &mut dyn Read) -> Result<(IstaStream, ItemCatalog), FimError> {
    let r = &mut CountingReader {
        inner: r,
        offset: 0,
    };
    let mut magic = [0u8; 4];
    read_exact(r, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(FimError::Corrupt(format!(
            "bad checkpoint magic {magic:02x?}, expected {MAGIC:02x?}"
        )));
    }
    let mut header: Vec<u8> = Vec::new();
    let version = read_u32(r, &mut header, "version")?;
    if version != VERSION {
        return Err(FimError::Corrupt(format!(
            "unsupported checkpoint version {version} (this build reads {VERSION})"
        )));
    }
    let name_count = read_u32(r, &mut header, "name count")?;
    let mut catalog = ItemCatalog::new();
    for code in 0..name_count {
        let len = read_u32(r, &mut header, "name length")?;
        if len > MAX_NAME_BYTES {
            return Err(FimError::Corrupt(format!(
                "name length {len} for code {code} exceeds {MAX_NAME_BYTES} bytes"
            )));
        }
        let start = header.len();
        header.resize(start + len as usize, 0);
        read_exact(r, &mut header[start..], "name bytes")?;
        let name = std::str::from_utf8(&header[start..])
            .map_err(|_| FimError::Corrupt(format!("name for code {code} is not UTF-8")))?;
        let interned = catalog.intern(name);
        if interned != code {
            return Err(FimError::Corrupt(format!(
                "duplicate item name `{name}` (codes {interned} and {code})"
            )));
        }
    }
    let mut crc_bytes = [0u8; 4];
    read_exact(r, &mut crc_bytes, "catalog crc")?;
    let expected = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&header);
    if actual != expected {
        return Err(FimError::Corrupt(format!(
            "catalog crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
        )));
    }
    let stream = IstaStream::read_snapshot(r)?;
    if stream.num_items() as usize != catalog.len() {
        return Err(FimError::Corrupt(format!(
            "catalog names {} items but the tree universe has {}",
            catalog.len(),
            stream.num_items()
        )));
    }
    let mut trailing = [0u8; 1];
    match r.read(&mut trailing) {
        Ok(0) => Ok((stream, catalog)),
        Ok(_) => Err(FimError::Corrupt(
            "trailing bytes after the tree snapshot".into(),
        )),
        Err(e) => Err(FimError::Io(e)),
    }
}

/// Tracks how many bytes have been consumed, so a truncation error can say
/// exactly where the checkpoint ended.
struct CountingReader<'a> {
    inner: &'a mut dyn Read,
    offset: u64,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.offset += n as u64;
        Ok(n)
    }
}

/// Reads 4 little-endian bytes, appending them to the CRC-covered header.
fn read_u32(r: &mut CountingReader, header: &mut Vec<u8>, what: &str) -> Result<u32, FimError> {
    let mut buf = [0u8; 4];
    read_exact(r, &mut buf, what)?;
    header.extend_from_slice(&buf);
    Ok(u32::from_le_bytes(buf))
}

fn read_exact(r: &mut CountingReader, buf: &mut [u8], what: &str) -> Result<(), FimError> {
    // Read::read_exact consumes whatever partial bytes exist before
    // reporting EOF, so r.offset afterwards is the actual stream length.
    let wanted = buf.len() as u64;
    let start = r.offset;
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FimError::Corrupt(format!(
                "truncated checkpoint while reading {what}: \
                 need bytes {start}..{} but input ends at byte {}",
                start + wanted,
                r.offset
            ))
        } else {
            FimError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_fimi;

    /// Feeds a FIMI text into a fresh stream + catalog pair.
    fn stream_from(text: &str) -> (IstaStream, ItemCatalog) {
        let db = read_fimi(text.as_bytes()).expect("valid text");
        let mut stream = IstaStream::new(db.num_items() as u32);
        for t in db.transactions() {
            stream.push(t.as_slice());
        }
        (stream, db.catalog().clone())
    }

    fn checkpoint(stream: &mut IstaStream, catalog: &ItemCatalog) -> Vec<u8> {
        let mut buf = Vec::new();
        write_stream_checkpoint(stream, catalog, &mut buf).expect("write to Vec");
        buf
    }

    #[test]
    fn round_trip_restores_stream_and_names() {
        let (mut stream, catalog) = stream_from("milk bread\nbread butter\nmilk butter\n");
        let buf = checkpoint(&mut stream, &catalog);
        let (resumed, names) = read_stream_checkpoint(&mut buf.as_slice()).expect("round trip");
        assert_eq!(names.len(), catalog.len());
        for code in 0..catalog.len() as u32 {
            assert_eq!(names.name(code), catalog.name(code));
        }
        assert_eq!(resumed.closed_sets(1), stream.closed_sets(1));
        assert_eq!(
            resumed.transactions_processed(),
            stream.transactions_processed()
        );
    }

    #[test]
    fn resumed_stream_continues_with_consistent_interning() {
        let (mut stream, catalog) = stream_from("a b\nb c\n");
        let buf = checkpoint(&mut stream, &catalog);
        let (mut resumed, mut names) =
            read_stream_checkpoint(&mut buf.as_slice()).expect("round trip");
        // the continuation sees a new item name; interning must mint the
        // next code, exactly as the uninterrupted run would have
        let code_b = names.code("b").expect("b known");
        let code_d = names.intern("d");
        assert_eq!(code_d, 3);
        resumed.grow_universe(names.len() as u32);
        resumed.push(&[code_b, code_d]);
        stream.grow_universe(4);
        stream.push(&[1, 3]);
        assert_eq!(resumed.closed_sets(1), stream.closed_sets(1));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (mut stream, catalog) = stream_from("x y\ny z\n");
        let buf = checkpoint(&mut stream, &catalog);
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x01;
            assert!(
                read_stream_checkpoint(&mut bad.as_slice()).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_anywhere_is_corrupt_not_panic() {
        let (mut stream, catalog) = stream_from("x y\ny z\n");
        let buf = checkpoint(&mut stream, &catalog);
        for len in 0..buf.len() {
            let err = read_stream_checkpoint(&mut &buf[..len]).unwrap_err();
            assert!(
                matches!(err, FimError::Corrupt(_)),
                "truncation at {len}: {err}"
            );
        }
    }

    #[test]
    fn truncation_error_reports_the_byte_offset() {
        let (mut stream, catalog) = stream_from("x y\ny z\n");
        let buf = checkpoint(&mut stream, &catalog);
        // cut inside the catalog header: past the magic, before the crc
        let cut = 10;
        let err = read_stream_checkpoint(&mut &buf[..cut]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("truncated checkpoint"), "{msg}");
        assert!(msg.contains(&format!("ends at byte {cut}")), "{msg}");
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let (mut stream, catalog) = stream_from("x y\n");
        let mut buf = checkpoint(&mut stream, &catalog);
        buf.push(0xAB);
        let err = read_stream_checkpoint(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn mismatched_catalog_rejected_at_write_time() {
        let (mut stream, _) = stream_from("a b c\n");
        let small = ItemCatalog::new();
        let mut buf = Vec::new();
        let err = write_stream_checkpoint(&mut stream, &small, &mut buf).unwrap_err();
        assert!(matches!(err, FimError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn oversized_name_length_field_rejected_without_allocation() {
        let (mut stream, catalog) = stream_from("a\n");
        let buf = checkpoint(&mut stream, &catalog);
        let mut bad = buf.clone();
        // name_count lives at bytes 8..12; the first name length at 12..16
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_stream_checkpoint(&mut bad.as_slice()).unwrap_err();
        assert!(matches!(err, FimError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("name length"), "{err}");
    }
}

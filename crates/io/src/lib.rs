//! # fim-io
//!
//! File formats for the mining workspace:
//!
//! * [`fimi`] — the FIMI workshop transaction format (one transaction per
//!   line, whitespace-separated item tokens) used by all public frequent
//!   item set mining benchmarks, including the BMS-WebView-1 data the paper
//!   evaluates in transposed form,
//! * [`matrix_io`] — a simple tab-separated text format for gene-expression
//!   matrices (genes × conditions of log expression values),
//! * [`results`] — writers for mined closed sets (the output format of
//!   Borgelt's `ista`/`carpenter` programs: items then `(support)`), plus a
//!   CSV writer for the experiment harness,
//! * [`checkpoint`] — self-validating stream checkpoints that persist an
//!   [`fim_ista::IstaStream`] together with its item-name catalog, so an
//!   interrupted run can resume in a fresh process,
//! * [`oocore`] — the two-pass out-of-core front end: stream item counts
//!   over a FIMI file, then re-read and recode it on the fly into
//!   [`fim_ista::OutOfCoreMiner`]'s shard-spill-merge pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod fimi;
pub mod manifest;
pub mod matrix_io;
pub mod oocore;
pub mod results;

pub use checkpoint::{read_stream_checkpoint, write_stream_checkpoint};
pub use fimi::{
    count_fimi_path, read_fimi, read_fimi_path, read_fimi_path_with_limits, read_fimi_with_limits,
    write_fimi, write_fimi_path, FimiCounts, FimiCursor, FimiLimits,
};
pub use manifest::{
    counts_fingerprint, crc32_file, live_records, order_tag, read_manifest, valid_spill_name,
    ManifestHeader, ManifestRecord, ManifestWriter, MANIFEST_NAME,
};
pub use matrix_io::{read_matrix, write_matrix};
pub use oocore::{
    mine_fimi_out_of_core, mine_fimi_with_counts, mine_fimi_with_counts_opts, OutOfCoreRun,
};
pub use results::{write_results, write_results_csv, write_results_named};

//! # fim-io
//!
//! File formats for the mining workspace:
//!
//! * [`fimi`] — the FIMI workshop transaction format (one transaction per
//!   line, whitespace-separated item tokens) used by all public frequent
//!   item set mining benchmarks, including the BMS-WebView-1 data the paper
//!   evaluates in transposed form,
//! * [`matrix_io`] — a simple tab-separated text format for gene-expression
//!   matrices (genes × conditions of log expression values),
//! * [`results`] — writers for mined closed sets (the output format of
//!   Borgelt's `ista`/`carpenter` programs: items then `(support)`), plus a
//!   CSV writer for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fimi;
pub mod matrix_io;
pub mod results;

pub use fimi::{read_fimi, read_fimi_path, write_fimi, write_fimi_path};
pub use matrix_io::{read_matrix, write_matrix};
pub use results::{write_results, write_results_csv};

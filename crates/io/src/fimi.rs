//! The FIMI workshop transaction format: one transaction per line, items as
//! whitespace-separated tokens. Tokens are treated as opaque item names
//! (they need not be numbers); blank lines are empty transactions and lines
//! starting with `#` are comments.

use fim_core::{FimError, TransactionDatabase};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads a transaction database from FIMI-format text.
pub fn read_fimi<R: Read>(reader: R) -> Result<TransactionDatabase, FimError> {
    let mut db = TransactionDatabase::new();
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        if trimmed.chars().any(|c| c.is_control() && c != '\t') {
            return Err(FimError::Parse {
                line: lineno,
                message: "unexpected control character".into(),
            });
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        db.push_named(&tokens);
    }
    Ok(db)
}

/// Reads a FIMI file from disk.
pub fn read_fimi_path<P: AsRef<Path>>(path: P) -> Result<TransactionDatabase, FimError> {
    read_fimi(std::fs::File::open(path)?)
}

/// Writes a transaction database in FIMI format (item names as tokens).
pub fn write_fimi<W: Write>(db: &TransactionDatabase, mut writer: W) -> Result<(), FimError> {
    for t in db.transactions() {
        let mut first = true;
        for item in t.iter() {
            let name = db.catalog().name(item).ok_or_else(|| {
                FimError::InvalidInput(format!("item code {item} has no catalog name"))
            })?;
            if !first {
                write!(writer, " ")?;
            }
            write!(writer, "{name}")?;
            first = false;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes a FIMI file to disk.
pub fn write_fimi_path<P: AsRef<Path>>(db: &TransactionDatabase, path: P) -> Result<(), FimError> {
    let file = std::fs::File::create(path)?;
    write_fimi(db, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::ItemSet;

    #[test]
    fn read_basic() {
        let text = "1 2 3\n2 4\n\n1 4\n";
        let db = read_fimi(text.as_bytes()).unwrap();
        assert_eq!(db.num_transactions(), 4);
        assert_eq!(db.transactions()[2], ItemSet::empty());
        // names "1","2","3" interned in order of appearance
        assert_eq!(db.catalog().code("4"), Some(3));
    }

    #[test]
    fn comments_and_whitespace() {
        let text = "# header\n  a   b\t c \n#tail\n";
        let db = read_fimi(text.as_bytes()).unwrap();
        assert_eq!(db.num_transactions(), 1);
        assert_eq!(db.transactions()[0].len(), 3);
    }

    #[test]
    fn non_numeric_tokens_allowed() {
        let db = read_fimi("milk bread\nbread butter\n".as_bytes()).unwrap();
        assert_eq!(db.num_items(), 3);
        assert_eq!(db.item_frequencies(), vec![1, 2, 1]);
    }

    #[test]
    fn roundtrip() {
        let text = "a b c\nb d\nd\n";
        let db = read_fimi(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_fimi(&db, &mut out).unwrap();
        let db2 = read_fimi(&out[..]).unwrap();
        assert_eq!(db.transactions(), db2.transactions());
    }

    #[test]
    fn path_roundtrip() {
        let dir = std::env::temp_dir().join("fim_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fimi");
        let db = read_fimi("x y\ny z\n".as_bytes()).unwrap();
        write_fimi_path(&db, &path).unwrap();
        let db2 = read_fimi_path(&path).unwrap();
        assert_eq!(db.transactions(), db2.transactions());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_items_in_line_are_merged() {
        let db = read_fimi("a a b\n".as_bytes()).unwrap();
        assert_eq!(db.transactions()[0].len(), 2);
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = read_fimi_path("/nonexistent/nowhere.fimi").unwrap_err();
        assert!(matches!(e, FimError::Io(_)));
    }
}

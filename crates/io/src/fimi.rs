//! The FIMI workshop transaction format: one transaction per line, items as
//! whitespace-separated tokens. Tokens are treated as opaque item names
//! (they need not be numbers); blank lines are empty transactions and lines
//! starting with `#` are comments.
//!
//! The reader is hardened against hostile input: every line is read through
//! a byte-bounded window (a single newline-free multi-gigabyte "line"
//! cannot buffer unbounded memory), and configurable [`FimiLimits`] cap the
//! line length, the items per transaction, and the magnitude of numeric
//! item codes. Every violation — including invalid UTF-8 and stray control
//! characters — is a [`FimError::Parse`] carrying the 1-based line number,
//! never a panic.

use fim_core::{FimError, Item, ItemCatalog, TransactionDatabase};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Input caps for the FIMI reader (see [`read_fimi_with_limits`]).
///
/// The defaults are far above anything in the public FIMI benchmark files
/// but low enough to stop a hostile file from exhausting memory: 1 MiB per
/// line, 65 536 items per transaction, and numeric item codes up to
/// `u32::MAX` (the workspace-wide [`fim_core::Item`] range).
#[derive(Clone, Copy, Debug)]
pub struct FimiLimits {
    /// Maximum content bytes per line (excluding the line terminator).
    pub max_line_bytes: usize,
    /// Maximum item tokens in one transaction line.
    pub max_items_per_transaction: usize,
    /// Maximum value of a fully numeric item token. Non-numeric tokens are
    /// opaque names and not affected.
    pub max_item_code: u64,
}

impl Default for FimiLimits {
    fn default() -> Self {
        FimiLimits {
            max_line_bytes: 1 << 20,
            max_items_per_transaction: 1 << 16,
            max_item_code: u64::from(u32::MAX),
        }
    }
}

/// Reads a transaction database from FIMI-format text with the default
/// [`FimiLimits`].
pub fn read_fimi<R: Read>(reader: R) -> Result<TransactionDatabase, FimError> {
    read_fimi_with_limits(reader, &FimiLimits::default())
}

/// Reads a transaction database from FIMI-format text, enforcing `limits`.
///
/// Violations are reported as [`FimError::Parse`] with the 1-based line
/// number; I/O failures stay [`FimError::Io`].
pub fn read_fimi_with_limits<R: Read>(
    reader: R,
    limits: &FimiLimits,
) -> Result<TransactionDatabase, FimError> {
    let mut db = TransactionDatabase::new();
    let mut reader = BufReader::new(reader);
    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        if !read_bounded_line(&mut reader, &mut buf, limits, lineno + 1)? {
            break;
        }
        lineno += 1;
        let Some(tokens) = validate_line(&buf, limits, lineno)? else {
            continue;
        };
        db.push_named(&tokens);
    }
    Ok(db)
}

/// Reads one newline-terminated line through the byte-bounded window into
/// `buf` (cleared first, terminator stripped). Returns `false` at end of
/// input; rejects over-long lines as [`FimError::Parse`] at `lineno`.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    limits: &FimiLimits,
    lineno: usize,
) -> Result<bool, FimError> {
    buf.clear();
    // bounded read: never buffer more than the cap plus the room needed
    // to tell "exactly at the cap" from "over it"
    let window = limits.max_line_bytes.saturating_add(2) as u64;
    let n = reader.take(window).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(false);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() > limits.max_line_bytes {
        return Err(FimError::Parse {
            line: lineno,
            message: format!("line exceeds {} bytes", limits.max_line_bytes),
        });
    }
    Ok(true)
}

/// Validates one raw line (terminator already stripped) and splits it into
/// item tokens. Returns `None` for comment lines; every violation is a
/// [`FimError::Parse`] at `lineno`.
fn validate_line<'a>(
    buf: &'a [u8],
    limits: &FimiLimits,
    lineno: usize,
) -> Result<Option<Vec<&'a str>>, FimError> {
    let text = std::str::from_utf8(buf).map_err(|_| FimError::Parse {
        line: lineno,
        message: "invalid UTF-8".into(),
    })?;
    let trimmed = text.trim();
    if trimmed.starts_with('#') {
        return Ok(None);
    }
    if trimmed.chars().any(|c| c.is_control() && c != '\t') {
        return Err(FimError::Parse {
            line: lineno,
            message: "unexpected control character".into(),
        });
    }
    let tokens: Vec<&str> = trimmed.split_whitespace().collect();
    if tokens.len() > limits.max_items_per_transaction {
        return Err(FimError::Parse {
            line: lineno,
            message: format!(
                "{} items in one transaction exceeds the cap of {}",
                tokens.len(),
                limits.max_items_per_transaction
            ),
        });
    }
    for token in &tokens {
        check_token(token, limits, lineno)?;
    }
    Ok(Some(tokens))
}

/// Rejects numeric tokens outside the configured item-code range. A token
/// is *numeric* when it is all ASCII digits (or a `-` followed by digits);
/// anything else is an opaque item name and passes.
fn check_token(token: &str, limits: &FimiLimits, lineno: usize) -> Result<(), FimError> {
    let body = token.strip_prefix('-').unwrap_or(token);
    if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
        return Ok(());
    }
    if token.starts_with('-') {
        return Err(FimError::Parse {
            line: lineno,
            message: format!("negative item code `{token}`"),
        });
    }
    match token.parse::<u64>() {
        Ok(code) if code <= limits.max_item_code => Ok(()),
        _ => Err(FimError::Parse {
            line: lineno,
            message: format!(
                "item code `{token}` exceeds the cap of {}",
                limits.max_item_code
            ),
        }),
    }
}

/// Reads a FIMI file from disk with the default [`FimiLimits`].
pub fn read_fimi_path<P: AsRef<Path>>(path: P) -> Result<TransactionDatabase, FimError> {
    read_fimi(std::fs::File::open(path)?)
}

/// Reads a FIMI file from disk, enforcing `limits`.
pub fn read_fimi_path_with_limits<P: AsRef<Path>>(
    path: P,
    limits: &FimiLimits,
) -> Result<TransactionDatabase, FimError> {
    read_fimi_with_limits(std::fs::File::open(path)?, limits)
}

/// A re-windable streaming reader over a FIMI source: yields one validated
/// transaction's tokens at a time through the same byte-bounded window and
/// [`FimiLimits`] enforcement as [`read_fimi_with_limits`], without ever
/// materializing the database. `rewind` seeks back to the start, so the
/// out-of-core pipeline can run its two passes (count, then re-read and
/// recode) over one open handle.
pub struct FimiCursor<R: Read + Seek> {
    reader: BufReader<R>,
    limits: FimiLimits,
    lineno: usize,
    buf: Vec<u8>,
}

impl FimiCursor<std::fs::File> {
    /// Opens a FIMI file for cursoring.
    pub fn open<P: AsRef<Path>>(path: P, limits: &FimiLimits) -> Result<Self, FimError> {
        Ok(FimiCursor::new(std::fs::File::open(path)?, limits))
    }
}

impl<R: Read + Seek> FimiCursor<R> {
    /// Wraps any seekable source.
    pub fn new(inner: R, limits: &FimiLimits) -> Self {
        FimiCursor {
            reader: BufReader::new(inner),
            limits: *limits,
            lineno: 0,
            buf: Vec::new(),
        }
    }

    /// Seeks back to the start of the source for another pass.
    pub fn rewind(&mut self) -> Result<(), FimError> {
        self.reader.seek(SeekFrom::Start(0))?;
        self.lineno = 0;
        Ok(())
    }

    /// 1-based line number of the most recently yielded line.
    pub fn lineno(&self) -> usize {
        self.lineno
    }

    /// Yields the next transaction's item tokens to `f`, skipping comment
    /// lines. Returns `Ok(None)` at end of input. Blank lines are empty
    /// transactions and are yielded as an empty token slice.
    pub fn next_transaction<T>(
        &mut self,
        f: impl FnOnce(&[&str]) -> T,
    ) -> Result<Option<T>, FimError> {
        loop {
            if !read_bounded_line(
                &mut self.reader,
                &mut self.buf,
                &self.limits,
                self.lineno + 1,
            )? {
                return Ok(None);
            }
            self.lineno += 1;
            if let Some(tokens) = validate_line(&self.buf, &self.limits, self.lineno)? {
                return Ok(Some(f(&tokens)));
            }
        }
    }
}

/// Pass-1 summary of a FIMI file for the out-of-core pipeline: the interned
/// item catalog (codes in order of first appearance, identical to
/// [`read_fimi`]'s), per-item transaction frequencies, and the transaction
/// count — everything [`fim_core::StreamingRecode`] needs, gathered in one
/// bounded streaming pass that never holds more than one line in memory.
#[derive(Clone, Debug, Default)]
pub struct FimiCounts {
    /// Item names interned in order of first appearance.
    pub catalog: ItemCatalog,
    /// Number of transactions containing each item (duplicates within a
    /// line counted once, matching
    /// [`TransactionDatabase::item_frequencies`]).
    pub frequencies: Vec<u32>,
    /// Total transactions (non-comment lines, empty ones included).
    pub transactions: u64,
}

/// Streams a FIMI file once and returns its [`FimiCounts`].
pub fn count_fimi_path<P: AsRef<Path>>(
    path: P,
    limits: &FimiLimits,
) -> Result<FimiCounts, FimError> {
    let mut cursor = FimiCursor::open(path, limits)?;
    let mut counts = FimiCounts::default();
    let mut codes: Vec<Item> = Vec::new();
    loop {
        let more = cursor.next_transaction(|tokens| {
            codes.clear();
            for t in tokens {
                codes.push(counts.catalog.intern(t));
            }
        })?;
        if more.is_none() {
            break;
        }
        fim_core::fault::hit(fim_core::fault::points::COUNTS_PASS1)?;
        counts.transactions += 1;
        counts.frequencies.resize(counts.catalog.len(), 0);
        codes.sort_unstable();
        codes.dedup();
        for &c in &codes {
            counts.frequencies[c as usize] += 1;
        }
    }
    counts.frequencies.resize(counts.catalog.len(), 0);
    Ok(counts)
}

/// Writes a transaction database in FIMI format (item names as tokens).
pub fn write_fimi<W: Write>(db: &TransactionDatabase, mut writer: W) -> Result<(), FimError> {
    for t in db.transactions() {
        let mut first = true;
        for item in t.iter() {
            let name = db.catalog().name(item).ok_or_else(|| {
                FimError::InvalidInput(format!("item code {item} has no catalog name"))
            })?;
            if !first {
                write!(writer, " ")?;
            }
            write!(writer, "{name}")?;
            first = false;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes a FIMI file to disk.
pub fn write_fimi_path<P: AsRef<Path>>(db: &TransactionDatabase, path: P) -> Result<(), FimError> {
    let file = std::fs::File::create(path)?;
    write_fimi(db, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::ItemSet;

    #[test]
    fn read_basic() {
        let text = "1 2 3\n2 4\n\n1 4\n";
        let db = read_fimi(text.as_bytes()).unwrap();
        assert_eq!(db.num_transactions(), 4);
        assert_eq!(db.transactions()[2], ItemSet::empty());
        // names "1","2","3" interned in order of appearance
        assert_eq!(db.catalog().code("4"), Some(3));
    }

    #[test]
    fn comments_and_whitespace() {
        let text = "# header\n  a   b\t c \n#tail\n";
        let db = read_fimi(text.as_bytes()).unwrap();
        assert_eq!(db.num_transactions(), 1);
        assert_eq!(db.transactions()[0].len(), 3);
    }

    #[test]
    fn non_numeric_tokens_allowed() {
        let db = read_fimi("milk bread\nbread butter\n".as_bytes()).unwrap();
        assert_eq!(db.num_items(), 3);
        assert_eq!(db.item_frequencies(), vec![1, 2, 1]);
    }

    #[test]
    fn roundtrip() {
        let text = "a b c\nb d\nd\n";
        let db = read_fimi(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_fimi(&db, &mut out).unwrap();
        let db2 = read_fimi(&out[..]).unwrap();
        assert_eq!(db.transactions(), db2.transactions());
    }

    #[test]
    fn path_roundtrip() {
        let dir = std::env::temp_dir().join("fim_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fimi");
        let db = read_fimi("x y\ny z\n".as_bytes()).unwrap();
        write_fimi_path(&db, &path).unwrap();
        let db2 = read_fimi_path(&path).unwrap();
        assert_eq!(db.transactions(), db2.transactions());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_items_in_line_are_merged() {
        let db = read_fimi("a a b\n".as_bytes()).unwrap();
        assert_eq!(db.transactions()[0].len(), 2);
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = read_fimi_path("/nonexistent/nowhere.fimi").unwrap_err();
        assert!(matches!(e, FimError::Io(_)));
    }

    fn parse_line(e: FimError) -> usize {
        match e {
            FimError::Parse { line, .. } => line,
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn long_line_rejected_with_line_number() {
        let limits = FimiLimits {
            max_line_bytes: 16,
            ..FimiLimits::default()
        };
        let text = "a b\nc d e f g h i j k l m n o p\nq\n";
        let e = read_fimi_with_limits(text.as_bytes(), &limits).unwrap_err();
        assert_eq!(parse_line(e), 2);
        // exactly at the cap is fine
        let ok = read_fimi_with_limits("0123456789abcdef\n".as_bytes(), &limits).unwrap();
        assert_eq!(ok.num_transactions(), 1);
    }

    #[test]
    fn unbounded_line_without_newline_is_rejected_not_buffered() {
        let limits = FimiLimits {
            max_line_bytes: 8,
            ..FimiLimits::default()
        };
        // no trailing newline at all: the bounded window must still trip
        let e = read_fimi_with_limits("aaaaaaaaaaaaaaaaaaaaaaaa".as_bytes(), &limits).unwrap_err();
        assert_eq!(parse_line(e), 1);
    }

    #[test]
    fn too_many_items_rejected() {
        let limits = FimiLimits {
            max_items_per_transaction: 3,
            ..FimiLimits::default()
        };
        assert!(read_fimi_with_limits("a b c\n".as_bytes(), &limits).is_ok());
        let e = read_fimi_with_limits("x\na b c d\n".as_bytes(), &limits).unwrap_err();
        assert_eq!(parse_line(e), 2);
    }

    #[test]
    fn numeric_code_magnitude_capped() {
        // default cap is u32::MAX
        let e = read_fimi("1 2 4294967296\n".as_bytes()).unwrap_err();
        assert_eq!(parse_line(e), 1);
        assert!(read_fimi("1 2 4294967295\n".as_bytes()).is_ok());
        // numbers too large for u64 must not panic either
        let e = read_fimi("99999999999999999999999999\n".as_bytes()).unwrap_err();
        assert_eq!(parse_line(e), 1);
    }

    #[test]
    fn negative_codes_rejected_but_names_with_dashes_pass() {
        let e = read_fimi("3 -7\n".as_bytes()).unwrap_err();
        assert_eq!(parse_line(e), 1);
        // not numeric: opaque names
        let db = read_fimi("gene-7 -x- -\n".as_bytes()).unwrap();
        assert_eq!(db.num_items(), 3);
    }

    #[test]
    fn invalid_utf8_is_a_parse_error_with_line_number() {
        let bytes: &[u8] = b"a b\n\xff\xfe\n";
        let e = read_fimi(bytes).unwrap_err();
        assert_eq!(parse_line(e), 2);
    }

    #[test]
    fn cursor_streams_and_rewinds() {
        let text = "a b\n# comment\nb c d\n\n";
        let mut cur = FimiCursor::new(std::io::Cursor::new(text), &FimiLimits::default());
        let mut seen = Vec::new();
        while let Some(n) = cur.next_transaction(|t| t.len()).unwrap() {
            seen.push(n);
        }
        // comment skipped, blank line yielded as an empty transaction
        assert_eq!(seen, vec![2, 3, 0]);
        assert_eq!(cur.lineno(), 4);
        cur.rewind().unwrap();
        assert_eq!(
            cur.next_transaction(|t| t.join(",")).unwrap().as_deref(),
            Some("a,b")
        );
        assert_eq!(cur.lineno(), 1);
    }

    #[test]
    fn cursor_enforces_limits_with_line_numbers() {
        let limits = FimiLimits {
            max_line_bytes: 8,
            ..FimiLimits::default()
        };
        let mut cur = FimiCursor::new(std::io::Cursor::new("a b\nlonger than eight\n"), &limits);
        assert!(cur.next_transaction(|_| ()).unwrap().is_some());
        let e = cur.next_transaction(|_| ()).unwrap_err();
        assert_eq!(parse_line(e), 2);
    }

    #[test]
    fn control_character_line_number_is_exact() {
        let e = read_fimi("a\nb\nc\x07 d\n".as_bytes()).unwrap_err();
        assert_eq!(parse_line(e), 3);
    }
}

//! Writers for mined closed item sets.
//!
//! The default format matches Borgelt's `ista`/`carpenter` command-line
//! programs: one set per line, item names separated by spaces, followed by
//! the absolute support in parentheses:
//!
//! ```text
//! a b c (4)
//! d e (3)
//! ```

use fim_core::{FimError, ItemCatalog, MiningResult, TransactionDatabase};
use std::io::Write;

/// Writes a mining result (over raw catalog codes) with item names from
/// `db`'s catalog, in Borgelt's output format.
pub fn write_results<W: Write>(
    result: &MiningResult,
    db: &TransactionDatabase,
    writer: W,
) -> Result<(), FimError> {
    write_results_named(result, db.catalog(), writer)
}

/// Like [`write_results`], naming items from a bare [`ItemCatalog`] — for
/// results whose codes were minted outside a [`TransactionDatabase`], such
/// as a resumed stream checkpoint.
pub fn write_results_named<W: Write>(
    result: &MiningResult,
    catalog: &ItemCatalog,
    mut writer: W,
) -> Result<(), FimError> {
    for s in &result.sets {
        let mut first = true;
        for item in s.items.iter() {
            let name = catalog.name(item).ok_or_else(|| {
                FimError::InvalidInput(format!("item code {item} has no catalog name"))
            })?;
            if !first {
                write!(writer, " ")?;
            }
            write!(writer, "{name}")?;
            first = false;
        }
        writeln!(writer, " ({})", s.support)?;
    }
    Ok(())
}

/// Writes a mining result as CSV (`items;support`, items space-separated by
/// code) — the machine-readable companion used by the experiment harness.
pub fn write_results_csv<W: Write>(result: &MiningResult, mut writer: W) -> Result<(), FimError> {
    writeln!(writer, "items;support")?;
    for s in &result.sets {
        let items: Vec<String> = s.items.iter().map(|i| i.to_string()).collect();
        writeln!(writer, "{};{}", items.join(" "), s.support)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::{FoundSet, ItemSet};

    fn fixture() -> (MiningResult, TransactionDatabase) {
        let db = TransactionDatabase::from_named(&[vec!["a", "b"], vec!["a", "c"]]);
        let result = MiningResult {
            sets: vec![
                FoundSet::new(ItemSet::from([0]), 2),
                FoundSet::new(ItemSet::from([0, 2]), 1),
            ],
        };
        (result, db)
    }

    #[test]
    fn borgelt_format() {
        let (r, db) = fixture();
        let mut out = Vec::new();
        write_results(&r, &db, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "a (2)\na c (1)\n");
    }

    #[test]
    fn csv_format() {
        let (r, _) = fixture();
        let mut out = Vec::new();
        write_results_csv(&r, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "items;support\n0;2\n0 2;1\n");
    }

    #[test]
    fn unknown_code_is_error() {
        let (mut r, db) = fixture();
        r.sets.push(FoundSet::new(ItemSet::from([99]), 1));
        let mut out = Vec::new();
        assert!(write_results(&r, &db, &mut out).is_err());
    }
}

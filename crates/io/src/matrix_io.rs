//! Text I/O for gene-expression matrices.
//!
//! Format: an optional header line `#genes <g> conditions <c>`, then one
//! row per gene with `c` tab- or space-separated floating-point log
//! expression values — the layout of the compendium data the paper uses
//! (genes are rows, experimental conditions are columns).

use fim_core::FimError;
use fim_synth::ExpressionMatrix;
use std::io::{BufRead, BufReader, Read, Write};

/// Reads an expression matrix. Dimensions are inferred from the rows when
/// no header is present; ragged rows are an error.
pub fn read_matrix<R: Read>(reader: R) -> Result<ExpressionMatrix, FimError> {
    let reader = BufReader::new(reader);
    let mut values: Vec<f64> = Vec::new();
    let mut conditions: Option<usize> = None;
    let mut genes = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let row: Result<Vec<f64>, _> = t.split_whitespace().map(str::parse::<f64>).collect();
        let row = row.map_err(|e| FimError::Parse {
            line: lineno + 1,
            message: format!("bad expression value: {e}"),
        })?;
        match conditions {
            None => conditions = Some(row.len()),
            Some(c) if c != row.len() => {
                return Err(FimError::Parse {
                    line: lineno + 1,
                    message: format!("ragged row: expected {c} values, got {}", row.len()),
                })
            }
            _ => {}
        }
        values.extend(row);
        genes += 1;
    }
    let conditions = conditions.unwrap_or(0);
    Ok(ExpressionMatrix::from_values(genes, conditions, values))
}

/// Writes an expression matrix with a `#genes .. conditions ..` header.
pub fn write_matrix<W: Write>(m: &ExpressionMatrix, mut writer: W) -> Result<(), FimError> {
    writeln!(writer, "#genes {} conditions {}", m.genes(), m.conditions())?;
    for g in 0..m.genes() {
        for c in 0..m.conditions() {
            if c > 0 {
                write!(writer, "\t")?;
            }
            write!(writer, "{}", m.value(g, c))?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_basic() {
        let text = "0.5 -0.3\n0.0 0.25\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.genes(), 2);
        assert_eq!(m.conditions(), 2);
        assert_eq!(m.value(0, 1), -0.3);
        assert_eq!(m.value(1, 1), 0.25);
    }

    #[test]
    fn roundtrip() {
        let m = ExpressionMatrix::from_values(2, 3, vec![0.1, -0.2, 0.3, 0.0, 1.5, -2.25]);
        let mut out = Vec::new();
        write_matrix(&m, &mut out).unwrap();
        let back = read_matrix(&out[..]).unwrap();
        assert_eq!(back.genes(), 2);
        assert_eq!(back.conditions(), 3);
        assert_eq!(back.values(), m.values());
    }

    #[test]
    fn ragged_rows_rejected() {
        let e = read_matrix("1 2\n3\n".as_bytes()).unwrap_err();
        assert!(matches!(e, FimError::Parse { line: 2, .. }));
    }

    #[test]
    fn bad_value_rejected() {
        let e = read_matrix("1 abc\n".as_bytes()).unwrap_err();
        assert!(matches!(e, FimError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input() {
        let m = read_matrix("".as_bytes()).unwrap();
        assert_eq!(m.genes(), 0);
        assert_eq!(m.conditions(), 0);
    }
}

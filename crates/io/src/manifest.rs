//! The `MANIFEST` journal: the crash-safety record of an out-of-core run.
//!
//! A journaled out-of-core run keeps one `MANIFEST` file in its spill
//! directory. The file has two parts:
//!
//! * a fixed **header**, written atomically (tmp + rename + dir fsync)
//!   before the first transaction is mined, fingerprinting the run — the
//!   input file's byte size, an FNV-1a hash of the pass-1 item counts,
//!   the effective minimum support, and the item order. `--resume-spill`
//!   refuses to adopt spills mined from different input or settings; the
//!   fingerprint is how it tells.
//! * appended **records**, one per durably completed spill file, each
//!   carrying the file name, its byte length and CRC-32, and the stream
//!   transaction intervals its tree covers. Every record ends in its own
//!   CRC-32 and every append is fsynced, so a reader can trust any record
//!   it can parse; a torn tail (the append the crash interrupted) fails
//!   its CRC and is ignored along with everything after it.
//!
//! Which records are *live* falls out of the interval algebra: a merge
//! re-spill's record covers the union of its inputs' intervals, so a
//! record strictly interval-contained in another is consumed and dead.
//! [`live_records`] keeps the maximal ones — their files (once their CRCs
//! verify against the record) are exactly the spills a resumed run can
//! adopt, and their interval gaps are exactly the transactions it must
//! re-mine.

use fim_core::fault::{self, points};
use fim_core::FimError;
use fim_ista::snapshot::crc32;
use fim_ista::TxInterval;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File name of the journal inside the spill directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

const MAGIC: &[u8; 4] = b"FIMM";
const VERSION: u32 = 1;
/// Sanity bound on record name / interval counts, far above anything a
/// real run writes — a corrupt length field must not drive allocation.
const MAX_NAME_BYTES: u32 = 256;
const MAX_INTERVALS: u32 = 1 << 20;

/// The run fingerprint a manifest header pins down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ManifestHeader {
    /// Byte size of the input file at the time of the run.
    pub input_bytes: u64,
    /// FNV-1a fingerprint of the pass-1 counts
    /// ([`counts_fingerprint`]).
    pub counts_fnv: u64,
    /// Effective minimum support (already clamped to ≥ 1).
    pub minsupp: u32,
    /// Item-order tag ([`order_tag`]).
    pub order: u32,
}

impl ManifestHeader {
    fn to_bytes(self) -> Vec<u8> {
        let mut b = Vec::with_capacity(36);
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&VERSION.to_le_bytes());
        b.extend_from_slice(&self.input_bytes.to_le_bytes());
        b.extend_from_slice(&self.counts_fnv.to_le_bytes());
        b.extend_from_slice(&self.minsupp.to_le_bytes());
        b.extend_from_slice(&self.order.to_le_bytes());
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    }
}

/// Stable tag for an [`fim_core::ItemOrder`] inside the manifest header.
pub fn order_tag(order: fim_core::ItemOrder) -> u32 {
    match order {
        fim_core::ItemOrder::AscendingFrequency => 0,
        fim_core::ItemOrder::DescendingFrequency => 1,
        fim_core::ItemOrder::Original => 2,
    }
}

/// One journaled spill file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestRecord {
    /// Bare file name inside the spill directory (`shard-NNNN.spill` or
    /// `merge-NNNN.spill`).
    pub name: String,
    /// Byte length of the spill file when it was journaled.
    pub file_len: u64,
    /// CRC-32 of the spill file's bytes.
    pub file_crc: u32,
    /// Covered stream transaction intervals, sorted and disjoint.
    pub intervals: Vec<TxInterval>,
}

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Incremental 64-bit FNV-1a.
pub struct Fnv1a(u64);

impl Fnv1a {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a fingerprint of a pass-1 summary: the transaction count plus
/// every interned item name with its frequency, in catalog (first
/// appearance) order — any change to the input that survives the
/// byte-size check perturbs this.
pub fn counts_fingerprint(counts: &crate::fimi::FimiCounts) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&counts.transactions.to_le_bytes());
    for (code, name) in counts.catalog.iter() {
        h.update(name.as_bytes());
        h.update(&[0]);
        h.update(&counts.frequencies[code as usize].to_le_bytes());
    }
    h.finish()
}

/// Length and CRC-32 of the file at `path` — the verification side of a
/// [`ManifestRecord`].
pub fn crc32_file(path: &Path) -> Result<(u64, u32), FimError> {
    let mut f = fs::File::open(path)?;
    let mut buf = [0u8; 64 * 1024];
    let mut len = 0u64;
    let mut crc_state = 0xFFFF_FFFFu32;
    // streaming CRC-32 matching fim_ista::snapshot::crc32
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        len += n as u64;
        for &b in &buf[..n] {
            crc_state ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc_state & 1).wrapping_neg();
                crc_state = (crc_state >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    Ok((len, crc_state ^ 0xFFFF_FFFF))
}

fn corrupt(path: &Path, msg: impl std::fmt::Display) -> FimError {
    FimError::Corrupt(format!("{}: {msg}", path.display()))
}

/// Append-only manifest writer.
///
/// [`create`](ManifestWriter::create) publishes the header atomically and
/// durably before returning; [`append_to`](ManifestWriter::append_to)
/// reopens an existing manifest (already validated by
/// [`read_manifest`]) for a resumed run. Each appended record is flushed
/// and fsynced before `append` returns, threading the `manifest.write`
/// fault point.
pub struct ManifestWriter {
    file: fs::File,
    path: PathBuf,
}

impl ManifestWriter {
    /// Creates a fresh manifest in `spill_dir`, replacing any previous
    /// one: header written to a `.tmp` sibling, fsynced, renamed into
    /// place, directory fsynced.
    pub fn create(spill_dir: &Path, header: ManifestHeader) -> Result<Self, FimError> {
        fs::create_dir_all(spill_dir)?;
        let path = spill_dir.join(MANIFEST_NAME);
        let tmp = spill_dir.join(format!("{MANIFEST_NAME}.tmp"));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&header.to_bytes())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        fs::File::open(spill_dir)?.sync_all()?;
        let file = fs::OpenOptions::new().append(true).open(&path)?;
        Ok(ManifestWriter { file, path })
    }

    /// Reopens the manifest at `path` for appending. The caller is
    /// expected to have validated it with [`read_manifest`] first.
    pub fn append_to(path: &Path) -> Result<Self, FimError> {
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(ManifestWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one record and makes it durable.
    pub fn append(&mut self, record: &ManifestRecord) -> Result<(), FimError> {
        let name = record.name.as_bytes();
        let mut b = Vec::with_capacity(24 + name.len() + 16 * record.intervals.len());
        b.extend_from_slice(&(name.len() as u32).to_le_bytes());
        b.extend_from_slice(name);
        b.extend_from_slice(&record.file_len.to_le_bytes());
        b.extend_from_slice(&record.file_crc.to_le_bytes());
        b.extend_from_slice(&(record.intervals.len() as u32).to_le_bytes());
        for &(s, e) in &record.intervals {
            b.extend_from_slice(&s.to_le_bytes());
            b.extend_from_slice(&e.to_le_bytes());
        }
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        // an armed `partial` fault tears the append in half — the record
        // CRC makes the torn tail invisible to the reader
        let torn = fault::hit_write(points::MANIFEST_WRITE, || b.truncate(b.len() / 2));
        torn?;
        self.file.write_all(&b)?;
        self.file.sync_all()?;
        Ok(())
    }

    /// The manifest's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl fim_ista::SpillJournal for ManifestWriter {
    fn record(&mut self, path: &Path, intervals: &[TxInterval]) -> Result<(), FimError> {
        let name = path
            .file_name()
            .ok_or_else(|| FimError::InvalidInput(format!("spill path {}", path.display())))?
            .to_string_lossy()
            .into_owned();
        let (file_len, file_crc) = crc32_file(path)?;
        self.append(&ManifestRecord {
            name,
            file_len,
            file_crc,
            intervals: intervals.to_vec(),
        })
    }
}

/// Whether `name` is a spill file name a manifest may legitimately refer
/// to — a bare `shard-NNNN.spill` / `merge-NNNN.spill`, no path
/// separators, so a corrupt or hostile manifest cannot point outside the
/// spill directory.
pub fn valid_spill_name(name: &str) -> bool {
    let digits = name.strip_suffix(".spill").and_then(|s| {
        s.strip_prefix("shard-")
            .or_else(|| s.strip_prefix("merge-"))
    });
    matches!(digits, Some(d) if !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
}

/// Reads a manifest: the header is validated strictly (magic, version,
/// CRC — failures are [`FimError::Corrupt`] naming the file), then
/// records are parsed until the first torn or corrupt one, which is
/// ignored together with everything after it (it is the append a crash
/// interrupted; everything before it was fsynced).
pub fn read_manifest(path: &Path) -> Result<(ManifestHeader, Vec<ManifestRecord>), FimError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 36 {
        return Err(corrupt(path, "manifest shorter than its header"));
    }
    let (head, mut rest) = bytes.split_at(36);
    if &head[0..4] != MAGIC {
        return Err(corrupt(path, "bad magic (not a fim manifest)"));
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(
            path,
            format!("unsupported manifest version {version}"),
        ));
    }
    let stored_crc = u32::from_le_bytes(head[32..36].try_into().unwrap());
    if crc32(&head[..32]) != stored_crc {
        return Err(corrupt(path, "manifest header checksum mismatch"));
    }
    let header = ManifestHeader {
        input_bytes: u64::from_le_bytes(head[8..16].try_into().unwrap()),
        counts_fnv: u64::from_le_bytes(head[16..24].try_into().unwrap()),
        minsupp: u32::from_le_bytes(head[24..28].try_into().unwrap()),
        order: u32::from_le_bytes(head[28..32].try_into().unwrap()),
    };
    let mut records = Vec::new();
    while let Some((record, tail)) = parse_record(rest) {
        if !valid_spill_name(&record.name) {
            break; // treat like a torn tail: ignore it and stop
        }
        records.push(record);
        rest = tail;
    }
    Ok((header, records))
}

/// Parses one record off the front of `b`; `None` on a torn or corrupt
/// record.
fn parse_record(b: &[u8]) -> Option<(ManifestRecord, &[u8])> {
    fn take(b: &[u8], n: usize) -> Option<(&[u8], &[u8])> {
        (b.len() >= n).then(|| b.split_at(n))
    }
    let (len_b, rest) = take(b, 4)?;
    let name_len = u32::from_le_bytes(len_b.try_into().unwrap());
    if name_len == 0 || name_len > MAX_NAME_BYTES {
        return None;
    }
    let (name_b, rest) = take(rest, name_len as usize)?;
    let (file_len_b, rest) = take(rest, 8)?;
    let (file_crc_b, rest) = take(rest, 4)?;
    let (n_iv_b, rest) = take(rest, 4)?;
    let n_iv = u32::from_le_bytes(n_iv_b.try_into().unwrap());
    if n_iv > MAX_INTERVALS {
        return None;
    }
    let (iv_b, rest) = take(rest, n_iv as usize * 16)?;
    let (crc_b, rest) = take(rest, 4)?;
    let body_len = b.len() - rest.len() - 4;
    if crc32(&b[..body_len]) != u32::from_le_bytes(crc_b.try_into().unwrap()) {
        return None;
    }
    let name = std::str::from_utf8(name_b).ok()?.to_owned();
    let mut intervals = Vec::with_capacity(n_iv as usize);
    for chunk in iv_b.chunks_exact(16) {
        let s = u64::from_le_bytes(chunk[..8].try_into().unwrap());
        let e = u64::from_le_bytes(chunk[8..].try_into().unwrap());
        if s >= e {
            return None;
        }
        intervals.push((s, e));
    }
    Some((
        ManifestRecord {
            name,
            file_len: u64::from_le_bytes(file_len_b.try_into().unwrap()),
            file_crc: u32::from_le_bytes(file_crc_b.try_into().unwrap()),
            intervals,
        },
        rest,
    ))
}

/// The live (maximal) records: those not strictly interval-contained in
/// another record. A merge re-spill's record contains its inputs', so the
/// live set is exactly the frontier a resumed run can adopt; live records
/// of a well-formed manifest are pairwise disjoint.
pub fn live_records(records: &[ManifestRecord]) -> Vec<&ManifestRecord> {
    let contains = |outer: &[TxInterval], inner: &[TxInterval]| {
        inner
            .iter()
            .all(|&(s, e)| outer.iter().any(|&(os, oe)| os <= s && e <= oe))
    };
    records
        .iter()
        .enumerate()
        .filter(|(i, r)| {
            !records
                .iter()
                .enumerate()
                .any(|(j, other)| *i != j && contains(&other.intervals, &r.intervals))
        })
        .map(|(_, r)| r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fim-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn header() -> ManifestHeader {
        ManifestHeader {
            input_bytes: 1234,
            counts_fnv: 0xDEAD_BEEF_CAFE_F00D,
            minsupp: 2,
            order: 0,
        }
    }

    fn rec(name: &str, intervals: &[TxInterval]) -> ManifestRecord {
        ManifestRecord {
            name: name.to_owned(),
            file_len: 100,
            file_crc: 42,
            intervals: intervals.to_vec(),
        }
    }

    #[test]
    fn round_trips_header_and_records() {
        let dir = temp_dir("rt");
        let mut w = ManifestWriter::create(&dir, header()).unwrap();
        w.append(&rec("shard-0000.spill", &[(0, 3)])).unwrap();
        w.append(&rec("shard-0001.spill", &[(3, 5), (7, 9)]))
            .unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let (h, records) = read_manifest(&path).unwrap();
        assert_eq!(h, header());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "shard-0000.spill");
        assert_eq!(records[1].intervals, vec![(3, 5), (7, 9)]);
        // appending through a reopen keeps the earlier records intact
        let mut w = ManifestWriter::append_to(&path).unwrap();
        w.append(&rec("merge-0000.spill", &[(0, 5), (7, 9)]))
            .unwrap();
        drop(w);
        let (_, records) = read_manifest(&path).unwrap();
        assert_eq!(records.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored_but_the_prefix_survives() {
        let dir = temp_dir("torn");
        let mut w = ManifestWriter::create(&dir, header()).unwrap();
        w.append(&rec("shard-0000.spill", &[(0, 3)])).unwrap();
        w.append(&rec("shard-0001.spill", &[(3, 6)])).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let full = fs::read(&path).unwrap();
        let (_, two) = read_manifest(&path).unwrap();
        assert_eq!(two.len(), 2);
        // find where the second record starts by writing a one-record
        // manifest of the same shape, then truncate anywhere inside the
        // second record: the first must survive
        let mut w2 = ManifestWriter::create(&dir, header()).unwrap();
        w2.append(&rec("shard-0000.spill", &[(0, 3)])).unwrap();
        let second_start = fs::read(w2.path()).unwrap().len();
        drop(w2);
        for cut in second_start..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (_, records) = read_manifest(&path).unwrap();
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(records[0].name, "shard-0000.spill");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_corruption_is_rejected_naming_the_file() {
        let dir = temp_dir("hdr");
        let w = ManifestWriter::create(&dir, header()).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let good = fs::read(&path).unwrap();
        for i in 0..36 {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            fs::write(&path, &bad).unwrap();
            let err = read_manifest(&path).expect_err("corrupt header must not parse");
            assert!(matches!(err, FimError::Corrupt(_)), "byte {i}: {err}");
            assert!(err.to_string().contains("MANIFEST"), "byte {i}: {err}");
        }
        // too short entirely
        fs::write(&path, &good[..20]).unwrap();
        assert!(read_manifest(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_with_invalid_name_stops_the_parse() {
        let dir = temp_dir("name");
        let mut w = ManifestWriter::create(&dir, header()).unwrap();
        w.append(&rec("shard-0000.spill", &[(0, 3)])).unwrap();
        w.append(&rec("../escape.spill", &[(3, 6)])).unwrap();
        w.append(&rec("shard-0001.spill", &[(6, 9)])).unwrap();
        let path = w.path().to_path_buf();
        drop(w);
        let (_, records) = read_manifest(&path).unwrap();
        assert_eq!(records.len(), 1, "parse must stop at the invalid name");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_name_validation() {
        assert!(valid_spill_name("shard-0000.spill"));
        assert!(valid_spill_name("merge-1234.spill"));
        assert!(valid_spill_name("shard-99999.spill"));
        assert!(!valid_spill_name("shard-.spill"));
        assert!(!valid_spill_name("shard-00x0.spill"));
        assert!(!valid_spill_name("../shard-0000.spill"));
        assert!(!valid_spill_name("shard-0000.spill.tmp"));
        assert!(!valid_spill_name("MANIFEST"));
        assert!(!valid_spill_name(""));
    }

    #[test]
    fn liveness_keeps_the_maximal_frontier() {
        let records = vec![
            rec("shard-0000.spill", &[(0, 2)]),
            rec("shard-0001.spill", &[(2, 4)]),
            rec("merge-0000.spill", &[(0, 4)]),
            rec("shard-0002.spill", &[(4, 6)]),
        ];
        let live = live_records(&records);
        let names: Vec<_> = live.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["merge-0000.spill", "shard-0002.spill"]);
    }

    #[test]
    fn fnv1a_known_answer_and_fingerprint_sensitivity() {
        // FNV-1a test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut counts = crate::fimi::FimiCounts::default();
        counts.catalog.intern("a");
        counts.catalog.intern("b");
        counts.frequencies = vec![3, 5];
        counts.transactions = 6;
        let base = counts_fingerprint(&counts);
        counts.frequencies[1] = 4;
        assert_ne!(base, counts_fingerprint(&counts));
        counts.frequencies[1] = 5;
        counts.transactions = 7;
        assert_ne!(base, counts_fingerprint(&counts));
    }

    #[test]
    fn crc32_file_matches_in_memory_crc() {
        let dir = temp_dir("crc");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("blob");
        let data: Vec<u8> = (0..200_000u32).map(|i| (i * 31 % 251) as u8).collect();
        fs::write(&p, &data).unwrap();
        let (len, crc) = crc32_file(&p).unwrap();
        assert_eq!(len, data.len() as u64);
        assert_eq!(crc, crc32(&data));
        let _ = fs::remove_dir_all(&dir);
    }
}

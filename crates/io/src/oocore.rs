//! Out-of-core mining glue over FIMI files: the two-pass streaming front
//! end that feeds [`fim_ista::OutOfCoreMiner`].
//!
//! Pass 1 ([`count_fimi_path`]) streams the file through the byte-bounded
//! FIMI reader, interning item names and counting per-item transaction
//! frequencies — never holding more than one line. Pass 2 re-reads the file
//! through a [`FimiCursor`], recodes each transaction on the fly with
//! [`StreamingRecode`] (infrequent items dropped, dense codes assigned with
//! the same survivor selection and ordering as the in-memory
//! [`fim_core::RecodedDatabase::prepare`]), and hands the stream to the
//! shard-spill-merge pipeline. The mined sets come back decoded to raw
//! catalog codes and canonicalized, so writing them through
//! [`crate::results::write_results_named`] with the returned catalog is
//! byte-identical to an in-memory run over the same file.
//!
//! This module lives in `fim-io` (not `fim-ista`) because the dependency
//! points this way: `fim-io` already depends on `fim-ista` for the stream
//! checkpoint format, so the miner itself stays format-agnostic (it only
//! sees a transaction source closure) and the FIMI composition happens
//! here.

use crate::fimi::{count_fimi_path, FimiCounts, FimiCursor, FimiLimits};
use crate::manifest::{
    counts_fingerprint, crc32_file, live_records, order_tag, read_manifest, valid_spill_name,
    ManifestHeader, ManifestWriter, MANIFEST_NAME,
};
use fim_core::fault::{self, points};
use fim_core::{
    Budget, FimError, FoundSet, Item, ItemCatalog, ItemOrder, MineOutcome, MiningResult,
    StreamingRecode, TripReason,
};
use fim_ista::{AdoptedSpill, OutOfCoreConfig, OutOfCoreMiner, OutOfCoreStats, ResumePlan};
use fim_obs::Obs;
use std::fs;
use std::path::Path;

/// Everything one out-of-core run over a FIMI file produces.
#[derive(Debug)]
pub struct OutOfCoreRun {
    /// The mining outcome; its sets are decoded to raw catalog codes and
    /// canonicalized (ready for [`crate::results::write_results_named`]).
    pub outcome: MineOutcome,
    /// Pipeline statistics (shards, spills, merge passes, counters).
    pub stats: OutOfCoreStats,
    /// Item names interned during pass 1, in order of first appearance —
    /// identical to the catalog [`crate::fimi::read_fimi`] would build.
    pub catalog: ItemCatalog,
    /// Total transactions seen in pass 1.
    pub transactions: u64,
    /// Frequent items surviving the support threshold.
    pub num_items: u32,
    /// The minimum support actually applied (the requested one clamped to
    /// at least 1).
    pub minsupp_used: u32,
}

/// Mines the closed frequent item sets of the FIMI file at `path` with the
/// out-of-core shard-spill pipeline, without ever materializing the
/// database in memory.
///
/// `minsupp` is absolute; `item_order` selects the dense recode order
/// exactly as in the in-memory path (transaction order is irrelevant to
/// the result and is fixed by the shard slicing). The `config` byte budget
/// bounds the buffered shard slice and `budget` governs tree growth; on a
/// budget trip the outcome is [`MineOutcome::Interrupted`] with an exact
/// partial result.
pub fn mine_fimi_out_of_core<P: AsRef<Path>>(
    path: P,
    limits: &FimiLimits,
    minsupp: u32,
    item_order: ItemOrder,
    config: OutOfCoreConfig,
    budget: &Budget,
) -> Result<OutOfCoreRun, FimError> {
    let counts = count_fimi_path(path.as_ref(), limits)?;
    mine_fimi_with_counts(path, limits, counts, minsupp, item_order, config, budget)
}

/// Like [`mine_fimi_out_of_core`], but over an already-gathered pass-1
/// summary — for callers that need the transaction count before choosing
/// the support threshold (e.g. a relative threshold), so the file is still
/// read exactly twice.
pub fn mine_fimi_with_counts<P: AsRef<Path>>(
    path: P,
    limits: &FimiLimits,
    counts: FimiCounts,
    minsupp: u32,
    item_order: ItemOrder,
    config: OutOfCoreConfig,
    budget: &Budget,
) -> Result<OutOfCoreRun, FimError> {
    mine_fimi_with_counts_opts(
        path,
        limits,
        counts,
        minsupp,
        item_order,
        config,
        budget,
        false,
        &mut Obs::new(),
    )
}

/// Builds the resume plan for a run over a spill directory holding a
/// `MANIFEST`: validates the manifest's fingerprint against this run's
/// (rejecting stale/foreign state as [`FimError::Corrupt`]), verifies
/// each live record's spill file by length and CRC-32, and adopts the
/// survivors. Unverifiable records are skipped — their transactions are
/// simply re-mined.
fn plan_resume(spill_dir: &Path, header: ManifestHeader) -> Result<Option<ResumePlan>, FimError> {
    let manifest_path = spill_dir.join(MANIFEST_NAME);
    if !manifest_path.exists() {
        return Ok(None); // cold start
    }
    let (found, records) = read_manifest(&manifest_path)?;
    if found != header {
        return Err(FimError::Corrupt(format!(
            "{}: manifest fingerprint mismatch (input bytes {} vs {}, counts hash {:#x} vs {:#x}, \
             minsupp {} vs {}, item order {} vs {}) — the spill directory belongs to a different \
             input or settings; delete it to start fresh",
            manifest_path.display(),
            found.input_bytes,
            header.input_bytes,
            found.counts_fnv,
            header.counts_fnv,
            found.minsupp,
            header.minsupp,
            found.order,
            header.order,
        )));
    }
    let mut plan = ResumePlan::default();
    for r in &records {
        let idx = |prefix: &str| {
            r.name
                .strip_prefix(prefix)
                .and_then(|s| s.strip_suffix(".spill"))
                .and_then(|d| d.parse::<u64>().ok())
        };
        if let Some(i) = idx("shard-") {
            plan.next_shard_idx = plan.next_shard_idx.max(i + 1);
        }
        if let Some(i) = idx("merge-") {
            plan.next_merge_idx = plan.next_merge_idx.max(i + 1);
        }
    }
    for r in live_records(&records) {
        let path = spill_dir.join(&r.name);
        let verified =
            matches!(crc32_file(&path), Ok((len, crc)) if len == r.file_len && crc == r.file_crc);
        // the journal CRC matching is not enough: a write torn *before*
        // the checksum was taken matches its own record, so the snapshot
        // itself must parse — anything else is re-mined, never trusted
        let loads = verified && fim_ista::load_spill(&path).is_ok();
        if loads {
            plan.adopted.push(AdoptedSpill {
                path,
                intervals: r.intervals.clone(),
            });
        }
    }
    Ok(Some(plan))
}

/// Removes every spill artifact (manifest and `*.spill` files) from
/// `spill_dir` — a non-resuming run must not adopt or collide with a dead
/// run's leftovers.
fn clear_spill_state(spill_dir: &Path) {
    let _ = fs::remove_file(spill_dir.join(MANIFEST_NAME));
    if let Ok(entries) = fs::read_dir(spill_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            if valid_spill_name(&name.to_string_lossy()) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

/// [`mine_fimi_with_counts`] with the crash-safety options explicit.
///
/// Every run journals its completed spills to a `MANIFEST` in the spill
/// directory (created before mining starts, removed again on any
/// completion except an `ENOSPC` degradation), so a killed run always
/// leaves resumable state behind. With `resume`, a valid manifest from a
/// previous run over the *same* input and settings is adopted: verified
/// completed spills are not re-mined, and the merge-reduce continues from
/// disk. A missing manifest makes `resume` a cold start; a foreign or
/// stale one is rejected with [`FimError::Corrupt`].
#[allow(clippy::too_many_arguments)]
pub fn mine_fimi_with_counts_opts<P: AsRef<Path>>(
    path: P,
    limits: &FimiLimits,
    counts: FimiCounts,
    minsupp: u32,
    item_order: ItemOrder,
    config: OutOfCoreConfig,
    budget: &Budget,
    resume: bool,
    obs: &mut Obs,
) -> Result<OutOfCoreRun, FimError> {
    let path = path.as_ref();
    let header = ManifestHeader {
        input_bytes: fs::metadata(path)?.len(),
        counts_fnv: counts_fingerprint(&counts),
        minsupp: minsupp.max(1),
        order: order_tag(item_order),
    };
    let FimiCounts {
        catalog,
        frequencies,
        transactions,
    } = counts;
    let recode = StreamingRecode::from_counts(&frequencies, minsupp, item_order);
    fs::create_dir_all(&config.spill_dir)?;
    let plan = if resume {
        plan_resume(&config.spill_dir, header)?
    } else {
        clear_spill_state(&config.spill_dir);
        None
    };
    let manifest_path = config.spill_dir.join(MANIFEST_NAME);
    let mut writer = match &plan {
        Some(_) => ManifestWriter::append_to(&manifest_path)?,
        None => ManifestWriter::create(&config.spill_dir, header)?,
    };
    let plan = plan.unwrap_or_default();
    let mut cursor = FimiCursor::open(path, limits)?;
    let miner = OutOfCoreMiner::with_config(config);
    let mut raw: Vec<Item> = Vec::new();
    let (outcome, stats) = miner.mine_stream_with(
        recode.num_items(),
        recode.item_supports(),
        Some(transactions),
        minsupp,
        budget,
        |out| loop {
            fault::hit(points::PASS2_READ)?;
            raw.clear();
            let line = cursor.next_transaction(|tokens| {
                for t in tokens {
                    match catalog.code(t) {
                        Some(c) => raw.push(c),
                        None => {
                            return Err(FimError::InvalidInput(format!(
                                "item `{t}` appeared only in pass 2 — input changed mid-run"
                            )))
                        }
                    }
                }
                Ok(())
            })?;
            match line {
                None => return Ok(false),
                Some(checked) => {
                    checked?;
                    if recode.encode_transaction(&raw, out) {
                        return Ok(true);
                    }
                }
            }
        },
        Some(&mut writer),
        plan,
        obs,
    )?;
    drop(writer);
    let disk_full = matches!(
        outcome,
        MineOutcome::Interrupted {
            reason: TripReason::DiskFull,
            ..
        }
    );
    if !disk_full {
        // the spill guard removed the files; the manifest goes with them
        let _ = fs::remove_file(&manifest_path);
    }
    let outcome = outcome.map_result(|r| {
        let mut decoded = MiningResult {
            sets: r
                .sets
                .into_iter()
                .map(|fs| FoundSet {
                    items: recode.decode_items(&fs.items),
                    support: fs.support,
                })
                .collect(),
        };
        decoded.canonicalize();
        decoded
    });
    Ok(OutOfCoreRun {
        outcome,
        stats,
        catalog,
        transactions,
        num_items: recode.num_items(),
        minsupp_used: recode.minsupp_used(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fimi::read_fimi_path;
    use crate::results::{write_results, write_results_named};
    use fim_core::{mine_closed_with_orders, TransactionOrder};
    use fim_ista::IstaMiner;
    use std::path::PathBuf;

    const PAPER_FIMI: &str = "\
a b c\n\
a d e\n\
b c d\n\
# a comment line\n\
a b c d\n\
b c\n\
a b d\n\
d e\n\
c d e\n";

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fim-io-oocore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_input(dir: &Path, text: &str) -> PathBuf {
        let p = dir.join("in.fimi");
        std::fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn output_is_byte_identical_to_in_memory_run() {
        let dir = temp_dir("identity");
        let input = write_input(&dir, PAPER_FIMI);
        for mem_budget in [1u64, 80, 1 << 20] {
            for minsupp in 1..=6 {
                for order in [
                    ItemOrder::AscendingFrequency,
                    ItemOrder::DescendingFrequency,
                    ItemOrder::Original,
                ] {
                    // in-memory reference: read, prepare, mine, write
                    let db = read_fimi_path(&input).unwrap();
                    let result = mine_closed_with_orders(
                        &db,
                        minsupp,
                        &IstaMiner::default(),
                        order,
                        TransactionOrder::Original,
                    );
                    let mut want = Vec::new();
                    write_results(&result, &db, &mut want).unwrap();
                    // out-of-core run over the same file
                    let run = mine_fimi_out_of_core(
                        &input,
                        &FimiLimits::default(),
                        minsupp,
                        order,
                        OutOfCoreConfig::new(mem_budget, dir.join("spill")),
                        &Budget::unlimited(),
                    )
                    .unwrap();
                    assert!(!run.outcome.is_interrupted());
                    let mut got = Vec::new();
                    write_results_named(run.outcome.result(), &run.catalog, &mut got).unwrap();
                    assert_eq!(
                        String::from_utf8(got).unwrap(),
                        String::from_utf8(want).unwrap(),
                        "budget={mem_budget} minsupp={minsupp} order={order:?}"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counts_match_materialized_read() {
        let dir = temp_dir("counts");
        let input = write_input(&dir, PAPER_FIMI);
        let counts = count_fimi_path(&input, &FimiLimits::default()).unwrap();
        let db = read_fimi_path(&input).unwrap();
        assert_eq!(counts.transactions, db.num_transactions() as u64);
        assert_eq!(counts.frequencies, db.item_frequencies());
        assert_eq!(counts.catalog.len(), db.catalog().len());
        for (code, name) in db.catalog().iter() {
            assert_eq!(counts.catalog.code(name), Some(code));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_errors_carry_line_numbers_through_the_cursor() {
        let dir = temp_dir("parse");
        let input = write_input(&dir, "a b\nc \x07 d\n");
        let err = mine_fimi_out_of_core(
            &input,
            &FimiLimits::default(),
            1,
            ItemOrder::AscendingFrequency,
            OutOfCoreConfig::new(64, dir.join("spill")),
            &Budget::unlimited(),
        )
        .unwrap_err();
        match err {
            FimError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The fault registry is process-global; tests that arm it serialize.
    static FAULTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn oocore_run(input: &Path, spill: &Path, minsupp: u32, resume: bool) -> OutOfCoreRun {
        let counts = count_fimi_path(input, &FimiLimits::default()).unwrap();
        mine_fimi_with_counts_opts(
            input,
            &FimiLimits::default(),
            counts,
            minsupp,
            ItemOrder::AscendingFrequency,
            OutOfCoreConfig::new(1, spill),
            &Budget::unlimited(),
            resume,
            &mut Obs::new(),
        )
        .unwrap()
    }

    #[test]
    fn enospc_leaves_a_resumable_manifest_and_resume_is_byte_identical() {
        let _g = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
        fault::disarm_all();
        let dir = temp_dir("resume");
        let input = write_input(&dir, PAPER_FIMI);
        let spill = dir.join("spill");

        // uninterrupted in-memory reference output
        let clean = oocore_run(&input, &spill, 2, false);
        let mut want = Vec::new();
        write_results_named(clean.outcome.result(), &clean.catalog, &mut want).unwrap();

        // first run dies of ENOSPC at the 5th spill write
        fault::arm_str("spill.write:5:enospc").unwrap();
        let broken = oocore_run(&input, &spill, 2, false);
        fault::disarm_all();
        match &broken.outcome {
            MineOutcome::Interrupted { reason, .. } => {
                assert_eq!(*reason, TripReason::DiskFull)
            }
            other => panic!("expected DiskFull, got {other:?}"),
        }
        assert!(
            spill.join(MANIFEST_NAME).exists(),
            "degraded run must leave its manifest"
        );

        // resumed run completes, adopts spills, and matches byte for byte
        let resumed = oocore_run(&input, &spill, 2, true);
        assert!(!resumed.outcome.is_interrupted());
        let mut got = Vec::new();
        write_results_named(resumed.outcome.result(), &resumed.catalog, &mut got).unwrap();
        assert_eq!(
            String::from_utf8(got).unwrap(),
            String::from_utf8(want).unwrap()
        );
        use fim_obs::Counter;
        let adopted = resumed.stats.counters.get(Counter::ShardsResumed);
        assert!(
            adopted > 0,
            "completed shards must be adopted, not re-mined"
        );
        assert!(
            resumed.stats.shards < 8,
            "adopted transactions re-mined ({} shards)",
            resumed.stats.shards
        );
        // everything cleaned up after the successful resume
        assert!(!spill.join(MANIFEST_NAME).exists());
        let leftovers: Vec<_> = std::fs::read_dir(&spill)
            .map(|d| d.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftovers: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_manifest_is_rejected_with_corrupt() {
        let _g = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
        fault::disarm_all();
        let dir = temp_dir("foreign");
        let input = write_input(&dir, PAPER_FIMI);
        let spill = dir.join("spill");
        fault::arm_str("spill.write:3:enospc").unwrap();
        let broken = oocore_run(&input, &spill, 2, false);
        fault::disarm_all();
        assert!(broken.outcome.is_interrupted());
        // the input grows a transaction: same file, different database
        std::fs::write(&input, format!("{PAPER_FIMI}a c e\n")).unwrap();
        let counts = count_fimi_path(&input, &FimiLimits::default()).unwrap();
        let err = mine_fimi_with_counts_opts(
            &input,
            &FimiLimits::default(),
            counts,
            2,
            ItemOrder::AscendingFrequency,
            OutOfCoreConfig::new(1, &spill),
            &Budget::unlimited(),
            true,
            &mut Obs::new(),
        )
        .unwrap_err();
        assert!(matches!(err, FimError::Corrupt(_)), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("MANIFEST"), "{msg}");
        assert!(msg.contains("fingerprint"), "{msg}");
        // resuming with a different minsupp is foreign too
        let counts = count_fimi_path(&input, &FimiLimits::default()).unwrap();
        std::fs::write(&input, PAPER_FIMI).unwrap();
        let counts2 = count_fimi_path(&input, &FimiLimits::default()).unwrap();
        drop(counts);
        let err = mine_fimi_with_counts_opts(
            &input,
            &FimiLimits::default(),
            counts2,
            3,
            ItemOrder::AscendingFrequency,
            OutOfCoreConfig::new(1, &spill),
            &Budget::unlimited(),
            true,
            &mut Obs::new(),
        )
        .unwrap_err();
        assert!(matches!(err, FimError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unverifiable_spills_are_re_mined_not_adopted() {
        let _g = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
        fault::disarm_all();
        let dir = temp_dir("unverif");
        let input = write_input(&dir, PAPER_FIMI);
        let spill = dir.join("spill");
        let clean = oocore_run(&input, &spill, 2, false);
        let mut want = Vec::new();
        write_results_named(clean.outcome.result(), &clean.catalog, &mut want).unwrap();
        fault::arm_str("spill.write:5:enospc").unwrap();
        let broken = oocore_run(&input, &spill, 2, false);
        fault::disarm_all();
        assert!(broken.outcome.is_interrupted());
        // corrupt one surviving spill: resume must re-mine its range
        let victim = std::fs::read_dir(&spill)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "spill"))
            .expect("a spill survives the degraded run");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        let resumed = oocore_run(&input, &spill, 2, true);
        assert!(!resumed.outcome.is_interrupted());
        let mut got = Vec::new();
        write_results_named(resumed.outcome.result(), &resumed.catalog, &mut got).unwrap();
        assert_eq!(
            String::from_utf8(got).unwrap(),
            String::from_utf8(want).unwrap(),
            "corrupt spill must be re-mined, never trusted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_report_multiple_shards_on_tiny_budget() {
        let dir = temp_dir("shards");
        let input = write_input(&dir, PAPER_FIMI);
        let run = mine_fimi_out_of_core(
            &input,
            &FimiLimits::default(),
            2,
            ItemOrder::AscendingFrequency,
            OutOfCoreConfig::new(1, dir.join("spill")),
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(run.stats.shards, 8, "one shard per transaction");
        assert_eq!(run.stats.merge_passes, 7);
        assert_eq!(run.transactions, 8);
        // spill dir exists but is empty again
        let leftovers: Vec<_> = std::fs::read_dir(dir.join("spill"))
            .map(|d| d.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftover spills: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

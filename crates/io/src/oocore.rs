//! Out-of-core mining glue over FIMI files: the two-pass streaming front
//! end that feeds [`fim_ista::OutOfCoreMiner`].
//!
//! Pass 1 ([`count_fimi_path`]) streams the file through the byte-bounded
//! FIMI reader, interning item names and counting per-item transaction
//! frequencies — never holding more than one line. Pass 2 re-reads the file
//! through a [`FimiCursor`], recodes each transaction on the fly with
//! [`StreamingRecode`] (infrequent items dropped, dense codes assigned with
//! the same survivor selection and ordering as the in-memory
//! [`fim_core::RecodedDatabase::prepare`]), and hands the stream to the
//! shard-spill-merge pipeline. The mined sets come back decoded to raw
//! catalog codes and canonicalized, so writing them through
//! [`crate::results::write_results_named`] with the returned catalog is
//! byte-identical to an in-memory run over the same file.
//!
//! This module lives in `fim-io` (not `fim-ista`) because the dependency
//! points this way: `fim-io` already depends on `fim-ista` for the stream
//! checkpoint format, so the miner itself stays format-agnostic (it only
//! sees a transaction source closure) and the FIMI composition happens
//! here.

use crate::fimi::{count_fimi_path, FimiCounts, FimiCursor, FimiLimits};
use fim_core::{
    Budget, FimError, FoundSet, Item, ItemCatalog, ItemOrder, MineOutcome, MiningResult,
    StreamingRecode,
};
use fim_ista::{OutOfCoreConfig, OutOfCoreMiner, OutOfCoreStats};
use std::path::Path;

/// Everything one out-of-core run over a FIMI file produces.
#[derive(Debug)]
pub struct OutOfCoreRun {
    /// The mining outcome; its sets are decoded to raw catalog codes and
    /// canonicalized (ready for [`crate::results::write_results_named`]).
    pub outcome: MineOutcome,
    /// Pipeline statistics (shards, spills, merge passes, counters).
    pub stats: OutOfCoreStats,
    /// Item names interned during pass 1, in order of first appearance —
    /// identical to the catalog [`crate::fimi::read_fimi`] would build.
    pub catalog: ItemCatalog,
    /// Total transactions seen in pass 1.
    pub transactions: u64,
    /// Frequent items surviving the support threshold.
    pub num_items: u32,
    /// The minimum support actually applied (the requested one clamped to
    /// at least 1).
    pub minsupp_used: u32,
}

/// Mines the closed frequent item sets of the FIMI file at `path` with the
/// out-of-core shard-spill pipeline, without ever materializing the
/// database in memory.
///
/// `minsupp` is absolute; `item_order` selects the dense recode order
/// exactly as in the in-memory path (transaction order is irrelevant to
/// the result and is fixed by the shard slicing). The `config` byte budget
/// bounds the buffered shard slice and `budget` governs tree growth; on a
/// budget trip the outcome is [`MineOutcome::Interrupted`] with an exact
/// partial result.
pub fn mine_fimi_out_of_core<P: AsRef<Path>>(
    path: P,
    limits: &FimiLimits,
    minsupp: u32,
    item_order: ItemOrder,
    config: OutOfCoreConfig,
    budget: &Budget,
) -> Result<OutOfCoreRun, FimError> {
    let counts = count_fimi_path(path.as_ref(), limits)?;
    mine_fimi_with_counts(path, limits, counts, minsupp, item_order, config, budget)
}

/// Like [`mine_fimi_out_of_core`], but over an already-gathered pass-1
/// summary — for callers that need the transaction count before choosing
/// the support threshold (e.g. a relative threshold), so the file is still
/// read exactly twice.
pub fn mine_fimi_with_counts<P: AsRef<Path>>(
    path: P,
    limits: &FimiLimits,
    counts: FimiCounts,
    minsupp: u32,
    item_order: ItemOrder,
    config: OutOfCoreConfig,
    budget: &Budget,
) -> Result<OutOfCoreRun, FimError> {
    let path = path.as_ref();
    let FimiCounts {
        catalog,
        frequencies,
        transactions,
    } = counts;
    let recode = StreamingRecode::from_counts(&frequencies, minsupp, item_order);
    let mut cursor = FimiCursor::open(path, limits)?;
    let miner = OutOfCoreMiner::with_config(config);
    let mut raw: Vec<Item> = Vec::new();
    let (outcome, stats) = miner.mine_stream(
        recode.num_items(),
        recode.item_supports(),
        Some(transactions),
        minsupp,
        budget,
        |out| loop {
            raw.clear();
            let line = cursor.next_transaction(|tokens| {
                for t in tokens {
                    match catalog.code(t) {
                        Some(c) => raw.push(c),
                        None => {
                            return Err(FimError::InvalidInput(format!(
                                "item `{t}` appeared only in pass 2 — input changed mid-run"
                            )))
                        }
                    }
                }
                Ok(())
            })?;
            match line {
                None => return Ok(false),
                Some(checked) => {
                    checked?;
                    if recode.encode_transaction(&raw, out) {
                        return Ok(true);
                    }
                }
            }
        },
    )?;
    let outcome = outcome.map_result(|r| {
        let mut decoded = MiningResult {
            sets: r
                .sets
                .into_iter()
                .map(|fs| FoundSet {
                    items: recode.decode_items(&fs.items),
                    support: fs.support,
                })
                .collect(),
        };
        decoded.canonicalize();
        decoded
    });
    Ok(OutOfCoreRun {
        outcome,
        stats,
        catalog,
        transactions,
        num_items: recode.num_items(),
        minsupp_used: recode.minsupp_used(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fimi::read_fimi_path;
    use crate::results::{write_results, write_results_named};
    use fim_core::{mine_closed_with_orders, TransactionOrder};
    use fim_ista::IstaMiner;
    use std::path::PathBuf;

    const PAPER_FIMI: &str = "\
a b c\n\
a d e\n\
b c d\n\
# a comment line\n\
a b c d\n\
b c\n\
a b d\n\
d e\n\
c d e\n";

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fim-io-oocore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_input(dir: &Path, text: &str) -> PathBuf {
        let p = dir.join("in.fimi");
        std::fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn output_is_byte_identical_to_in_memory_run() {
        let dir = temp_dir("identity");
        let input = write_input(&dir, PAPER_FIMI);
        for mem_budget in [1u64, 80, 1 << 20] {
            for minsupp in 1..=6 {
                for order in [
                    ItemOrder::AscendingFrequency,
                    ItemOrder::DescendingFrequency,
                    ItemOrder::Original,
                ] {
                    // in-memory reference: read, prepare, mine, write
                    let db = read_fimi_path(&input).unwrap();
                    let result = mine_closed_with_orders(
                        &db,
                        minsupp,
                        &IstaMiner::default(),
                        order,
                        TransactionOrder::Original,
                    );
                    let mut want = Vec::new();
                    write_results(&result, &db, &mut want).unwrap();
                    // out-of-core run over the same file
                    let run = mine_fimi_out_of_core(
                        &input,
                        &FimiLimits::default(),
                        minsupp,
                        order,
                        OutOfCoreConfig::new(mem_budget, dir.join("spill")),
                        &Budget::unlimited(),
                    )
                    .unwrap();
                    assert!(!run.outcome.is_interrupted());
                    let mut got = Vec::new();
                    write_results_named(run.outcome.result(), &run.catalog, &mut got).unwrap();
                    assert_eq!(
                        String::from_utf8(got).unwrap(),
                        String::from_utf8(want).unwrap(),
                        "budget={mem_budget} minsupp={minsupp} order={order:?}"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counts_match_materialized_read() {
        let dir = temp_dir("counts");
        let input = write_input(&dir, PAPER_FIMI);
        let counts = count_fimi_path(&input, &FimiLimits::default()).unwrap();
        let db = read_fimi_path(&input).unwrap();
        assert_eq!(counts.transactions, db.num_transactions() as u64);
        assert_eq!(counts.frequencies, db.item_frequencies());
        assert_eq!(counts.catalog.len(), db.catalog().len());
        for (code, name) in db.catalog().iter() {
            assert_eq!(counts.catalog.code(name), Some(code));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_errors_carry_line_numbers_through_the_cursor() {
        let dir = temp_dir("parse");
        let input = write_input(&dir, "a b\nc \x07 d\n");
        let err = mine_fimi_out_of_core(
            &input,
            &FimiLimits::default(),
            1,
            ItemOrder::AscendingFrequency,
            OutOfCoreConfig::new(64, dir.join("spill")),
            &Budget::unlimited(),
        )
        .unwrap_err();
        match err {
            FimError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_report_multiple_shards_on_tiny_budget() {
        let dir = temp_dir("shards");
        let input = write_input(&dir, PAPER_FIMI);
        let run = mine_fimi_out_of_core(
            &input,
            &FimiLimits::default(),
            2,
            ItemOrder::AscendingFrequency,
            OutOfCoreConfig::new(1, dir.join("spill")),
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(run.stats.shards, 8, "one shard per transaction");
        assert_eq!(run.stats.merge_passes, 7);
        assert_eq!(run.transactions, 8);
        // spill dir exists but is empty again
        let leftovers: Vec<_> = std::fs::read_dir(dir.join("spill"))
            .map(|d| d.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftover spills: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The [`Strategy`] trait and the strategy implementations the workspace
//! uses: ranges, tuples, `Just`, `any`, map, and flat-map.

use crate::test_runner::TestRng;

/// A recipe for generating values of an output type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only generated values satisfying `pred`, retrying a bounded
    /// number of times (upstream's rejection sampling, simplified).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Strategies are usable behind shared references.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: no value satisfied '{}'", self.whence);
    }
}

/// Strategy producing exactly one value (upstream's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among several strategies of one value type (the
/// unweighted form of upstream's `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Type-erases a strategy for use in a [`Union`].
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Types with a canonical full-domain strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T> {
    _marker: core::marker::PhantomData<T>,
}

macro_rules! impl_any_uniform {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: core::marker::PhantomData }
            }
        }
    )*};
}

impl_any_uniform! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    f64 => |rng| rng.unit_f64(),
}

/// The canonical strategy for `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

//! Deterministic RNG and configuration for the shimmed test runner.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case random source (SplitMix64 over an FNV-1a hash of
/// the test name and the case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case; the stream depends only on
    /// `(name, case)`, so failures reproduce across runs and machines.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

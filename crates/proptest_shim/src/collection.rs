//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`] (upstream's `SizeRange`
/// conversions, restricted to the forms this workspace uses).
pub trait IntoSizeRange {
    /// Inclusive (lo, hi) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    VecStrategy { element, lo, hi }
}

/// See [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

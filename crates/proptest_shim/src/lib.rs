//! A minimal, dependency-free, offline drop-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `proptest` dependency to this crate by path. Provided
//! surface: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! strategies for integer and float ranges, tuples, [`collection::vec`],
//! [`any`] / [`Arbitrary`], [`Just`], [`test_runner::TestRng`],
//! `ProptestConfig::with_cases`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//! [`prop_oneof!`] macros.
//!
//! Differences from upstream: value generation is deterministic per
//! (test name, case index) and there is **no shrinking** — a failing case
//! reports its case index and panics with the original assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything a test module usually imports, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among listed strategies (the unweighted form of
/// upstream's `prop_oneof!`; per-option weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, v in vec(any::<bool>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest: {} failed at case {case}/{} (deterministic, no shrinking)",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current case when the assumption does not hold. Upstream
/// rejects and regenerates; this shim simply returns from the case body,
/// so heavy rejection shows up as fewer effective cases, not a hang.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in 1usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes(v in vec(0u32..5, 2..6usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn maps_and_flat_maps(v in (1u32..5).prop_flat_map(|n| {
            vec(0u32..n, n as usize..=n as usize).prop_map(move |v| (n, v))
        })) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n as usize);
            prop_assert!(items.iter().all(|&x| x < n));
        }

        #[test]
        fn tuples_and_any(pair in (0u32..4, any::<bool>()), j in Just(7u8)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(j, 7);
            let _: bool = pair.1;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("seed-test", 3);
        let mut b = TestRng::for_case("seed-test", 3);
        let s = vec(0u32..1000, 5..10usize);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}

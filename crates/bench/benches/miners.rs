//! Criterion micro-benchmarks: every miner on small instances of each
//! preset data set. These complement the figure runners (which sweep
//! minimum support with timeouts); here each algorithm runs at a support
//! where all of them finish quickly, so relative constant factors are
//! visible with statistical confidence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fim_bench::miner_by_name;
use fim_core::{ItemOrder, RecodedDatabase, TransactionOrder};
use fim_synth::Preset;

fn bench_preset(c: &mut Criterion, preset: Preset, scale: f64, supp: u32, miners: &[&str]) {
    let db = preset.build(scale, 1);
    let recoded = RecodedDatabase::prepare(
        &db,
        supp,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let mut group = c.benchmark_group(format!("mine/{}", preset.name()));
    group.sample_size(10);
    for name in miners {
        let miner = miner_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &recoded, |b, db| {
            b.iter(|| {
                let r = miner.mine(db, supp);
                assert!(!r.sets.is_empty() || supp > 1);
                r.len()
            })
        });
    }
    group.finish();
}

fn miners_on_presets(c: &mut Criterion) {
    // eclat/declat are omitted on the blocky presets where frequent-set
    // enumeration (even with perfect-extension collapse) walks an
    // exponential subset space; they are micro-benchmarked on ncbi60 only
    let field = [
        "ista",
        "carpenter-table",
        "carpenter-lists",
        "fpclose",
        "lcm",
    ];
    bench_preset(c, Preset::Yeast, 0.06, 6, &field);
    bench_preset(
        c,
        Preset::Ncbi60,
        0.2,
        8,
        &[
            "ista",
            "carpenter-table",
            "carpenter-lists",
            "fpclose",
            "lcm",
            "eclat",
            "declat",
        ],
    );
    bench_preset(c, Preset::Thrombin, 0.06, 3, &field);
    bench_preset(c, Preset::Webview, 0.06, 3, &field);
}

fn ista_vs_naive(c: &mut Criterion) {
    // the E7 gap in micro-benchmark form, on a size where naive still runs
    let db = Preset::Yeast.build(0.04, 1);
    let recoded = RecodedDatabase::prepare(
        &db,
        3,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let mut group = c.benchmark_group("mine/naive-gap");
    group.sample_size(10);
    for name in ["ista", "naive-cumulative"] {
        let miner = miner_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &recoded, |b, db| {
            b.iter(|| miner.mine(db, 3).len())
        });
    }
    group.finish();
}

criterion_group!(benches, miners_on_presets, ista_vs_naive);
criterion_main!(benches);

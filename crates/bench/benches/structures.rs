//! Criterion micro-benchmarks for the core data structures: item set
//! algebra, tid lists, the suffix-count matrix, the IsTa prefix tree, and
//! the synthetic generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fim_core::{
    gallop_intersect_into, ItemOrder, ItemSet, RecodedDatabase, SuffixCountMatrix, TidLists,
    TransactionOrder,
};
use fim_ista::{intersect_segment, intersect_segment_words, PrefixTree};
use fim_synth::{ExpressionConfig, ExpressionMatrix, Preset};

fn itemset_ops(c: &mut Criterion) {
    let a: ItemSet = (0..4000).step_by(2).collect();
    let b: ItemSet = (0..4000).step_by(3).collect();
    let mut group = c.benchmark_group("itemset");
    group.bench_function("intersect/2k_vs_1.3k", |bench| {
        bench.iter(|| a.intersect(&b).len())
    });
    group.bench_function("is_subset/hit", |bench| {
        let sub: ItemSet = (0..4000).step_by(6).collect();
        bench.iter(|| sub.is_subset_of(&a))
    });
    group.bench_function("union/2k_vs_1.3k", |bench| bench.iter(|| a.union(&b).len()));
    group.finish();
}

fn database_reps(c: &mut Criterion) {
    let db = Preset::Ncbi60.build(0.3, 1);
    let recoded = RecodedDatabase::prepare(
        &db,
        2,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let mut group = c.benchmark_group("representation");
    group.bench_function("tid_lists/build", |b| {
        b.iter(|| TidLists::from_database(&recoded).num_items())
    });
    group.bench_function("suffix_matrix/build", |b| {
        b.iter(|| SuffixCountMatrix::from_database(&recoded).num_items())
    });
    group.bench_function("recode/prepare", |b| {
        b.iter(|| {
            RecodedDatabase::prepare(
                &db,
                2,
                ItemOrder::AscendingFrequency,
                TransactionOrder::AscendingSize,
            )
            .num_transactions()
        })
    });
    group.finish();
}

fn prefix_tree(c: &mut Criterion) {
    let db = Preset::Ncbi60.build(0.25, 1);
    let recoded = RecodedDatabase::prepare(
        &db,
        3,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let mut group = c.benchmark_group("ista-tree");
    group.sample_size(10);
    group.bench_function("add_all_transactions", |b| {
        b.iter(|| {
            let mut tree = PrefixTree::new(recoded.num_items());
            for t in recoded.transactions() {
                tree.add_transaction(t);
            }
            tree.node_count()
        })
    });
    group.bench_function("report", |b| {
        let mut tree = PrefixTree::new(recoded.num_items());
        for t in recoded.transactions() {
            tree.add_transaction(t);
        }
        b.iter(|| tree.report(3).len())
    });
    group.bench_function("merge/two_halves", |b| {
        let (first, second) = recoded
            .transactions()
            .split_at(recoded.num_transactions() / 2);
        b.iter(|| {
            let mut left = PrefixTree::new(recoded.num_items());
            for t in first {
                left.add_transaction(t);
            }
            let mut right = PrefixTree::new(recoded.num_items());
            for t in second {
                right.add_transaction(t);
            }
            left.merge(&right);
            left.node_count()
        })
    });
    group.bench_function("membership_stamp/wide_universe", |b| {
        // short transactions over a 20k-item universe: per-add cost is
        // dominated by the transaction-membership marking that isect
        // consults, i.e. the epoch-stamped `Vec<u32>` that replaced the
        // cleared-per-transaction `Vec<bool>`
        const UNIVERSE: u32 = 20_000;
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let txs: Vec<Vec<u32>> = (0..600)
            .map(|_| {
                let mut t: Vec<u32> = (0..40).map(|_| (step() % UNIVERSE as u64) as u32).collect();
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect();
        b.iter(|| {
            let mut tree = PrefixTree::new(UNIVERSE);
            for t in &txs {
                tree.add_transaction(t);
            }
            tree.node_count()
        })
    });
    group.finish();
}

fn hotpath(c: &mut Criterion) {
    let db = Preset::Ncbi60.build(0.25, 1);
    let recoded = RecodedDatabase::prepare(
        &db,
        3,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);

    // fragmented arena: insert everything, then prune with no future
    // occurrences left — every subtree below the final support threshold
    // is freed in place, leaving holes the DFS walk has to jump over
    let mut fragmented = PrefixTree::new(recoded.num_items());
    for t in recoded.transactions() {
        fragmented.add_transaction(t);
    }
    let spent = vec![0u32; recoded.num_items() as usize];
    fragmented.prune(&spent, 3);
    let mut compacted = fragmented.clone();
    compacted.compact();
    assert_eq!(
        fragmented.report(3).len(),
        compacted.report(3).len(),
        "compaction must not change reported sets"
    );

    // the shim has no iter_batched, so the compact cost is measured as
    // clone+compact with a clone-only baseline to subtract
    group.bench_function("compact/clone_baseline", |b| {
        b.iter(|| criterion::black_box(fragmented.clone()).node_count())
    });
    group.bench_function("compact/clone_and_compact", |b| {
        b.iter(|| {
            let mut t = fragmented.clone();
            t.compact();
            t.node_count()
        })
    });
    group.bench_function("report/fragmented_arena", |b| {
        b.iter(|| fragmented.report(3).len())
    });
    group.bench_function("report/compacted_arena", |b| {
        b.iter(|| compacted.report(3).len())
    });

    // weighted vs repeated insertion: the coalescing win is one support
    // bump per duplicate instead of a full isect traversal
    group.bench_function("insert/repeated_x4", |b| {
        b.iter(|| {
            let mut tree = PrefixTree::new(recoded.num_items());
            for t in recoded.transactions() {
                for _ in 0..4 {
                    tree.add_transaction(t);
                }
            }
            tree.node_count()
        })
    });
    group.bench_function("insert/weighted_x4", |b| {
        b.iter(|| {
            let mut tree = PrefixTree::new(recoded.num_items());
            for t in recoded.transactions() {
                tree.add_transaction_weighted(t, 4);
            }
            tree.node_count()
        })
    });
    group.finish();
}

/// The Patricia descending-merge kernel (`intersect_segment`) at the
/// segment lengths the two preset families actually produce: 1 (fully
/// fragmented, the plain-layout equivalent), 4 (dense ncbi-like trees
/// after split churn), 16 and 64 (sparse webview-like transposed data,
/// where transactions are long item runs).
fn segment_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_kernel");
    const UNIVERSE: u32 = 4096;
    for len in [1usize, 4, 16, 64] {
        // membership stamps that match every other item: the kernel scans
        // the whole segment without the early `imin` exit
        let mut trans = vec![0u32; UNIVERSE as usize];
        for i in (0..UNIVERSE).step_by(2) {
            trans[i as usize] = 1;
        }
        // one tree's worth of segments laid end to end, descending within
        // each segment like the real arena item store
        let segs: Vec<Vec<u32>> = (0..256)
            .map(|s| {
                let hi = UNIVERSE - 1 - (s % 32) * 96;
                (0..len as u32).map(|j| hi - j).collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("scan", len), &segs, |b, segs| {
            let mut out = Vec::with_capacity(len);
            b.iter(|| {
                let mut pushed = 0usize;
                for seg in segs {
                    out.clear();
                    intersect_segment(seg, &trans, 1, 0, &mut out);
                    pushed += out.len();
                }
                pushed
            })
        });
        // early-exit variant: `imin` sits in the middle of each segment,
        // the case the tight loop's bound check is meant to keep cheap
        group.bench_with_input(BenchmarkId::new("early_exit", len), &segs, |b, segs| {
            let mut out = Vec::with_capacity(len);
            b.iter(|| {
                let mut stops = 0usize;
                for seg in segs {
                    out.clear();
                    let imin = seg[seg.len() / 2];
                    if intersect_segment(seg, &trans, 1, imin, &mut out) {
                        stops += 1;
                    }
                }
                stops
            })
        });
        // bitset variant: the same segments probed against the packed-word
        // transaction (the ista `--rep bitset` hot loop); contiguous runs
        // collapse to whole-word ANDs, so this is the kernel's best case
        // at len 64 and its worst at len 1
        let twords: Vec<u64> = {
            let mut w = vec![0u64; UNIVERSE.div_ceil(64) as usize];
            for (i, &m) in trans.iter().enumerate() {
                if m == 1 {
                    w[i / 64] |= 1u64 << (i % 64);
                }
            }
            w
        };
        group.bench_with_input(BenchmarkId::new("bitset", len), &segs, |b, segs| {
            let mut out = Vec::with_capacity(len);
            b.iter(|| {
                let mut pushed = 0usize;
                for seg in segs {
                    out.clear();
                    intersect_segment_words(seg, &twords, 0, &mut out);
                    pushed += out.len();
                }
                pushed
            })
        });
        // galloping variant: the same segment contents as sorted ascending
        // lists intersected against the transaction's item list (the
        // tid-list `--rep gallop` shape: short side walks, long side is
        // searched exponentially)
        let tlist: Vec<u32> = (0..UNIVERSE).step_by(2).collect();
        let asc_segs: Vec<Vec<u32>> = segs
            .iter()
            .map(|s| {
                let mut v = s.clone();
                v.sort_unstable();
                v
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("gallop", len), &asc_segs, |b, segs| {
            let mut out = Vec::with_capacity(len);
            b.iter(|| {
                let mut pushed = 0usize;
                for seg in segs {
                    gallop_intersect_into(seg, &tlist, &mut out);
                    pushed += out.len();
                }
                pushed
            })
        });
    }
    group.finish();
}

/// The observability primitives the miners keep on their hot path: the
/// always-on counter bump, the strided heartbeat tick, and a span
/// enter/exit pair. Guards the zero-off-path-cost contract with a hard
/// assertion: a counter bump must stay within 100 ns amortized (a plain
/// u64 add — tripping this means an atomic, a lock, or I/O crept into the
/// counter path), and identical runs must produce identical counters.
fn obs_overhead(c: &mut Criterion) {
    use fim_ista::IstaMiner;
    use fim_obs::{Counter, Counters, ProgressEmitter, ProgressSnapshot, ProgressStyle};
    use std::time::{Duration, Instant};

    // determinism + liveness: two identical mined runs, identical nonzero
    // counters (the counters are always on, so this is the regression
    // guard for accidental nondeterminism in the instrumented hot loop)
    let db = Preset::Ncbi60.build(0.1, 1);
    let recoded = RecodedDatabase::prepare(
        &db,
        2,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let (_, first) = IstaMiner::default().mine_with_stats(&recoded, 2);
    let (_, second) = IstaMiner::default().mine_with_stats(&recoded, 2);
    assert_eq!(
        first.counters, second.counters,
        "hot-loop counters must be deterministic"
    );
    assert!(
        first.counters.get(Counter::SegScans) > 0 && first.counters.get(Counter::NodeAllocs) > 0,
        "mining must exercise the counters"
    );

    // the overhead assertion: 2^20 bumps in under ~105 ms (100 ns each)
    const BUMPS: u64 = 1 << 20;
    let mut counters = Counters::new();
    let start = Instant::now();
    for _ in 0..BUMPS {
        criterion::black_box(&mut counters).bump(Counter::SegScans);
    }
    let per_bump = start.elapsed().as_nanos() as f64 / BUMPS as f64;
    assert_eq!(counters.get(Counter::SegScans), BUMPS);
    assert!(
        per_bump < 100.0,
        "counter bump costs {per_bump:.1} ns — the zero-off-path-cost contract is broken"
    );

    let mut group = c.benchmark_group("obs");
    group.bench_function("counters/bump_x1024", |b| {
        let mut counters = Counters::new();
        b.iter(|| {
            for _ in 0..1024 {
                criterion::black_box(&mut counters).bump(Counter::SegScans);
            }
            counters.get(Counter::SegScans)
        })
    });
    group.bench_function("progress/tick_strided_x1024", |b| {
        // an hour-long interval: every tick takes the strided fast path
        let mut emitter = ProgressEmitter::with_writer(
            Duration::from_secs(3600),
            ProgressStyle::JsonLines,
            Box::new(std::io::sink()),
        );
        let snap = ProgressSnapshot {
            processed: 1,
            total: Some(1000),
            pending: 0,
            peak_nodes: 10,
            sets: 5,
        };
        b.iter(|| {
            for _ in 0..1024 {
                emitter.tick(criterion::black_box(&snap));
            }
            emitter.emitted()
        })
    });
    group.bench_function("span/enter_exit", |b| {
        let mut spans = fim_obs::SpanRecorder::new();
        b.iter(|| {
            spans.enter("bench");
            spans.exit();
            spans.num_spans()
        })
    });
    group.finish();
}

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.bench_function("expression/1000x60", |b| {
        b.iter(|| {
            ExpressionMatrix::generate(&ExpressionConfig::default())
                .values()
                .len()
        })
    });
    for preset in [Preset::Ncbi60, Preset::Webview] {
        group.bench_with_input(
            BenchmarkId::new("preset", preset.name()),
            &preset,
            |b, p| b.iter(|| p.build(0.1, 1).num_transactions()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    itemset_ops,
    database_reps,
    prefix_tree,
    hotpath,
    segment_kernel,
    obs_overhead,
    generators
);
criterion_main!(benches);

//! Unit tests for the harness plumbing that the experiment binaries rely
//! on: argument parsing, sweep scaling, and in-process cell execution.

use fim_bench::harness::{parse_kv, preset_by_name, scaled_sweep};
use fim_bench::{miner_by_name, run_cell, CellOutcome, CellRun, SweepConfig};
use fim_core::{ItemOrder, TransactionOrder};
use fim_synth::Preset;
use std::time::Duration;

fn done(run: CellRun) -> CellOutcome {
    match run {
        CellRun::Done(out) => out,
        CellRun::Tripped(reason) => panic!("cell unexpectedly tripped: {reason}"),
    }
}

fn sv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn parse_kv_pairs() {
    let kv = parse_kv(&sv(&["--scale", "0.5", "--seed", "7"])).unwrap();
    assert_eq!(kv.get("scale").unwrap(), "0.5");
    assert_eq!(kv.get("seed").unwrap(), "7");
    assert!(parse_kv(&sv(&["scale", "0.5"])).is_err());
    assert!(parse_kv(&sv(&["--scale"])).is_err());
}

#[test]
fn preset_lookup() {
    for p in Preset::ALL {
        assert_eq!(preset_by_name(p.name()).unwrap(), p);
    }
    assert!(preset_by_name("nope").is_err());
}

#[test]
fn scaled_sweep_shrinks_with_scale() {
    let full = scaled_sweep(Preset::Ncbi60, 1.0);
    let half = scaled_sweep(Preset::Ncbi60, 0.5);
    assert_eq!(full, Preset::Ncbi60.paper_sweep());
    assert_eq!(half.len(), full.len());
    for (f, h) in full.iter().zip(&half) {
        assert_eq!(*h, ((*f as f64) * 0.5).round() as u32);
    }
    // tiny scales clamp to 1 and dedup
    let tiny = scaled_sweep(Preset::Webview, 0.01);
    assert!(!tiny.is_empty());
    assert!(tiny.iter().all(|&s| s >= 1));
    assert!(tiny.windows(2).all(|w| w[0] > w[1]));
}

#[test]
fn sweep_config_overrides() {
    let mut c = SweepConfig::for_figure(Preset::Yeast, 0.25, &["ista"]);
    c.apply_args(&sv(&[
        "--seed",
        "9",
        "--timeout",
        "5",
        "--miners",
        "ista,lcm",
        "--supps",
        "8,4,2",
    ]))
    .unwrap();
    assert_eq!(c.seed, 9);
    assert_eq!(c.timeout.as_secs(), 5);
    assert_eq!(c.miners, vec!["ista".to_string(), "lcm".to_string()]);
    assert_eq!(c.supports, vec![8, 4, 2]);
    assert!(c.apply_args(&sv(&["--supps", "x"])).is_err());
}

#[test]
fn run_cell_executes_and_counts() {
    let out = done(
        run_cell(
            Preset::Ncbi60,
            0.08,
            3,
            "ista",
            4,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
            None,
        )
        .unwrap(),
    );
    assert!(out.sets > 0);
    assert!(out.seconds >= 0.0);
    // a second run with another algorithm must agree on the count
    let out2 = done(
        run_cell(
            Preset::Ncbi60,
            0.08,
            3,
            "carpenter-table",
            4,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
            None,
        )
        .unwrap(),
    );
    assert_eq!(out.sets, out2.sets);
}

#[test]
fn run_cell_generous_budget_still_completes() {
    let out = run_cell(
        Preset::Ncbi60,
        0.08,
        3,
        "ista",
        4,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
        Some(Duration::from_secs(600)),
    )
    .unwrap();
    assert!(matches!(out, CellRun::Done(_)), "{out:?}");
}

#[test]
fn run_cell_zero_budget_trips_cooperatively() {
    let out = run_cell(
        Preset::Ncbi60,
        0.08,
        3,
        "ista",
        4,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
        Some(Duration::ZERO),
    )
    .unwrap();
    assert!(matches!(out, CellRun::Tripped(_)), "{out:?}");
}

#[test]
fn run_cell_unknown_miner_is_error() {
    assert!(run_cell(
        Preset::Ncbi60,
        0.05,
        1,
        "bogus",
        2,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
        None,
    )
    .is_err());
    assert!(miner_by_name("bogus").is_err());
}

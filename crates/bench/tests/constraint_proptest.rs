//! Property tests for the constraint engine's exactness contract: for every
//! miner that advertises [`ClosedMiner::supports_constraints`], the pushed
//! path of [`mine_closed_constrained`] must return **byte-identical**
//! (canonicalized) output to the post-filter oracle — the unconstrained
//! mine over the same excluded-projected database followed by
//! [`apply_constraints`]'s predicate pass (`push: false` runs exactly
//! that). Miners without a push (here `lcm`) ride the default post-filter
//! implementation and are included to pin the driver's behaviour for them
//! too.
//!
//! The grid deliberately includes the degenerate corners: contradictions
//! are pre-filtered by `validate()` (the driver's contract), but
//! empty-result constraint sets (min-area no set can reach), all-items
//! excluded (the projection leaves an empty database), and include items
//! that are themselves excluded-by-infrequency all appear under random
//! generation.

use fim_bench::miner_by_name;
use fim_core::{
    mine_closed_constrained, mine_closed_constrained_governed, Budget, ConstraintSet, FoundSet,
    Item, ItemSet, MineOutcome, MiningResult, TransactionDatabase,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Miners exercised by the grid. The first five push constraints; `lcm`
/// takes the trait's default post-filter path.
const MINERS: [&str; 6] = [
    "ista",
    "carpenter-lists",
    "carpenter-table",
    "eclat",
    "declat",
    "lcm",
];

fn small_db() -> impl Strategy<Value = TransactionDatabase> {
    (2u32..=8).prop_flat_map(|num_items| {
        vec(vec(0..num_items as Item, 0..=num_items as usize), 0..10)
            .prop_map(move |txs| TransactionDatabase::from_codes_with_base(txs, num_items as usize))
    })
}

/// A random *valid* constraint set over catalog codes `0..8`: include and
/// exclude are made disjoint, and the size window non-contradictory, so
/// `validate()` always passes (the CLI rejects contradictions with exit
/// code 2 before the driver ever sees them).
fn constraint_set() -> impl Strategy<Value = ConstraintSet> {
    (
        vec(0u32..8, 0..3),
        vec(0u32..8, 0..3),
        0u32..4,
        prop_oneof![Just(None), (1u32..7).prop_map(Some)],
        0u64..40,
    )
        .prop_map(|(inc, exc, min_size, max_size, min_area)| {
            let include: ItemSet = inc.iter().copied().collect();
            let exclude: ItemSet = exc
                .iter()
                .copied()
                .filter(|i| !include.contains(*i))
                .collect();
            let lo = min_size.max(include.len() as u32);
            let max_size = max_size.map(|m| m.max(lo));
            ConstraintSet {
                include,
                exclude,
                min_size,
                max_size,
                min_area,
            }
        })
}

/// The post-filter oracle result: `push: false` through the same driver.
fn oracle(db: &TransactionDatabase, minsupp: u32, miner: &str, cs: &ConstraintSet) -> MiningResult {
    let m = miner_by_name(miner).unwrap();
    mine_closed_constrained(
        db,
        minsupp,
        m.as_ref(),
        cs,
        Default::default(),
        Default::default(),
        false,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pushed ≡ post-filtered for every miner on the full random grid.
    #[test]
    fn pushed_equals_postfiltered(db in small_db(), minsupp in 1u32..5, cs in constraint_set()) {
        prop_assert!(cs.validate().is_ok());
        for name in MINERS {
            let m = miner_by_name(name).unwrap();
            let pushed = mine_closed_constrained(
                &db, minsupp, m.as_ref(), &cs, Default::default(), Default::default(), true,
            );
            let want = oracle(&db, minsupp, name, &cs);
            prop_assert_eq!(&pushed, &want, "miner {} under [{}]", name, &cs);
        }
    }

    /// Every reported set actually satisfies the constraints (predicate
    /// re-checked independently of the mining path), and exclusion really
    /// is a projection: no excluded item ever appears.
    #[test]
    fn reported_sets_satisfy(db in small_db(), minsupp in 1u32..5, cs in constraint_set()) {
        let m = miner_by_name("ista").unwrap();
        let res = mine_closed_constrained(
            &db, minsupp, m.as_ref(), &cs, Default::default(), Default::default(), true,
        );
        for FoundSet { items, support } in &res.sets {
            prop_assert!(cs.satisfied_by(items, *support), "[{}] emitted {:?}", &cs, items);
            prop_assert!(*support >= minsupp.max(1));
        }
    }

    /// All-items-excluded projection leaves nothing to mine.
    #[test]
    fn all_excluded_is_empty(db in small_db(), minsupp in 1u32..4) {
        let cs = ConstraintSet {
            exclude: (0u32..8).collect(),
            ..ConstraintSet::none()
        };
        for name in MINERS {
            let m = miner_by_name(name).unwrap();
            let res = mine_closed_constrained(
                &db, minsupp, m.as_ref(), &cs, Default::default(), Default::default(), true,
            );
            prop_assert!(res.sets.is_empty(), "miner {}", name);
        }
    }

    /// Unreachable min-area (support × size can never get there on these
    /// tiny databases) gives the empty result through both paths.
    #[test]
    fn unreachable_area_is_empty(db in small_db(), minsupp in 1u32..4) {
        let cs = ConstraintSet { min_area: 100_000, ..ConstraintSet::none() };
        for name in MINERS {
            let m = miner_by_name(name).unwrap();
            let pushed = mine_closed_constrained(
                &db, minsupp, m.as_ref(), &cs, Default::default(), Default::default(), true,
            );
            prop_assert!(pushed.sets.is_empty(), "miner {}", name);
            prop_assert_eq!(pushed, oracle(&db, minsupp, name, &cs), "miner {}", name);
        }
    }

    /// Governed constrained mining: an unlimited budget completes with the
    /// exact batch result; a tight set budget either completes exactly or
    /// interrupts with a partial that is a subset of the batch result, with
    /// every partial set satisfying the constraints.
    #[test]
    fn governed_partials_are_exact_subsets(
        db in small_db(), minsupp in 1u32..4, cs in constraint_set(), cap in 0usize..4,
    ) {
        let full = oracle(&db, minsupp, "carpenter-lists", &cs);
        for name in ["ista", "carpenter-lists", "eclat"] {
            let m = miner_by_name(name).unwrap();
            let unlimited = mine_closed_constrained_governed(
                &db, minsupp, m.as_ref(), &cs, &Budget::unlimited(),
                Default::default(), Default::default(), true,
            );
            match unlimited {
                MineOutcome::Complete { result, .. } =>
                    prop_assert_eq!(&result, &full, "miner {} unlimited", name),
                MineOutcome::Interrupted { .. } =>
                    prop_assert!(false, "miner {} interrupted on unlimited budget", name),
            }
            let tight = Budget { max_closed_sets: Some(cap), ..Budget::unlimited() };
            let outcome = mine_closed_constrained_governed(
                &db, minsupp, m.as_ref(), &cs, &tight,
                Default::default(), Default::default(), true,
            );
            let partial = match outcome {
                MineOutcome::Complete { result, .. } => result,
                MineOutcome::Interrupted { partial, .. } => partial,
            };
            for fs in &partial.sets {
                prop_assert!(
                    full.sets.contains(fs),
                    "miner {} partial emitted {:?} not in the batch result", name, fs.items
                );
                prop_assert!(cs.satisfied_by(&fs.items, fs.support), "miner {}", name);
            }
        }
    }
}

//! # fim-bench
//!
//! The benchmark harness reproducing the paper's evaluation (DESIGN.md §5):
//!
//! * `table1` — the matrix representation example (paper Table 1),
//! * `fig3` — the prefix tree construction trace (paper Fig. 3),
//! * `fig5`–`fig8` — the four minimum-support sweeps (paper Figs. 5–8) on
//!   the synthetic stand-in data sets,
//! * `naive_gap` — flat repository vs prefix tree (paper §5, E7),
//! * `orders` — item/transaction order ablation (paper §3.4, E8),
//! * `pruning` — pruning ablations for IsTa and Carpenter (E9),
//! * Criterion micro-benchmarks (`cargo bench -p fim-bench`).
//!
//! Every sweep cell (one algorithm at one minimum support) runs in a fresh
//! subprocess so that a timeout can be enforced by killing the child — the
//! enumeration baselines diverge at low support by design, exactly like
//! FP-close and LCM do in the paper (Fig. 5: >1 minute at support 8 and
//! "growing even more heavily afterwards"; Fig. 6: crashes). Within a cell
//! the mining runs on a dedicated 1 GiB stack because tree depth is bounded
//! by the longest transaction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod registry;
pub mod report;

pub use harness::{
    figure_main, maybe_run_cell, parse_kv, preset_by_name, run_cell, run_cell_subprocess,
    scaled_sweep, CellOutcome, CellRun, SweepConfig, MINE_STACK_BYTES,
};
pub use registry::{all_miner_names, miner_by_name};
pub use report::{write_csv, Row};

//! Regenerates paper **Figure 7**: execution time vs minimum support on
//! the thrombin-like data set (64 records, 139k sparse binary features).
//! The paper's finding: table-Carpenter and IsTa on par, list-Carpenter a
//! constant factor slower, FP-close/LCM competitive only at high support.

use fim_bench::{figure_main, maybe_run_cell, SweepConfig};
use fim_synth::Preset;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_cell(&argv) {
        return;
    }
    let mut config = SweepConfig::for_figure(
        Preset::Thrombin,
        0.5,
        &[
            "ista",
            "carpenter-table",
            "carpenter-lists",
            "fpclose",
            "lcm",
        ],
    );
    config.timeout = std::time::Duration::from_secs(120);
    if let Err(e) = figure_main(config, &argv) {
        eprintln!("fig7: {e}");
        std::process::exit(1);
    }
}

//! Experiment **E8**: the item-code and transaction-order ablation of
//! paper §3.4 — the claim that ascending-frequency item codes combined
//! with ascending-size transaction processing is the fastest configuration
//! for IsTa, and that the reverse transaction order is much slower because
//! the prefix tree grows large early.
//!
//! Usage: `orders [--scale X] [--seed N] [--supp N] [--timeout SECS]`

use fim_bench::harness::{parse_kv, run_cell_subprocess};
use fim_bench::{maybe_run_cell, write_csv, Row};
use fim_synth::Preset;
use std::time::Duration;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_cell(&argv) {
        return;
    }
    let kv = match parse_kv(&argv) {
        Ok(kv) => kv,
        Err(e) => {
            eprintln!("orders: {e}");
            std::process::exit(1);
        }
    };
    let scale: f64 = kv.get("scale").map_or(0.15, |s| s.parse().unwrap());
    let seed: u64 = kv.get("seed").map_or(1, |s| s.parse().unwrap());
    let timeout = Duration::from_secs_f64(kv.get("timeout").map_or(120.0, |s| s.parse().unwrap()));
    let preset = Preset::Yeast;
    // a low support keeps the tree busy enough to expose order effects
    let supp: u32 = kv
        .get("supp")
        .map_or(((8.0 * scale).round() as u32).max(2), |s| {
            s.parse().unwrap()
        });

    println!("# E8 §3.4 order ablation — yeast-like, scale {scale}, seed {seed}, supp {supp}");
    println!(
        "{:>16} {:>12} {:>12} {:>10}",
        "item order", "tx order", "time", "sets"
    );
    let mut rows = Vec::new();
    let mut reference_sets: Option<usize> = None;
    for item_order in ["asc", "desc", "orig"] {
        for tx_order in ["asc", "desc", "orig"] {
            let out = run_cell_subprocess(
                preset, scale, seed, "ista", supp, item_order, tx_order, timeout,
            );
            let label = format!("ista[{item_order},{tx_order}]");
            match out {
                Ok(Some(o)) => {
                    // orders must never change the mined output
                    match reference_sets {
                        None => reference_sets = Some(o.sets),
                        Some(r) => assert_eq!(r, o.sets, "order changed the output!"),
                    }
                    println!(
                        "{:>16} {:>12} {:>11.3}s {:>10}",
                        item_order, tx_order, o.seconds, o.sets
                    );
                    rows.push(Row::ok(preset.name(), supp, &label, o));
                }
                Ok(None) => {
                    println!(
                        "{item_order:>16} {tx_order:>12} {:>12} {:>10}",
                        "timeout", "-"
                    );
                    rows.push(Row::timeout(preset.name(), supp, &label));
                }
                Err(e) => {
                    eprintln!("orders: {label}: {e}");
                    rows.push(Row::error(preset.name(), supp, &label));
                }
            }
        }
    }
    match write_csv("orders.csv", &rows) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => eprintln!("orders: csv: {e}"),
    }
}

//! Experiment **E12**: Patricia path compression A/B — the segment-based
//! prefix tree (`ista`) against the uncompressed one-item-per-node layout
//! (`ista-plain`) on a dense (ncbi60-like) and a sparse
//! (transposed-webview-like) preset.
//!
//! Each cell records wall time *and* the structural effect the compression
//! is meant to buy: the peak physical node count over the whole run and
//! the final arena occupancy (live nodes, segment items and bytes). Both
//! layouts are cross-checked for canonical output identity against each
//! other at the benchmark scale and against `mine_reference` on a
//! transaction-truncated slice.
//!
//! Each timed repetition runs in a fresh subprocess (same rationale as the
//! E11 hot-path ablation: the two layouts have very different allocation
//! patterns and contaminate each other through allocator state when timed
//! back-to-back in one process). One untimed warmup, then one timed mine
//! per subprocess; the aggregate is the median over reps.
//!
//! Usage: `patricia [--scale X] [--seed N] [--reps R] [--supps N,M]
//!                  [--check-txs T] [--out BENCH_patricia.json]`

use fim_bench::{parse_kv, preset_by_name, MINE_STACK_BYTES};
use fim_core::reference::mine_reference;
use fim_core::{
    ClosedMiner, ItemOrder, MiningResult, RecodedDatabase, TransactionDatabase, TransactionOrder,
};
use fim_ista::{IstaConfig, IstaMiner, MineStats};
use fim_synth::Preset;
use std::io::Write;
use std::time::Instant;

/// The A/B sweep: the uncompressed baseline first, Patricia second.
const VARIANTS: [bool; 2] = [false, true];

fn variant_name(patricia: bool) -> &'static str {
    if patricia {
        "ista"
    } else {
        "ista-plain"
    }
}

fn variant_miner(patricia: bool) -> IstaMiner {
    IstaMiner::with_config(IstaConfig {
        patricia,
        ..IstaConfig::default()
    })
}

/// One measured cell (median seconds plus the stats of one representative
/// subprocess run — node counts are deterministic, timings are not).
struct Measurement {
    preset: &'static str,
    patricia: bool,
    supp: u32,
    seconds: f64,
    sets: usize,
    stats: CellStats,
}

/// The structural numbers a `patcell` subprocess reports alongside time.
#[derive(Clone, Copy, PartialEq, Eq)]
struct CellStats {
    sets: usize,
    peak_nodes: usize,
    live_nodes: usize,
    total_slots: usize,
    free_slots: usize,
    seg_items: usize,
    seg_bytes: usize,
    approx_bytes: usize,
}

impl CellStats {
    /// This cell's occupancy as the shared fim-metrics/1 tree section.
    fn to_metrics(self) -> fim_obs::TreeMetrics {
        fim_obs::TreeMetrics {
            peak_nodes: self.peak_nodes as u64,
            live_nodes: self.live_nodes as u64,
            total_slots: self.total_slots as u64,
            free_slots: self.free_slots as u64,
            seg_items: self.seg_items as u64,
            seg_bytes: self.seg_bytes as u64,
            approx_bytes: self.approx_bytes as u64,
        }
    }

    fn from_mine(sets: usize, s: &MineStats) -> Self {
        CellStats {
            sets,
            peak_nodes: s.peak_nodes,
            live_nodes: s.memory.live_nodes,
            total_slots: s.memory.total_slots,
            free_slots: s.memory.free_slots,
            seg_items: s.memory.seg_items,
            seg_bytes: s.memory.seg_bytes,
            approx_bytes: s.memory.approx_bytes,
        }
    }
}

/// If `argv` is a cell invocation (`patcell <preset> <scale> <seed>
/// <patricia 0|1> <supp>`), measures that one layout in this process (one
/// untimed warmup, one timed mine, both on a big-stack thread), prints
/// `RESULT <seconds> <sets> <peak> <live> <total> <free> <segitems>
/// <segbytes> <approx>`, and returns `true`.
fn maybe_run_patcell(argv: &[String]) -> Result<bool, String> {
    if argv.first().map(String::as_str) != Some("patcell") {
        return Ok(false);
    }
    if argv.len() != 6 {
        return Err(format!(
            "patcell expects 5 operands, got {}",
            argv.len() - 1
        ));
    }
    let preset = preset_by_name(&argv[1])?;
    let scale: f64 = argv[2].parse().map_err(|e| format!("scale: {e}"))?;
    let seed: u64 = argv[3].parse().map_err(|e| format!("seed: {e}"))?;
    let patricia = match argv[4].as_str() {
        "0" => false,
        "1" => true,
        other => return Err(format!("patricia flag must be 0 or 1, got '{other}'")),
    };
    let supp: u32 = argv[5].parse().map_err(|e| format!("supp: {e}"))?;
    let db = preset.build(scale, seed);
    let recoded = RecodedDatabase::prepare(
        &db,
        supp,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let (secs, cell) = std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(MINE_STACK_BYTES)
            .spawn_scoped(s, || {
                let miner = variant_miner(patricia);
                drop(miner.mine(&recoded, supp)); // warmup, untimed
                let start = Instant::now();
                let (result, stats) = miner.mine_with_stats(&recoded, supp);
                (
                    start.elapsed().as_secs_f64(),
                    CellStats::from_mine(result.len(), &stats),
                )
            })
            .expect("spawn failed")
            .join()
            .expect("mining thread panicked")
    });
    println!(
        "RESULT {secs:.6} {} {} {} {} {} {} {} {}",
        cell.sets,
        cell.peak_nodes,
        cell.live_nodes,
        cell.total_slots,
        cell.free_slots,
        cell.seg_items,
        cell.seg_bytes,
        cell.approx_bytes
    );
    Ok(true)
}

/// Spawns the current executable as a `patcell` subprocess and parses its
/// `RESULT` line.
fn run_patcell_subprocess(
    preset: Preset,
    scale: f64,
    seed: u64,
    patricia: bool,
    supp: u32,
) -> Result<(f64, CellStats), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let out = std::process::Command::new(exe)
        .arg("patcell")
        .arg(preset.name())
        .arg(scale.to_string())
        .arg(seed.to_string())
        .arg(if patricia { "1" } else { "0" })
        .arg(supp.to_string())
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("patcell failed with {}", out.status));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .ok_or("patcell produced no RESULT line")?;
    let fields: Vec<usize> = line
        .split_whitespace()
        .skip(2)
        .map(|s| s.parse().map_err(|e| format!("bad RESULT field: {e}")))
        .collect::<Result<_, _>>()?;
    let seconds: f64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("bad RESULT seconds")?;
    if fields.len() != 8 {
        return Err(format!(
            "RESULT carries {} fields, expected 8",
            fields.len()
        ));
    }
    Ok((
        seconds,
        CellStats {
            sets: fields[0],
            peak_nodes: fields[1],
            live_nodes: fields[2],
            total_slots: fields[3],
            free_slots: fields[4],
            seg_items: fields[5],
            seg_bytes: fields[6],
            approx_bytes: fields[7],
        },
    ))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_patcell(&argv)? {
        return Ok(());
    }
    let kv = parse_kv(&argv)?;
    let scale: f64 = kv
        .get("scale")
        .map_or(Ok(0.5), |s| s.parse().map_err(|e| format!("--scale: {e}")))?;
    let seed: u64 = kv
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("--seed: {e}")))?;
    let reps: usize = kv
        .get("reps")
        .map_or(Ok(9), |s| s.parse().map_err(|e| format!("--reps: {e}")))?;
    let check_txs: usize = kv.get("check-txs").map_or(Ok(10), |s| {
        s.parse().map_err(|e| format!("--check-txs: {e}"))
    })?;
    let out_path = kv
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_patricia.json".to_owned());

    let mut supps = vec![
        pick_supp(preset_by_name("ncbi60")?, scale),
        pick_supp(preset_by_name("webview-tpo")?, scale),
    ];
    if let Some(s) = kv.get("supps") {
        let parsed: Vec<u32> = s
            .split(',')
            .map(|v| v.parse().map_err(|e| format!("--supps: {e}")))
            .collect::<Result<_, _>>()?;
        if parsed.len() != supps.len() {
            return Err(format!("--supps expects {} values", supps.len()));
        }
        supps = parsed;
    }
    let workloads = [
        (preset_by_name("ncbi60")?, supps[0]),
        (preset_by_name("webview-tpo")?, supps[1]),
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut ratios: Vec<(&'static str, f64, f64)> = Vec::new();
    println!(
        "# E12 Patricia layout A/B (scale {scale}, seed {seed}, reps {reps}, \
         median-of-reps, one subprocess per rep)"
    );
    for (preset, supp) in workloads {
        let name = preset.name();
        let db = preset.build(scale, seed);
        println!(
            "# {name}: {} transactions, {} items, supp {supp}",
            db.num_transactions(),
            db.num_items()
        );
        let recoded = RecodedDatabase::prepare(
            &db,
            supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );

        // identity pass (untimed, in-process): canonical output of both
        // layouts must agree at the benchmark scale
        let canon_of = |patricia: bool| -> MiningResult {
            std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || {
                        variant_miner(patricia).mine(&recoded, supp).canonicalized()
                    })
                    .expect("spawn failed")
                    .join()
                    .expect("mining thread panicked")
            })
        };
        let plain_out = canon_of(false);
        if canon_of(true) != plain_out {
            return Err(format!(
                "CROSS-CHECK FAILED on {name}: patricia output differs from ista-plain"
            ));
        }
        let sets = plain_out.len();

        // timing: each rep of each layout is a fresh subprocess; structural
        // stats must be identical across reps (the mine is deterministic)
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); VARIANTS.len()];
        let mut cell_stats: Vec<Option<CellStats>> = vec![None; VARIANTS.len()];
        for _rep in 0..reps {
            for (vi, &patricia) in VARIANTS.iter().enumerate() {
                let (secs, cell) = run_patcell_subprocess(preset, scale, seed, patricia, supp)?;
                if cell.sets != sets {
                    return Err(format!(
                        "CROSS-CHECK FAILED on {name}: subprocess cell found {} sets, expected {sets}",
                        cell.sets
                    ));
                }
                match cell_stats[vi] {
                    None => cell_stats[vi] = Some(cell),
                    Some(first) if first != cell => {
                        return Err(format!(
                            "NONDETERMINISM on {name}: {} stats differ between reps",
                            variant_name(patricia)
                        ));
                    }
                    Some(_) => {}
                }
                samples[vi].push(secs);
            }
        }
        let times: Vec<f64> = samples.iter().map(|s| median(s)).collect();
        println!(
            "{:>12} {:>8} {:>10} {:>9} {:>10} {:>10} {:>10} {:>9}",
            "layout", "supp", "seconds", "vs plain", "peak", "live", "seg items", "sets"
        );
        for (vi, &patricia) in VARIANTS.iter().enumerate() {
            let cell = cell_stats[vi].expect("reps >= 1");
            println!(
                "{:>12} {:>8} {:>10.4} {:>8.2}x {:>10} {:>10} {:>10} {:>9}",
                variant_name(patricia),
                supp,
                times[vi],
                times[0] / times[vi],
                cell.peak_nodes,
                cell.live_nodes,
                cell.seg_items,
                sets
            );
            measurements.push(Measurement {
                preset: name,
                patricia,
                supp,
                seconds: times[vi],
                sets,
                stats: cell,
            });
        }
        let node_ratio = cell_stats[0].expect("reps >= 1").peak_nodes as f64
            / cell_stats[1].expect("reps >= 1").peak_nodes as f64;
        println!(
            "# {name}: plain/patricia time {:.2}x, peak nodes {:.2}x",
            times[0] / times[1],
            node_ratio
        );
        ratios.push((name, times[0] / times[1], node_ratio));

        // reference slice: exact-identity check against the brute-force
        // miner on the first `check_txs` transactions at a low support
        let check_supp = 2u32.min(check_txs as u32).max(1);
        let slice: Vec<Vec<fim_core::Item>> = db
            .transactions()
            .iter()
            .take(check_txs)
            .map(|t| t.as_slice().to_vec())
            .collect();
        let slice_len = slice.len();
        let small = TransactionDatabase::from_codes_with_base(slice, db.num_items());
        let small_recoded = RecodedDatabase::prepare(
            &small,
            check_supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        let want = mine_reference(&small_recoded, check_supp);
        for patricia in VARIANTS {
            let got = variant_miner(patricia)
                .mine(&small_recoded, check_supp)
                .canonicalized();
            if got != want {
                return Err(format!(
                    "REFERENCE CHECK FAILED on {name} slice: '{}' differs from mine_reference",
                    variant_name(patricia)
                ));
            }
        }
        println!(
            "# {name} reference slice: {slice_len} transactions, supp {check_supp}, {} sets, both layouts exact",
            want.len()
        );
    }

    write_json(&out_path, scale, seed, reps, &measurements, &ratios).map_err(|e| e.to_string())?;
    println!("# wrote {out_path}");
    Ok(())
}

/// Median of a non-empty sample list (mean of the middle pair when even).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Picks the timing support: the second-lowest entry of the scaled paper
/// sweep (same convention as the E10/E11 bins).
fn pick_supp(preset: Preset, scale: f64) -> u32 {
    let mut sorted = fim_bench::scaled_sweep(preset, scale);
    sorted.sort_unstable();
    sorted.get(1).copied().unwrap_or(sorted[0])
}

fn write_json(
    path: &str,
    scale: f64,
    seed: u64,
    reps: usize,
    measurements: &[Measurement],
    ratios: &[(&'static str, f64, f64)],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"patricia-ab\",")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"seed\": {seed},")?;
    writeln!(f, "  \"reps\": {reps},")?;
    writeln!(
        f,
        "  \"timing\": \"median of reps, one subprocess per rep, warmup untimed, recode excluded\","
    )?;
    writeln!(f, "  \"cells\": [")?;
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"preset\": \"{}\", \"miner\": \"{}\", \"supp\": {}, \"seconds\": {:.6}, \"sets\": {}, \"peak_nodes\": {}, \"live_nodes\": {}, \"seg_items\": {}, \"seg_bytes\": {}, \"approx_bytes\": {}}}{comma}",
            m.preset,
            variant_name(m.patricia),
            m.supp,
            m.seconds,
            m.sets,
            m.stats.peak_nodes,
            m.stats.live_nodes,
            m.stats.seg_items,
            m.stats.seg_bytes,
            m.stats.approx_bytes
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"ratios\": [")?;
    for (i, (preset, time, nodes)) in ratios.iter().enumerate() {
        let comma = if i + 1 == ratios.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"preset\": \"{preset}\", \"metric\": \"plain/patricia\", \"time_factor\": {time:.4}, \"peak_node_factor\": {nodes:.4}}}{comma}"
        )?;
    }
    writeln!(f, "  ],")?;
    // final Patricia-tree occupancy per preset, in the same shape the E10
    // scaling bin emits so the `summary` bin renders it in its footer
    writeln!(f, "  \"tree_memory\": [")?;
    let pat_cells: Vec<&Measurement> = measurements.iter().filter(|m| m.patricia).collect();
    for (i, m) in pat_cells.iter().enumerate() {
        let comma = if i + 1 == pat_cells.len() { "" } else { "," };
        writeln!(
            f,
            "    {}{comma}",
            fim_bench::report::tree_memory_json(m.preset, &m.stats.to_metrics(), None)
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("patricia: {e}");
        std::process::exit(1);
    }
}

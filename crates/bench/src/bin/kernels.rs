//! Experiment **E14**: intersection-kernel A/B — the scalar sorted-list
//! kernels against the `u64` bitset (word-AND + popcount) and galloping
//! (exponential-search) kernels, on the dense `ncbi60` and sparse
//! `webview-tpo` presets, each measured along **both axes**:
//!
//! * **row axis** (the paper orientation: few transactions, many items) —
//!   the home regime of the transaction-axis algorithms, so `ista` and
//!   `carpenter-lists` run here. `eclat`/`declat` are *excluded* on this
//!   axis, and honestly so: item-set enumeration over thousands of frequent
//!   items diverges at the paper's support levels (the paper's own
//!   motivating observation, cf. E5/fig8) — an orientation economics fact,
//!   not a kernel property.
//! * **column axis** (the same data transposed back to the classic
//!   many-transactions basket shape) — the home regime of the tid-list
//!   enumeration miners, so `eclat` and `declat` run here with all three
//!   kernels. `ncbi60-cols` is the intersection-dominated dense cell the
//!   bitset speedup claim rests on; `webview-basket` is the honest sparse
//!   counterpart (fill ~1.6%).
//!
//! Every cell records wall time *and* the kernel work counters (words
//! ANDed, gallop probes, popcounts), and all representations are
//! cross-checked for canonical output identity — the kernels are
//! alternative physical layouts of the same search, so any output
//! difference is a bug, not a trade-off. Cells where a non-scalar kernel
//! *loses* (carpenter-lists bitset on both row-axis workloads, for one)
//! are measured and reported like any other; ratios below 1 are the point
//! of the experiment, not an embarrassment to hide.
//!
//! The run also verifies the density-based auto selection
//! ([`Representation::select`]): on each workload, for each miner family
//! measured there, the representation the rule picks must be within a
//! noise tolerance of that family's fastest measured cell — which is
//! exactly the claim the `--rep auto` CLI default rests on. (`ista` has no
//! galloping kernel and runs the scalar probe under `Gallop`, so a gallop
//! pick is scored against its scalar cell.)
//!
//! Each timed repetition runs in a fresh subprocess (same rationale as
//! E11/E12: allocator state contaminates back-to-back timings). One
//! untimed warmup, then one timed mine per subprocess; the aggregate is
//! the median over reps.
//!
//! Usage: `kernels [--scale X] [--seed N] [--reps R] [--supps A,B,C,D]
//!                 [--check-txs T] [--tolerance F] [--out BENCH_kernels.json]`

use fim_baseline::{DEclatMiner, EclatMiner};
use fim_bench::report::{kernel_json, kernel_line};
use fim_bench::{parse_kv, preset_by_name, MINE_STACK_BYTES};
use fim_carpenter::CarpenterListMiner;
use fim_core::reference::mine_reference;
use fim_core::{
    ClosedMiner, Item, ItemOrder, MiningResult, RecodedDatabase, Representation,
    TransactionDatabase, TransactionOrder,
};
use fim_ista::{IstaConfig, IstaMiner};
use fim_obs::{Counters, KernelMetrics};
use fim_synth::Preset;
use std::io::Write;
use std::time::Instant;

const ALL_REPS: [Representation; 3] = [
    Representation::Scalar,
    Representation::Bitset,
    Representation::Gallop,
];

/// The transaction-axis families measured on the paper orientation. `ista`
/// has no galloping kernel (`Gallop` runs its scalar epoch probe), so its
/// rep list is shorter by design, not omission.
const ROW_FAMILIES: [(&str, &[Representation]); 2] = [
    ("ista", &[Representation::Scalar, Representation::Bitset]),
    ("carpenter-lists", &ALL_REPS),
];

/// The tid-list enumeration families measured on the transposed axis.
const COL_FAMILIES: [(&str, &[Representation]); 2] = [("eclat", &ALL_REPS), ("declat", &ALL_REPS)];

/// One benchmark workload: a preset, an axis, and the miner families whose
/// home regime that axis is.
struct Workload {
    name: &'static str,
    axis: &'static str,
    families: &'static [(&'static str, &'static [Representation])],
}

const WORKLOADS: [Workload; 4] = [
    Workload {
        name: "ncbi60",
        axis: "rows",
        families: &ROW_FAMILIES,
    },
    Workload {
        name: "ncbi60-cols",
        axis: "cols",
        families: &COL_FAMILIES,
    },
    Workload {
        name: "webview-tpo",
        axis: "rows",
        families: &ROW_FAMILIES,
    },
    Workload {
        name: "webview-basket",
        axis: "cols",
        families: &COL_FAMILIES,
    },
];

/// Swaps the row/column axes: transaction `t` of the result lists every
/// original transaction that contained item `t`. Tids are appended in
/// ascending scan order, so the rows come out sorted.
fn transpose(db: &TransactionDatabase) -> TransactionDatabase {
    let mut rows: Vec<Vec<Item>> = vec![Vec::new(); db.num_items()];
    for (tid, t) in db.transactions().iter().enumerate() {
        for &item in t.as_slice() {
            rows[item as usize].push(tid as Item);
        }
    }
    TransactionDatabase::from_codes_with_base(rows, db.num_transactions())
}

/// Builds a workload database by name. The `-cols`/`-basket` variants are
/// the presets transposed in-process (deterministic given scale and seed),
/// so subprocesses reconstruct the identical database from the name alone.
fn build_workload(name: &str, scale: f64, seed: u64) -> Result<TransactionDatabase, String> {
    match name {
        "ncbi60" => Ok(preset_by_name("ncbi60")?.build(scale, seed)),
        "ncbi60-cols" => Ok(transpose(&preset_by_name("ncbi60")?.build(scale, seed))),
        "webview-tpo" => Ok(preset_by_name("webview-tpo")?.build(scale, seed)),
        "webview-basket" => Ok(transpose(
            &preset_by_name("webview-tpo")?.build(scale, seed),
        )),
        other => Err(format!("unknown workload '{other}'")),
    }
}

/// The timing support for one workload. Row-axis workloads use the paper
/// sweep convention (second-lowest scaled support, as in E10–E12); the
/// transposed workloads are not paper figures, so their supports are set
/// relative to their own row counts to land in the intersection-heavy but
/// tractable band (~rows/7 dense, ~0.1% of rows sparse).
fn default_supp(name: &str, db: &TransactionDatabase, scale: f64) -> Result<u32, String> {
    let rows = db.num_transactions() as u32;
    Ok(match name {
        "ncbi60" => pick_supp(preset_by_name("ncbi60")?, scale),
        "webview-tpo" => pick_supp(preset_by_name("webview-tpo")?, scale),
        "ncbi60-cols" => (rows / 7).max(2),
        "webview-basket" => (rows / 1000).max(2),
        other => return Err(format!("unknown workload '{other}'")),
    })
}

/// Builds the miner for one (family, representation) cell.
fn cell_miner(family: &str, rep: Representation) -> Result<Box<dyn ClosedMiner>, String> {
    Ok(match family {
        "eclat" => Box::new(EclatMiner::with_rep(rep)),
        "declat" => Box::new(DEclatMiner::with_rep(rep)),
        "carpenter-lists" => Box::new(CarpenterListMiner::with_rep(rep)),
        "ista" => Box::new(IstaMiner::with_config(IstaConfig::with_rep(rep))),
        other => return Err(format!("unknown family '{other}'")),
    })
}

/// Mines one cell and returns its result plus the kernel counters.
fn mine_cell(
    family: &str,
    rep: Representation,
    db: &RecodedDatabase,
    supp: u32,
) -> Result<(MiningResult, Counters), String> {
    Ok(match family {
        "eclat" => EclatMiner::with_rep(rep).mine_with_stats(db, supp),
        "declat" => DEclatMiner::with_rep(rep).mine_with_stats(db, supp),
        "carpenter-lists" => CarpenterListMiner::with_rep(rep).mine_with_stats(db, supp),
        "ista" => {
            let (res, stats) =
                IstaMiner::with_config(IstaConfig::with_rep(rep)).mine_with_stats(db, supp);
            (res, stats.counters)
        }
        other => return Err(format!("unknown family '{other}'")),
    })
}

/// One measured cell (median seconds plus the counters of one
/// representative subprocess run — counters are deterministic, timings
/// are not).
struct Measurement {
    workload: &'static str,
    family: &'static str,
    rep: Representation,
    supp: u32,
    seconds: f64,
    vs_scalar: f64,
    sets: usize,
    kernel: KernelMetrics,
}

/// The counter snapshot a `kcell` subprocess reports alongside time.
#[derive(Clone, Copy, PartialEq, Eq)]
struct CellStats {
    sets: usize,
    tid_intersections: u64,
    words_anded: u64,
    gallop_probes: u64,
    popcount_calls: u64,
}

impl CellStats {
    fn from_counters(sets: usize, c: &Counters) -> Self {
        use fim_obs::Counter;
        CellStats {
            sets,
            tid_intersections: c.get(Counter::TidIntersections),
            words_anded: c.get(Counter::WordsAnded),
            gallop_probes: c.get(Counter::GallopProbes),
            popcount_calls: c.get(Counter::PopcountCalls),
        }
    }

    fn to_kernel(self, rep: Representation) -> KernelMetrics {
        KernelMetrics {
            rep: rep.name(),
            words_anded: self.words_anded,
            gallop_probes: self.gallop_probes,
            popcount_calls: self.popcount_calls,
        }
    }
}

/// If `argv` is a cell invocation (`kcell <workload> <scale> <seed>
/// <family> <rep> <supp>`), measures that one kernel in this process (one
/// untimed warmup, one timed mine, both on a big-stack thread), prints
/// `RESULT <seconds> <sets> <tid_isects> <words> <probes> <popcounts>`,
/// and returns `true`.
fn maybe_run_kcell(argv: &[String]) -> Result<bool, String> {
    if argv.first().map(String::as_str) != Some("kcell") {
        return Ok(false);
    }
    if argv.len() != 7 {
        return Err(format!("kcell expects 6 operands, got {}", argv.len() - 1));
    }
    let scale: f64 = argv[2].parse().map_err(|e| format!("scale: {e}"))?;
    let seed: u64 = argv[3].parse().map_err(|e| format!("seed: {e}"))?;
    let family = argv[4].as_str();
    let rep: Representation = argv[5].parse()?;
    let supp: u32 = argv[6].parse().map_err(|e| format!("supp: {e}"))?;
    let db = build_workload(&argv[1], scale, seed)?;
    let recoded = RecodedDatabase::prepare(
        &db,
        supp,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let (secs, cell) = std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(MINE_STACK_BYTES)
            .spawn_scoped(s, || -> Result<(f64, CellStats), String> {
                drop(mine_cell(family, rep, &recoded, supp)?); // warmup, untimed
                let start = Instant::now();
                let (result, counters) = mine_cell(family, rep, &recoded, supp)?;
                Ok((
                    start.elapsed().as_secs_f64(),
                    CellStats::from_counters(result.len(), &counters),
                ))
            })
            .expect("spawn failed")
            .join()
            .expect("mining thread panicked")
    })?;
    println!(
        "RESULT {secs:.6} {} {} {} {} {}",
        cell.sets,
        cell.tid_intersections,
        cell.words_anded,
        cell.gallop_probes,
        cell.popcount_calls
    );
    Ok(true)
}

/// Spawns the current executable as a `kcell` subprocess and parses its
/// `RESULT` line.
fn run_kcell_subprocess(
    workload: &str,
    scale: f64,
    seed: u64,
    family: &str,
    rep: Representation,
    supp: u32,
) -> Result<(f64, CellStats), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let out = std::process::Command::new(exe)
        .arg("kcell")
        .arg(workload)
        .arg(scale.to_string())
        .arg(seed.to_string())
        .arg(family)
        .arg(rep.name())
        .arg(supp.to_string())
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("kcell failed with {}", out.status));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .ok_or("kcell produced no RESULT line")?;
    let fields: Vec<u64> = line
        .split_whitespace()
        .skip(2)
        .map(|s| s.parse().map_err(|e| format!("bad RESULT field: {e}")))
        .collect::<Result<_, _>>()?;
    let seconds: f64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("bad RESULT seconds")?;
    if fields.len() != 5 {
        return Err(format!(
            "RESULT carries {} fields, expected 5",
            fields.len()
        ));
    }
    Ok((
        seconds,
        CellStats {
            sets: fields[0] as usize,
            tid_intersections: fields[1],
            words_anded: fields[2],
            gallop_probes: fields[3],
            popcount_calls: fields[4],
        },
    ))
}

/// The auto-selection verdict for one (workload, family) pair.
struct AutoVerdict {
    workload: &'static str,
    family: &'static str,
    fill: f64,
    rows: usize,
    picked: Representation,
    /// What the family actually runs under `picked` (`ista` maps `Gallop`
    /// to its scalar probe).
    effective: Representation,
    fastest: Representation,
    picked_seconds: f64,
    fastest_seconds: f64,
    ok: bool,
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_kcell(&argv)? {
        return Ok(());
    }
    let kv = parse_kv(&argv)?;
    let scale: f64 = kv
        .get("scale")
        .map_or(Ok(0.5), |s| s.parse().map_err(|e| format!("--scale: {e}")))?;
    let seed: u64 = kv
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("--seed: {e}")))?;
    let reps: usize = kv
        .get("reps")
        .map_or(Ok(9), |s| s.parse().map_err(|e| format!("--reps: {e}")))?;
    let check_txs: usize = kv.get("check-txs").map_or(Ok(10), |s| {
        s.parse().map_err(|e| format!("--check-txs: {e}"))
    })?;
    // the auto pick passes when its cell is within this factor of the
    // fastest cell — scalar and bitset are near-ties on the 249-row
    // workload and subprocess timing noise should not flip the verdict
    let tolerance: f64 = kv.get("tolerance").map_or(Ok(1.10), |s| {
        s.parse().map_err(|e| format!("--tolerance: {e}"))
    })?;
    let out_path = kv
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_owned());

    let dbs: Vec<TransactionDatabase> = WORKLOADS
        .iter()
        .map(|w| build_workload(w.name, scale, seed))
        .collect::<Result<_, _>>()?;
    let mut supps: Vec<u32> = WORKLOADS
        .iter()
        .zip(&dbs)
        .map(|(w, db)| default_supp(w.name, db, scale))
        .collect::<Result<_, _>>()?;
    if let Some(s) = kv.get("supps") {
        let parsed: Vec<u32> = s
            .split(',')
            .map(|v| v.parse().map_err(|e| format!("--supps: {e}")))
            .collect::<Result<_, _>>()?;
        if parsed.len() != supps.len() {
            return Err(format!("--supps expects {} values", supps.len()));
        }
        supps = parsed;
    }

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut verdicts: Vec<AutoVerdict> = Vec::new();
    println!(
        "# E14 intersection-kernel A/B (scale {scale}, seed {seed}, reps {reps}, \
         median-of-reps, one subprocess per rep)"
    );
    println!(
        "# row-axis workloads run ista + carpenter-lists; eclat/declat run on the \
         transposed (-cols/-basket) axis only, where enumeration is tractable (cf. E5)"
    );
    for (wi, workload) in WORKLOADS.iter().enumerate() {
        let name = workload.name;
        let supp = supps[wi];
        let db = &dbs[wi];
        let recoded = RecodedDatabase::prepare(
            db,
            supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        let density = recoded.density();
        println!(
            "# {name} ({} axis): {} transactions, {} items, fill {:.4}, supp {supp}",
            workload.axis,
            db.num_transactions(),
            db.num_items(),
            density.fill
        );

        // reference slice: exact-identity check against the brute-force
        // miner on the first `check_txs` transactions at a low support
        let check_supp = 2u32.min(check_txs as u32).max(1);
        let slice: Vec<Vec<Item>> = db
            .transactions()
            .iter()
            .take(check_txs)
            .map(|t| t.as_slice().to_vec())
            .collect();
        let small = TransactionDatabase::from_codes_with_base(slice, db.num_items());
        let small_recoded = RecodedDatabase::prepare(
            &small,
            check_supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        let want = mine_reference(&small_recoded, check_supp);
        for &(family, family_reps) in workload.families {
            for &rep in family_reps {
                let got = cell_miner(family, rep)?
                    .mine(&small_recoded, check_supp)
                    .canonicalized();
                if got != want {
                    return Err(format!(
                        "REFERENCE CHECK FAILED on {name} slice: {family}/{rep} differs from mine_reference"
                    ));
                }
            }
        }

        // identity pass (untimed, in-process): canonical output of every
        // kernel must agree at the benchmark scale
        let canon_of = |family: &str, rep: Representation| -> Result<MiningResult, String> {
            std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || {
                        Ok(cell_miner(family, rep)?
                            .mine(&recoded, supp)
                            .canonicalized())
                    })
                    .expect("spawn failed")
                    .join()
                    .expect("mining thread panicked")
            })
        };
        let anchor_family = workload.families[0].0;
        let scalar_out = canon_of(anchor_family, Representation::Scalar)?;
        let sets = scalar_out.len();
        for &(family, family_reps) in workload.families {
            for &rep in family_reps {
                if canon_of(family, rep)? != scalar_out {
                    return Err(format!(
                        "CROSS-CHECK FAILED on {name}: {family}/{rep} output differs from {anchor_family}/scalar"
                    ));
                }
            }
        }

        // timing: each rep of each kernel is a fresh subprocess; counter
        // snapshots must be identical across reps (the mine is
        // deterministic)
        let picked = Representation::select(&density);
        for &(family, family_reps) in workload.families {
            println!(
                "{:>18} {:>8} {:>8} {:>10} {:>10} {:>9}  kernel",
                "miner", "rep", "supp", "seconds", "vs scalar", "sets"
            );
            let mut scalar_secs = f64::NAN;
            let mut family_times: Vec<(Representation, f64)> = Vec::new();
            for &rep in family_reps {
                let mut samples = Vec::with_capacity(reps);
                let mut first: Option<CellStats> = None;
                for _rep in 0..reps {
                    let (secs, cell) = run_kcell_subprocess(name, scale, seed, family, rep, supp)?;
                    if cell.sets != sets {
                        return Err(format!(
                            "CROSS-CHECK FAILED on {name}: {family}/{rep} cell found {} sets, expected {sets}",
                            cell.sets
                        ));
                    }
                    match first {
                        None => first = Some(cell),
                        Some(f) if f != cell => {
                            return Err(format!(
                                "NONDETERMINISM on {name}: {family}/{rep} counters differ between reps"
                            ));
                        }
                        Some(_) => {}
                    }
                    samples.push(secs);
                }
                let secs = median(&samples);
                if rep == Representation::Scalar {
                    scalar_secs = secs;
                }
                let cell = first.expect("reps >= 1");
                let vs_scalar = scalar_secs / secs;
                let kernel = cell.to_kernel(rep);
                println!(
                    "{:>18} {:>8} {:>8} {:>10.4} {:>9.2}x {:>9}  {}",
                    family,
                    rep.name(),
                    supp,
                    secs,
                    vs_scalar,
                    sets,
                    kernel_line(&kernel)
                );
                family_times.push((rep, secs));
                measurements.push(Measurement {
                    workload: name,
                    family,
                    rep,
                    supp,
                    seconds: secs,
                    vs_scalar,
                    sets,
                    kernel,
                });
            }

            // auto-selection verdict: the density rule's pick must be
            // within tolerance of this family's fastest measured cell
            let effective = if family_reps.contains(&picked) {
                picked
            } else {
                Representation::Scalar
            };
            let &(fastest, fastest_secs) = family_times
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN timings"))
                .expect("family cells measured");
            let picked_secs = family_times
                .iter()
                .find(|(r, _)| *r == effective)
                .expect("effective rep was measured")
                .1;
            let ok = picked_secs <= fastest_secs * tolerance;
            println!(
                "# {name}/{family}: auto picks {picked} (runs {effective}, {picked_secs:.4}s), \
                 fastest is {fastest} ({fastest_secs:.4}s) -> {}",
                if ok { "OK" } else { "MISPICK" }
            );
            verdicts.push(AutoVerdict {
                workload: name,
                family,
                fill: density.fill,
                rows: density.rows,
                picked,
                effective,
                fastest,
                picked_seconds: picked_secs,
                fastest_seconds: fastest_secs,
                ok,
            });
        }
    }

    write_json(&out_path, scale, seed, reps, &measurements, &verdicts)
        .map_err(|e| e.to_string())?;
    println!("# wrote {out_path}");
    if let Some(v) = verdicts.iter().find(|v| !v.ok) {
        return Err(format!(
            "AUTO MISPICK on {}/{}: density rule picked {} ({:.4}s) but {} is fastest ({:.4}s); \
             recalibrate the thresholds in fim-core/src/rep.rs",
            v.workload, v.family, v.picked, v.picked_seconds, v.fastest, v.fastest_seconds
        ));
    }
    Ok(())
}

/// Median of a non-empty sample list (mean of the middle pair when even).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Picks the paper-axis timing support: the second-lowest entry of the
/// scaled paper sweep (same convention as the E10–E12 bins).
fn pick_supp(preset: Preset, scale: f64) -> u32 {
    let mut sorted = fim_bench::scaled_sweep(preset, scale);
    sorted.sort_unstable();
    sorted.get(1).copied().unwrap_or(sorted[0])
}

fn write_json(
    path: &str,
    scale: f64,
    seed: u64,
    reps: usize,
    measurements: &[Measurement],
    verdicts: &[AutoVerdict],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"kernel-ab\",")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"seed\": {seed},")?;
    writeln!(f, "  \"reps\": {reps},")?;
    writeln!(
        f,
        "  \"timing\": \"median of reps, one subprocess per rep, warmup untimed, recode excluded\","
    )?;
    writeln!(
        f,
        "  \"axes\": \"row-axis workloads (paper orientation) run ista+carpenter-lists; \
         -cols/-basket are the same presets transposed, running eclat+declat\","
    )?;
    writeln!(f, "  \"cells\": [")?;
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"workload\": \"{}\", \"miner\": \"{}\", \"rep\": \"{}\", \"supp\": {}, \"seconds\": {:.6}, \"vs_scalar\": {:.4}, \"sets\": {}, \"kernel\": {}}}{comma}",
            m.workload,
            m.family,
            m.rep,
            m.supp,
            m.seconds,
            m.vs_scalar,
            m.sets,
            kernel_json(&m.kernel)
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"auto\": [")?;
    for (i, v) in verdicts.iter().enumerate() {
        let comma = if i + 1 == verdicts.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"workload\": \"{}\", \"miner\": \"{}\", \"fill\": {:.6}, \"rows\": {}, \"picked\": \"{}\", \"effective\": \"{}\", \"fastest\": \"{}\", \"picked_seconds\": {:.6}, \"fastest_seconds\": {:.6}, \"ok\": {}}}{comma}",
            v.workload,
            v.family,
            v.fill,
            v.rows,
            v.picked,
            v.effective,
            v.fastest,
            v.picked_seconds,
            v.fastest_seconds,
            v.ok
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("kernels: {e}");
        std::process::exit(1);
    }
}

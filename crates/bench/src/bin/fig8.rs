//! Regenerates paper **Figure 8**: execution time vs minimum support on
//! the transposed BMS-WebView-1-like data set. The paper's finding: IsTa
//! clearly ahead of both Carpenter variants; FP-close/LCM competitive only
//! down to minimum support ~11.

use fim_bench::{figure_main, maybe_run_cell, SweepConfig};
use fim_synth::Preset;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_cell(&argv) {
        return;
    }
    let config = SweepConfig::for_figure(
        Preset::Webview,
        0.25,
        &[
            "ista",
            "carpenter-table",
            "carpenter-lists",
            "fpclose",
            "lcm",
        ],
    );
    if let Err(e) = figure_main(config, &argv) {
        eprintln!("fig8: {e}");
        std::process::exit(1);
    }
}

//! Regenerates paper **Figure 6**: execution time vs minimum support on
//! the NCBI60-like data set. The paper shows only IsTa and the two
//! Carpenter variants because FP-growth and LCM crashed or hung on this
//! data; here the enumeration baselines can be added with `--miners` and
//! typically hit the timeout instead.

use fim_bench::{figure_main, maybe_run_cell, SweepConfig};
use fim_synth::Preset;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_cell(&argv) {
        return;
    }
    let config = SweepConfig::for_figure(
        Preset::Ncbi60,
        0.5,
        &["ista", "carpenter-table", "carpenter-lists"],
    );
    if let Err(e) = figure_main(config, &argv) {
        eprintln!("fig6: {e}");
        std::process::exit(1);
    }
}

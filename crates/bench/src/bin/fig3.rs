//! Regenerates paper **Figure 3**: the step-by-step construction of the
//! IsTa prefix tree for the transactions {e,c,a}, {e,d,b}, {d,c,b,a}.
//! Node supports after every step are asserted against the figure.

use fim_core::ItemSet;
use fim_ista::PrefixTree;

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn show(tree: &PrefixTree, step: &str) {
    println!("step {step}:");
    for (set, supp) in tree.dump() {
        let names: Vec<&str> = set.iter().rev().map(|i| NAMES[i as usize]).collect();
        println!("  {{{}}} : {}", names.join(","), supp);
    }
}

fn main() {
    // item codes a=0 b=1 c=2 d=3 e=4 (ascending frequency order of Fig. 3)
    let mut tree = PrefixTree::new(5);

    tree.add_transaction(&[0, 2, 4]); // {e,c,a}
    show(&tree, "1 (add {e,c,a})");
    assert_eq!(tree.lookup(&ItemSet::from([4])), Some(1));

    tree.add_transaction(&[1, 3, 4]); // {e,d,b}
    show(&tree, "2 (add {e,d,b})");
    assert_eq!(tree.lookup(&ItemSet::from([4])), Some(2));
    assert_eq!(tree.lookup(&ItemSet::from([1, 3, 4])), Some(1));

    tree.add_transaction(&[0, 1, 2, 3]); // {d,c,b,a}
    show(&tree, "3 (add {d,c,b,a})");

    // final supports of Fig. 3.3
    let expected: [(&[u32], u32); 12] = [
        (&[4], 2),
        (&[3, 4], 1),
        (&[1, 3, 4], 1),
        (&[2, 4], 1),
        (&[0, 2, 4], 1),
        (&[3], 2),
        (&[2, 3], 1),
        (&[1, 2, 3], 1),
        (&[0, 1, 2, 3], 1),
        (&[1, 3], 2),
        (&[2], 2),
        (&[0, 2], 2),
    ];
    for (items, supp) in expected {
        assert_eq!(
            tree.lookup(&ItemSet::from(items)),
            Some(supp),
            "set {items:?}"
        );
    }
    assert_eq!(tree.node_count(), 12);
    println!("\nall 12 node supports match Figure 3.3: OK");

    println!("\nclosed sets reported at minimum support 1:");
    for fs in tree.report(1) {
        let names: Vec<&str> = fs.items.iter().map(|i| NAMES[i as usize]).collect();
        println!("  {{{}}} ({})", names.join(","), fs.support);
    }
}

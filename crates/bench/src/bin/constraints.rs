//! Experiment **E16**: constraint pushing A/B — each supporting miner run
//! twice under the same constraint set, once with the constraints **pushed**
//! into its search loops ([`fim_core::ClosedMiner::mine_constrained`]) and
//! once **post-filtered** (the unconstrained mine followed by
//! [`fim_core::apply_constraints`]'s predicate pass, the oracle the pushed
//! path is proptested against) — plus the **LCM CbO ablation**: the
//! canonicity-first + closure-reuse `lcm` against the classic closure-first
//! `lcm-noreuse` formulation, measuring what the two CbO speed-ups from the
//! LCM/FCA correspondence buy.
//!
//! Workload axes follow E14: the paper-orientation presets (`ncbi60`,
//! `webview-tpo`) run the transaction-axis miners (`ista`,
//! `carpenter-lists`) and the LCM pair; the transposed `-cols`/`-basket`
//! variants run the tid-list enumeration miners (`eclat`, `declat`), which
//! diverge on the row axis at these supports (cf. E5).
//!
//! The constraint set is size/area-only (`--min-size`, `--max-size`, and
//! `min_area = --area-mult × supp`) so the identical dense-code set applies
//! on every workload without catalog lookups; include/exclude pushing is
//! exercised by the CLI and the constraint proptests. The default
//! `--area-mult 24` discriminates on the sparse workloads (only
//! high-support or large sets reach `24 × supp`); dense `ncbi60` carries a
//! per-workload override (see [`Workload::area_mult`]) because every one of
//! its closed sets clears the shared default.
//!
//! Honesty rules, as everywhere in this harness: every cell's pushed and
//! post-filtered outputs are checked for canonical identity before any
//! timing; counter snapshots must be identical across reps; ratios below
//! 1.0 (pushing costs more than it saves — expected wherever the
//! constraints barely prune) are reported like any other number. Each timed
//! rep is a fresh subprocess (one untimed warmup, one timed mine, recode
//! excluded); the aggregate is the median over reps.
//!
//! Usage: `constraints [--scale X] [--seed N] [--reps R]
//!                     [--min-size N] [--max-size N] [--area-mult M]
//!                     [--out BENCH_constraints.json]`

use fim_baseline::{DEclatMiner, EclatMiner, LcmClassicMiner, LcmMiner};
use fim_bench::{parse_kv, preset_by_name, MINE_STACK_BYTES};
use fim_carpenter::CarpenterListMiner;
use fim_core::{
    apply_constraints_owned, ClosedMiner, ConstraintSet, Item, ItemOrder, ItemSet, MiningResult,
    RecodedDatabase, TransactionDatabase, TransactionOrder,
};
use fim_ista::IstaMiner;
use fim_obs::Counter;
use fim_synth::Preset;
use std::io::Write;
use std::time::Instant;

/// One benchmark workload: a preset (possibly transposed) and the miners
/// whose home regime that axis is.
struct Workload {
    name: &'static str,
    axis: &'static str,
    miners: &'static [&'static str],
    /// Whether the LCM CbO pair is measured here (the paper-orientation
    /// presets named by the experiment).
    lcm: bool,
    /// Area-multiplier override. Dense ncbi60's closed sets all share huge
    /// item counts, so the shared default multiplier is vacuous there
    /// (every set passes); the override parks `min_area` on the value that
    /// actually discriminates on that distribution. `None` = use the
    /// CLI-settable default.
    area_mult: Option<u64>,
}

const WORKLOADS: [Workload; 4] = [
    Workload {
        name: "ncbi60",
        axis: "rows",
        miners: &["ista", "carpenter-lists"],
        lcm: true,
        area_mult: Some(80),
    },
    Workload {
        name: "ncbi60-cols",
        axis: "cols",
        miners: &["eclat", "declat"],
        lcm: false,
        area_mult: None,
    },
    Workload {
        name: "webview-tpo",
        axis: "rows",
        miners: &["ista", "carpenter-lists"],
        lcm: true,
        area_mult: None,
    },
    Workload {
        name: "webview-basket",
        axis: "cols",
        miners: &["eclat", "declat"],
        lcm: false,
        area_mult: None,
    },
];

/// Swaps the row/column axes (same helper as E14): transaction `t` of the
/// result lists every original transaction that contained item `t`.
fn transpose(db: &TransactionDatabase) -> TransactionDatabase {
    let mut rows: Vec<Vec<Item>> = vec![Vec::new(); db.num_items()];
    for (tid, t) in db.transactions().iter().enumerate() {
        for &item in t.as_slice() {
            rows[item as usize].push(tid as Item);
        }
    }
    TransactionDatabase::from_codes_with_base(rows, db.num_transactions())
}

/// Builds a workload database by name (deterministic given scale and seed,
/// so subprocesses reconstruct the identical database from the name alone).
fn build_workload(name: &str, scale: f64, seed: u64) -> Result<TransactionDatabase, String> {
    match name {
        "ncbi60" => Ok(preset_by_name("ncbi60")?.build(scale, seed)),
        "ncbi60-cols" => Ok(transpose(&preset_by_name("ncbi60")?.build(scale, seed))),
        "webview-tpo" => Ok(preset_by_name("webview-tpo")?.build(scale, seed)),
        "webview-basket" => Ok(transpose(
            &preset_by_name("webview-tpo")?.build(scale, seed),
        )),
        other => Err(format!("unknown workload '{other}'")),
    }
}

/// The timing support for one workload (E14 conventions: paper sweep
/// second-lowest on the row axis, row-count-relative on the transposed).
fn default_supp(name: &str, db: &TransactionDatabase, scale: f64) -> Result<u32, String> {
    let rows = db.num_transactions() as u32;
    Ok(match name {
        "ncbi60" => pick_supp(preset_by_name("ncbi60")?, scale),
        "webview-tpo" => pick_supp(preset_by_name("webview-tpo")?, scale),
        "ncbi60-cols" => (rows / 7).max(2),
        "webview-basket" => (rows / 1000).max(2),
        other => return Err(format!("unknown workload '{other}'")),
    })
}

/// Picks the paper-axis timing support: the second-lowest entry of the
/// scaled paper sweep (same convention as the E10–E14 bins).
fn pick_supp(preset: Preset, scale: f64) -> u32 {
    let mut sorted = fim_bench::scaled_sweep(preset, scale);
    sorted.sort_unstable();
    sorted.get(1).copied().unwrap_or(sorted[0])
}

/// The support the LCM pair is timed at. On `ncbi60` this is the shared
/// timing support; on the sparse `webview-tpo` the item-axis frontier
/// explodes at the paper-axis timing support (minutes per mine at supp 2),
/// so the pair runs at the sweep **median** there — recorded per cell in
/// the JSON, so the two supports are never conflated.
fn lcm_supp(name: &str, supp: u32, scale: f64) -> Result<u32, String> {
    Ok(match name {
        "webview-tpo" => {
            let mut sorted = fim_bench::scaled_sweep(preset_by_name("webview-tpo")?, scale);
            sorted.sort_unstable();
            sorted[(sorted.len() - 1) / 2]
        }
        _ => supp,
    })
}

/// The size/area constraint spec shared by every cell of a run.
#[derive(Clone, Copy)]
struct Spec {
    min_size: u32,
    max_size: u32,
    area_mult: u64,
}

impl Spec {
    /// The dense-code [`ConstraintSet`] at mining support `supp` (empty
    /// include/exclude, so it applies to any recoded database directly).
    fn constraints(&self, supp: u32) -> ConstraintSet {
        let mut cs = ConstraintSet::none();
        cs.include = ItemSet::empty();
        cs.min_size = self.min_size;
        cs.max_size = (self.max_size > 0).then_some(self.max_size);
        cs.min_area = self.area_mult * u64::from(supp);
        cs
    }
}

/// Mines one constrained cell. `push` selects the pushed path; otherwise
/// the unconstrained mine runs and the oracle predicate pass filters it.
/// Returns the result and the `constraint_prunes` counter (for the
/// post-filter arm: the number of sets the predicate pass dropped).
fn mine_constrained_cell(
    miner: &str,
    push: bool,
    db: &RecodedDatabase,
    supp: u32,
    cs: &ConstraintSet,
) -> Result<(MiningResult, u64), String> {
    macro_rules! run {
        ($m:expr) => {{
            let m = $m;
            if push {
                let (res, counters) = m.mine_constrained_with_stats(db, supp, cs);
                (res, counters.get(Counter::ConstraintPrunes))
            } else {
                let res = m.mine(db, supp);
                let before = res.sets.len() as u64;
                let res = apply_constraints_owned(res, cs);
                let dropped = before - res.sets.len() as u64;
                (res, dropped)
            }
        }};
    }
    Ok(match miner {
        "eclat" => run!(EclatMiner::default()),
        "declat" => run!(DEclatMiner::default()),
        "carpenter-lists" => run!(CarpenterListMiner::default()),
        "ista" => {
            let m = IstaMiner::default();
            if push {
                let (res, stats) = m.mine_constrained_with_stats(db, supp, cs);
                (res, stats.counters.get(Counter::ConstraintPrunes))
            } else {
                let res = m.mine(db, supp);
                let before = res.sets.len() as u64;
                let res = apply_constraints_owned(res, cs);
                let dropped = before - res.sets.len() as u64;
                (res, dropped)
            }
        }
        other => return Err(format!("unknown miner '{other}'")),
    })
}

/// Mines one LCM-pair cell, returning the result and the `closure_reuses`
/// counter (zero for the classic formulation, which never reuses).
fn mine_lcm_cell(
    miner: &str,
    db: &RecodedDatabase,
    supp: u32,
) -> Result<(MiningResult, u64), String> {
    Ok(match miner {
        "lcm" => {
            let (res, counters) = LcmMiner.mine_with_stats(db, supp);
            (res, counters.get(Counter::ClosureReuses))
        }
        "lcm-noreuse" => (LcmClassicMiner.mine(db, supp), 0),
        other => return Err(format!("unknown miner '{other}'")),
    })
}

/// If `argv` is a cell invocation (`ccell <workload> <scale> <seed> <miner>
/// <mode> <supp> <min_size> <max_size> <area_mult>`, mode `push`, `post`,
/// or `plain`), measures it in this process and prints
/// `RESULT <seconds> <sets> <counter>`.
fn maybe_run_ccell(argv: &[String]) -> Result<bool, String> {
    if argv.first().map(String::as_str) != Some("ccell") {
        return Ok(false);
    }
    if argv.len() != 10 {
        return Err(format!("ccell expects 9 operands, got {}", argv.len() - 1));
    }
    let scale: f64 = argv[2].parse().map_err(|e| format!("scale: {e}"))?;
    let seed: u64 = argv[3].parse().map_err(|e| format!("seed: {e}"))?;
    let miner = argv[4].as_str();
    let mode = argv[5].as_str();
    let supp: u32 = argv[6].parse().map_err(|e| format!("supp: {e}"))?;
    let spec = Spec {
        min_size: argv[7].parse().map_err(|e| format!("min_size: {e}"))?,
        max_size: argv[8].parse().map_err(|e| format!("max_size: {e}"))?,
        area_mult: argv[9].parse().map_err(|e| format!("area_mult: {e}"))?,
    };
    let db = build_workload(&argv[1], scale, seed)?;
    let recoded = RecodedDatabase::prepare(
        &db,
        supp,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let cs = spec.constraints(supp);
    let run_once = || -> Result<(MiningResult, u64), String> {
        match mode {
            "push" => mine_constrained_cell(miner, true, &recoded, supp, &cs),
            "post" => mine_constrained_cell(miner, false, &recoded, supp, &cs),
            "plain" => mine_lcm_cell(miner, &recoded, supp),
            other => Err(format!("unknown mode '{other}'")),
        }
    };
    let (secs, sets, counter) = std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(MINE_STACK_BYTES)
            .spawn_scoped(s, || -> Result<(f64, usize, u64), String> {
                drop(run_once()?); // warmup, untimed
                let start = Instant::now();
                let (result, counter) = run_once()?;
                Ok((start.elapsed().as_secs_f64(), result.len(), counter))
            })
            .expect("spawn failed")
            .join()
            .expect("mining thread panicked")
    })?;
    println!("RESULT {secs:.6} {sets} {counter}");
    Ok(true)
}

/// Spawns the current executable as a `ccell` subprocess and parses its
/// `RESULT` line.
#[allow(clippy::too_many_arguments)]
fn run_ccell_subprocess(
    workload: &str,
    scale: f64,
    seed: u64,
    miner: &str,
    mode: &str,
    supp: u32,
    spec: Spec,
) -> Result<(f64, usize, u64), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let out = std::process::Command::new(exe)
        .arg("ccell")
        .arg(workload)
        .arg(scale.to_string())
        .arg(seed.to_string())
        .arg(miner)
        .arg(mode)
        .arg(supp.to_string())
        .arg(spec.min_size.to_string())
        .arg(spec.max_size.to_string())
        .arg(spec.area_mult.to_string())
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("ccell failed with {}", out.status));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .ok_or("ccell produced no RESULT line")?;
    let f: Vec<&str> = line.split_whitespace().collect();
    if f.len() != 4 {
        return Err(format!("RESULT carries {} fields, expected 4", f.len() - 1));
    }
    Ok((
        f[1].parse().map_err(|e| format!("bad seconds: {e}"))?,
        f[2].parse().map_err(|e| format!("bad sets: {e}"))?,
        f[3].parse().map_err(|e| format!("bad counter: {e}"))?,
    ))
}

/// Runs one measured arm (reps subprocesses), enforcing counter and set
/// determinism across reps; returns (median seconds, sets, counter).
#[allow(clippy::too_many_arguments)]
fn measure(
    workload: &str,
    scale: f64,
    seed: u64,
    miner: &str,
    mode: &str,
    supp: u32,
    spec: Spec,
    reps: usize,
) -> Result<(f64, usize, u64), String> {
    let mut samples = Vec::with_capacity(reps);
    let mut first: Option<(usize, u64)> = None;
    for _ in 0..reps {
        let (secs, sets, counter) =
            run_ccell_subprocess(workload, scale, seed, miner, mode, supp, spec)?;
        match first {
            None => first = Some((sets, counter)),
            Some(f) if f != (sets, counter) => {
                return Err(format!(
                    "NONDETERMINISM on {workload}: {miner}/{mode} sets/counters differ between reps"
                ));
            }
            Some(_) => {}
        }
        samples.push(secs);
    }
    let (sets, counter) = first.expect("reps >= 1");
    Ok((median(&samples), sets, counter))
}

/// Median of a non-empty sample list (mean of the middle pair when even).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

struct ConstraintCell {
    workload: &'static str,
    miner: &'static str,
    supp: u32,
    pushed_seconds: f64,
    postfilter_seconds: f64,
    ratio: f64,
    sets: usize,
    sets_unconstrained: usize,
    prunes: u64,
}

struct LcmCell {
    workload: &'static str,
    supp: u32,
    cbo_seconds: f64,
    classic_seconds: f64,
    speedup: f64,
    sets: usize,
    closure_reuses: u64,
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_ccell(&argv)? {
        return Ok(());
    }
    let kv = parse_kv(&argv)?;
    let scale: f64 = kv
        .get("scale")
        .map_or(Ok(0.5), |s| s.parse().map_err(|e| format!("--scale: {e}")))?;
    let seed: u64 = kv
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("--seed: {e}")))?;
    let reps: usize = kv
        .get("reps")
        .map_or(Ok(9), |s| s.parse().map_err(|e| format!("--reps: {e}")))?;
    let spec = Spec {
        min_size: kv
            .get("min-size")
            .map_or(Ok(2), |s| s.parse().map_err(|e| format!("--min-size: {e}")))?,
        max_size: kv
            .get("max-size")
            .map_or(Ok(0), |s| s.parse().map_err(|e| format!("--max-size: {e}")))?,
        area_mult: kv.get("area-mult").map_or(Ok(24), |s| {
            s.parse().map_err(|e| format!("--area-mult: {e}"))
        })?,
    };
    let out_path = kv
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_constraints.json".to_owned());

    let mut cells: Vec<ConstraintCell> = Vec::new();
    let mut lcm_cells: Vec<LcmCell> = Vec::new();
    println!(
        "# E16 constraint pushing A/B + LCM CbO ablation (scale {scale}, seed {seed}, \
         reps {reps}, median-of-reps, one subprocess per rep)"
    );
    for workload in &WORKLOADS {
        let name = workload.name;
        let db = build_workload(name, scale, seed)?;
        let supp = default_supp(name, &db, scale)?;
        let wspec = Spec {
            area_mult: workload.area_mult.unwrap_or(spec.area_mult),
            ..spec
        };
        let cs = wspec.constraints(supp);
        println!(
            "# {name} ({} axis): {} transactions, {} items, supp {supp}, constraints [{cs}]",
            workload.axis,
            db.num_transactions(),
            db.num_items(),
        );
        let recoded = RecodedDatabase::prepare(
            &db,
            supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );

        // identity pass (untimed, in-process): the pushed output must be
        // byte-identical (canonicalized) to the post-filtered oracle
        let canon = |miner: &str, push: bool| -> Result<MiningResult, String> {
            std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || {
                        Ok(mine_constrained_cell(miner, push, &recoded, supp, &cs)?
                            .0
                            .canonicalized())
                    })
                    .expect("spawn failed")
                    .join()
                    .expect("mining thread panicked")
            })
        };
        for &miner in workload.miners {
            let pushed = canon(miner, true)?;
            let posted = canon(miner, false)?;
            if pushed != posted {
                return Err(format!(
                    "IDENTITY CHECK FAILED on {name}: {miner} pushed output differs from the \
                     post-filter oracle"
                ));
            }
        }

        println!(
            "{:>18} {:>8} {:>11} {:>11} {:>7} {:>8} {:>8} {:>9}",
            "miner", "supp", "pushed s", "postflt s", "ratio", "sets", "of", "prunes"
        );
        for &miner in workload.miners {
            let (push_s, push_sets, prunes) =
                measure(name, scale, seed, miner, "push", supp, wspec, reps)?;
            let (post_s, post_sets, dropped) =
                measure(name, scale, seed, miner, "post", supp, wspec, reps)?;
            if push_sets != post_sets {
                return Err(format!(
                    "IDENTITY CHECK FAILED on {name}: {miner} pushed cell found {push_sets} sets, \
                     post-filter found {post_sets}"
                ));
            }
            let unconstrained = post_sets + dropped as usize;
            let ratio = post_s / push_s;
            println!(
                "{:>18} {:>8} {:>11.4} {:>11.4} {:>6.2}x {:>8} {:>8} {:>9}",
                miner, supp, push_s, post_s, ratio, push_sets, unconstrained, prunes
            );
            cells.push(ConstraintCell {
                workload: name,
                miner,
                supp,
                pushed_seconds: push_s,
                postfilter_seconds: post_s,
                ratio,
                sets: push_sets,
                sets_unconstrained: unconstrained,
                prunes,
            });
        }

        if workload.lcm {
            // LCM pair identity, then timing (at its own support; see
            // `lcm_supp` for why webview's differs)
            let supp = lcm_supp(name, supp, scale)?;
            let recoded = RecodedDatabase::prepare(
                &db,
                supp,
                ItemOrder::AscendingFrequency,
                TransactionOrder::AscendingSize,
            );
            let lcm_out = std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || -> Result<(MiningResult, MiningResult), String> {
                        Ok((
                            mine_lcm_cell("lcm", &recoded, supp)?.0.canonicalized(),
                            mine_lcm_cell("lcm-noreuse", &recoded, supp)?
                                .0
                                .canonicalized(),
                        ))
                    })
                    .expect("spawn failed")
                    .join()
                    .expect("mining thread panicked")
            })?;
            if lcm_out.0 != lcm_out.1 {
                return Err(format!(
                    "IDENTITY CHECK FAILED on {name}: lcm and lcm-noreuse outputs differ"
                ));
            }
            let (cbo_s, cbo_sets, reuses) =
                measure(name, scale, seed, "lcm", "plain", supp, wspec, reps)?;
            let (classic_s, classic_sets, _) =
                measure(name, scale, seed, "lcm-noreuse", "plain", supp, wspec, reps)?;
            if cbo_sets != classic_sets {
                return Err(format!(
                    "IDENTITY CHECK FAILED on {name}: lcm cell found {cbo_sets} sets, \
                     lcm-noreuse found {classic_sets}"
                ));
            }
            let speedup = classic_s / cbo_s;
            println!(
                "# {name}/lcm: CbO {cbo_s:.4}s vs classic {classic_s:.4}s -> {speedup:.2}x \
                 ({cbo_sets} sets, {reuses} closure reuses)"
            );
            lcm_cells.push(LcmCell {
                workload: name,
                supp,
                cbo_seconds: cbo_s,
                classic_seconds: classic_s,
                speedup,
                sets: cbo_sets,
                closure_reuses: reuses,
            });
        }
    }

    write_json(&out_path, scale, seed, reps, spec, &cells, &lcm_cells)
        .map_err(|e| e.to_string())?;
    println!("# wrote {out_path}");
    Ok(())
}

fn write_json(
    path: &str,
    scale: f64,
    seed: u64,
    reps: usize,
    spec: Spec,
    cells: &[ConstraintCell],
    lcm_cells: &[LcmCell],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"constraint-push\",")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"seed\": {seed},")?;
    writeln!(f, "  \"reps\": {reps},")?;
    writeln!(
        f,
        "  \"spec\": \"min_size={} max_size={} min_area={}*supp (min_area scales with each workload's supp; max_size 0 = unbounded)\",",
        spec.min_size, spec.max_size, spec.area_mult
    )?;
    writeln!(
        f,
        "  \"timing\": \"median of reps, one subprocess per rep, warmup untimed, recode excluded; \
         ratio = postfilter/pushed (>1 means pushing wins), both arms byte-identical output\","
    )?;
    writeln!(f, "  \"cells\": [")?;
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"workload\": \"{}\", \"miner\": \"{}\", \"supp\": {}, \"pushed_seconds\": {:.6}, \"postfilter_seconds\": {:.6}, \"ratio\": {:.4}, \"sets\": {}, \"sets_unconstrained\": {}, \"constraint_prunes\": {}}}{comma}",
            c.workload,
            c.miner,
            c.supp,
            c.pushed_seconds,
            c.postfilter_seconds,
            c.ratio,
            c.sets,
            c.sets_unconstrained,
            c.prunes
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"lcm\": [")?;
    for (i, c) in lcm_cells.iter().enumerate() {
        let comma = if i + 1 == lcm_cells.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"workload\": \"{}\", \"supp\": {}, \"cbo_seconds\": {:.6}, \"classic_seconds\": {:.6}, \"speedup\": {:.4}, \"sets\": {}, \"closure_reuses\": {}}}{comma}",
            c.workload, c.supp, c.cbo_seconds, c.classic_seconds, c.speedup, c.sets, c.closure_reuses
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("constraints: {e}");
        std::process::exit(1);
    }
}

//! Experiment **E9**: pruning ablations — the paper's §3.1.1 claim that
//! item elimination "leads to a considerable speed-up" for Carpenter, plus
//! the remaining pruning switches (perfect extension / transaction
//! absorption, repository subtree pruning) and IsTa's item elimination.
//!
//! Usage: `pruning [--scale X] [--seed N] [--timeout SECS] [--supps ...]`

use fim_bench::{figure_main, maybe_run_cell, SweepConfig};
use fim_synth::Preset;
use std::time::Duration;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_cell(&argv) {
        return;
    }
    let mut config = SweepConfig::for_figure(
        Preset::Thrombin,
        0.15,
        &[
            "carpenter-table",
            "carpenter-table-noelim",
            "carpenter-table-noabsorb",
            "carpenter-table-norepo",
            "carpenter-lists",
            "carpenter-lists-noelim",
            "ista",
            "ista-noprune",
        ],
    );
    config.timeout = Duration::from_secs(60);
    config.csv_name = "pruning.csv".into();
    println!("# E9 pruning ablations — thrombin-like");
    if let Err(e) = figure_main(config, &argv) {
        eprintln!("pruning: {e}");
        std::process::exit(1);
    }
}

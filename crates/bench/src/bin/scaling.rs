//! Experiment **E10**: thread-scaling of the data-parallel IsTa miner.
//!
//! Mines a dense NCBI60-like and a sparse transposed-webview-like data set
//! with the sequential `IstaMiner` and with `ParallelIstaMiner` at a sweep
//! of thread counts, reporting wall time, speedup over sequential, and the
//! cross-checked closed-set count. Results go to `BENCH_scaling.json` in
//! the current directory (plus a table on stdout).
//!
//! Usage: `scaling [--scale X] [--seed N] [--reps R] [--threads 1,2,4,8]
//!                 [--supps N,M] [--out BENCH_scaling.json]`
//!
//! The default scale is 0.5. `--supps` overrides the per-preset minimum
//! supports (one value per preset, in the dense,sparse order printed by
//! the sweep).

use fim_bench::report::{tree_memory_json, tree_memory_line};
use fim_bench::{parse_kv, preset_by_name, MINE_STACK_BYTES};
use fim_core::{ClosedMiner, ItemOrder, RecodedDatabase, TransactionOrder};
use fim_ista::{IstaMiner, MineStats, ParallelIstaMiner};
use fim_synth::Preset;
use std::io::Write;
use std::time::Instant;

/// One measured cell of the sweep.
struct Measurement {
    preset: &'static str,
    supp: u32,
    threads: usize, // 0 = sequential miner
    seconds: f64,
    sets: usize,
}

/// Per-preset cell of the sweep: the preset plus the minimum support the
/// timing runs at (absolute, already scaled).
struct Workload {
    preset: Preset,
    supp: u32,
}

fn measure(db: &RecodedDatabase, miner: &dyn ClosedMiner, supp: u32, reps: usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut sets = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let result = miner.mine(db, supp);
        let t = start.elapsed().as_secs_f64();
        best = best.min(t);
        sets = result.len();
    }
    (best, sets)
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let kv = parse_kv(&argv)?;
    let scale: f64 = kv
        .get("scale")
        .map_or(Ok(0.5), |s| s.parse().map_err(|e| format!("--scale: {e}")))?;
    let seed: u64 = kv
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("--seed: {e}")))?;
    let reps: usize = kv
        .get("reps")
        .map_or(Ok(3), |s| s.parse().map_err(|e| format!("--reps: {e}")))?;
    let threads: Vec<usize> = match kv.get("threads") {
        None => vec![1, 2, 4, 8],
        Some(s) => s
            .split(',')
            .map(|t| t.parse().map_err(|e| format!("--threads: {e}")))
            .collect::<Result<_, _>>()?,
    };
    let out_path = kv
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_scaling.json".to_owned());

    // dense NCBI60-like (few long transactions) and sparse
    // transposed-webview-like (many short transactions); the support is
    // picked from the low end of each preset's paper sweep so the trees do
    // real work
    let mut workloads = [
        Workload {
            preset: preset_by_name("ncbi60")?,
            supp: pick_supp(preset_by_name("ncbi60")?, scale),
        },
        Workload {
            preset: preset_by_name("webview-tpo")?,
            supp: pick_supp(preset_by_name("webview-tpo")?, scale),
        },
    ];
    if let Some(s) = kv.get("supps") {
        let supps: Vec<u32> = s
            .split(',')
            .map(|v| v.parse().map_err(|e| format!("--supps: {e}")))
            .collect::<Result<_, _>>()?;
        if supps.len() != workloads.len() {
            return Err(format!("--supps expects {} values", workloads.len()));
        }
        for (w, s) in workloads.iter_mut().zip(supps) {
            w.supp = s;
        }
    }

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut tree_memory: Vec<(&'static str, MineStats)> = Vec::new();
    println!("# E10 thread scaling (scale {scale}, seed {seed}, reps {reps}, min-of-reps)");
    for w in &workloads {
        let name = w.preset.name();
        let db = w.preset.build(scale, seed);
        println!(
            "# {name}: {} transactions, {} items, supp {}",
            db.num_transactions(),
            db.num_items(),
            w.supp
        );
        let recoded = RecodedDatabase::prepare(
            &db,
            w.supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        print!("{:>14} {:>10}", "miner", "supp");
        println!(" {:>10} {:>9} {:>9}", "seconds", "speedup", "sets");

        // mining runs on a big-stack thread: tree depth is bounded by the
        // longest transaction (harness convention, see MINE_STACK_BYTES)
        let run_on_big_stack = |miner: Box<dyn ClosedMiner + Sync + Send>| -> (f64, usize) {
            std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || measure(&recoded, miner.as_ref(), w.supp, reps))
                    .expect("spawn failed")
                    .join()
                    .expect("mining thread panicked")
            })
        };

        // one untimed warmup so the first timed miner does not absorb the
        // cold-cache / page-fault cost of touching the data set first;
        // doubles as the stats run capturing the final tree occupancy
        let stats: MineStats = std::thread::scope(|s| {
            std::thread::Builder::new()
                .stack_size(MINE_STACK_BYTES)
                .spawn_scoped(s, || {
                    IstaMiner::default().mine_with_stats(&recoded, w.supp).1
                })
                .expect("spawn failed")
                .join()
                .expect("mining thread panicked")
        });
        println!(
            "# {name} final tree: {}",
            tree_memory_line(
                &stats.memory.to_metrics(stats.peak_nodes),
                stats.prune_passes as u64,
                stats.compactions as u64
            )
        );
        tree_memory.push((name, stats));

        let (seq_secs, seq_sets) = run_on_big_stack(Box::<IstaMiner>::default());
        println!(
            "{:>14} {:>10} {:>10.4} {:>9} {:>9}",
            "ista", w.supp, seq_secs, "1.00x", seq_sets
        );
        measurements.push(Measurement {
            preset: name,
            supp: w.supp,
            threads: 0,
            seconds: seq_secs,
            sets: seq_sets,
        });

        for &t in &threads {
            let (secs, sets) = run_on_big_stack(Box::new(ParallelIstaMiner::with_threads(t)));
            if sets != seq_sets {
                return Err(format!(
                    "CROSS-CHECK FAILED on {name}: ista-par/{t} found {sets} sets, sequential {seq_sets}"
                ));
            }
            println!(
                "{:>11}/{:<2} {:>10} {:>10.4} {:>8.2}x {:>9}",
                "ista-par",
                t,
                w.supp,
                secs,
                seq_secs / secs,
                sets
            );
            measurements.push(Measurement {
                preset: name,
                supp: w.supp,
                threads: t,
                seconds: secs,
                sets,
            });
        }
    }

    write_json(&out_path, scale, seed, reps, &measurements, &tree_memory)
        .map_err(|e| e.to_string())?;
    println!("# wrote {out_path}");
    Ok(())
}

/// Picks the timing support: the second-lowest entry of the scaled paper
/// sweep — low enough that the miner does substantial work, but not the
/// extreme tail where a single run dominates the whole sweep.
fn pick_supp(preset: Preset, scale: f64) -> u32 {
    let sweep = fim_bench::scaled_sweep(preset, scale);
    let mut sorted = sweep;
    sorted.sort_unstable();
    sorted.get(1).copied().unwrap_or(sorted[0])
}

fn write_json(
    path: &str,
    scale: f64,
    seed: u64,
    reps: usize,
    measurements: &[Measurement],
    tree_memory: &[(&'static str, MineStats)],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"thread-scaling\",")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"seed\": {seed},")?;
    writeln!(f, "  \"reps\": {reps},")?;
    writeln!(f, "  \"timing\": \"min of reps, recode excluded\",")?;
    writeln!(f, "  \"cells\": [")?;
    for (i, m) in measurements.iter().enumerate() {
        let miner = if m.threads == 0 { "ista" } else { "ista-par" };
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"preset\": \"{}\", \"miner\": \"{}\", \"threads\": {}, \"supp\": {}, \"seconds\": {:.6}, \"sets\": {}}}{}",
            m.preset, miner, m.threads, m.supp, m.seconds, m.sets, comma
        )?;
    }
    writeln!(f, "  ],")?;
    // final sequential-miner tree occupancy per preset (memory_stats())
    writeln!(f, "  \"tree_memory\": [")?;
    for (i, (preset, s)) in tree_memory.iter().enumerate() {
        let comma = if i + 1 == tree_memory.len() { "" } else { "," };
        writeln!(
            f,
            "    {}{comma}",
            tree_memory_json(
                preset,
                &s.memory.to_metrics(s.peak_nodes),
                Some((s.prune_passes as u64, s.compactions as u64))
            )
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("scaling: {e}");
        std::process::exit(1);
    }
}

//! Experiment **E11**: single-core hot-path ablation — transaction
//! coalescing × arena compaction for the IsTa miner, and early-stopping
//! intersections for the list-based Carpenter, on a dense (ncbi60-like)
//! and a sparse (transposed-webview-like) preset.
//!
//! Every configuration's output is cross-checked two ways: full
//! canonicalized identity against the all-features-off baseline at the
//! benchmark scale, and exact identity against `mine_reference` on a
//! transaction-truncated slice of each preset (the brute-force reference
//! is quadratic in the closed-set count, so it only fits the slice).
//! Results go to `BENCH_hotpath.json` plus a table on stdout.
//!
//! Each timed repetition runs in a fresh subprocess (like the figure
//! sweeps): memory-layout variants contaminate each other through
//! allocator state when timed back-to-back in one process — a
//! no-compaction run that recycles the freed blocks of a previous
//! compacted run inherits its locality, hiding the very effect under
//! measurement. Each subprocess does one untimed warmup, then one timed
//! mine.
//!
//! Usage: `hotpath [--scale X] [--seed N] [--reps R] [--supps N,M]
//!                 [--check-txs T] [--phases true] [--out BENCH_hotpath.json]`
//!
//! `--phases true` additionally prints a per-preset phase breakdown
//! (insert+prune walk, final compact, report walk) for the IsTa miner
//! with compaction off and on — diagnostic only, not part of the JSON.

use fim_bench::{parse_kv, preset_by_name, MINE_STACK_BYTES};
use fim_carpenter::{CarpenterConfig, CarpenterListMiner};
use fim_core::reference::mine_reference;
use fim_core::{
    ClosedMiner, ItemOrder, MiningResult, RecodedDatabase, TransactionDatabase, TransactionOrder,
};
use fim_ista::{IstaConfig, IstaMiner, PrefixTree, PrunePacer, PrunePolicy};
use fim_synth::Preset;
use std::io::Write;
use std::time::Instant;

/// Which hot-path switches one measured cell toggles.
#[derive(Clone, Copy)]
enum Variant {
    /// IsTa with the coalescing / compaction toggles.
    Ista { coalesce: bool, compact: bool },
    /// List-based Carpenter with the early-stop toggle.
    Lists { early_stop: bool },
}

impl Variant {
    fn label(self) -> String {
        match self {
            Variant::Ista { coalesce, compact } => format!(
                "ista c={}/m={}",
                if coalesce { "on" } else { "off" },
                if compact { "on" } else { "off" }
            ),
            Variant::Lists { early_stop } => {
                format!("lists es={}", if early_stop { "on" } else { "off" })
            }
        }
    }

    fn miner(self) -> Box<dyn ClosedMiner + Sync + Send> {
        match self {
            Variant::Ista { coalesce, compact } => Box::new(IstaMiner::with_config(IstaConfig {
                coalesce,
                compact,
                ..IstaConfig::default()
            })),
            Variant::Lists { early_stop } => {
                Box::new(CarpenterListMiner::with_config(CarpenterConfig {
                    early_stop,
                    ..CarpenterConfig::default()
                }))
            }
        }
    }
}

/// The full on/off sweep: the IsTa 2×2 grid, then the Carpenter A/B. The
/// first entry is the all-off baseline the others are checked against.
const VARIANTS: [Variant; 6] = [
    Variant::Ista {
        coalesce: false,
        compact: false,
    },
    Variant::Ista {
        coalesce: true,
        compact: false,
    },
    Variant::Ista {
        coalesce: false,
        compact: true,
    },
    Variant::Ista {
        coalesce: true,
        compact: true,
    },
    Variant::Lists { early_stop: false },
    Variant::Lists { early_stop: true },
];

/// One measured cell.
struct Measurement {
    preset: &'static str,
    variant: Variant,
    supp: u32,
    seconds: f64,
    sets: usize,
}

/// Summary speedup factor recorded in the JSON.
struct Speedup {
    preset: &'static str,
    metric: &'static str,
    factor: f64,
}

/// Outcome of one preset's `mine_reference` slice check.
struct RefCheck {
    preset: &'static str,
    transactions: usize,
    minsupp: u32,
    reference_sets: usize,
}

fn measure_once(db: &RecodedDatabase, miner: &dyn ClosedMiner, supp: u32) -> (f64, MiningResult) {
    let start = Instant::now();
    let result = miner.mine(db, supp);
    let secs = start.elapsed().as_secs_f64();
    (secs, result.canonicalized())
}

/// If `argv` is a cell invocation (`hotcell <preset> <scale> <seed>
/// <variant-index> <supp>`), measures that one variant in this process
/// (one untimed warmup, one timed mine, both on a big-stack thread),
/// prints `RESULT <seconds> <sets>`, and returns `true`.
fn maybe_run_hotcell(argv: &[String]) -> Result<bool, String> {
    if argv.first().map(String::as_str) != Some("hotcell") {
        return Ok(false);
    }
    if argv.len() != 6 {
        return Err(format!(
            "hotcell expects 5 operands, got {}",
            argv.len() - 1
        ));
    }
    let preset = preset_by_name(&argv[1])?;
    let scale: f64 = argv[2].parse().map_err(|e| format!("scale: {e}"))?;
    let seed: u64 = argv[3].parse().map_err(|e| format!("seed: {e}"))?;
    let vi: usize = argv[4].parse().map_err(|e| format!("variant: {e}"))?;
    let supp: u32 = argv[5].parse().map_err(|e| format!("supp: {e}"))?;
    let variant = *VARIANTS
        .get(vi)
        .ok_or_else(|| format!("variant index {vi} out of range"))?;
    let db = preset.build(scale, seed);
    let recoded = RecodedDatabase::prepare(
        &db,
        supp,
        ItemOrder::AscendingFrequency,
        TransactionOrder::AscendingSize,
    );
    let (secs, sets) = std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(MINE_STACK_BYTES)
            .spawn_scoped(s, || {
                let miner = variant.miner();
                drop(miner.mine(&recoded, supp)); // warmup, untimed
                let start = Instant::now();
                let result = miner.mine(&recoded, supp);
                (start.elapsed().as_secs_f64(), result.len())
            })
            .expect("spawn failed")
            .join()
            .expect("mining thread panicked")
    });
    println!("RESULT {secs:.6} {sets}");
    Ok(true)
}

/// Spawns the current executable as a `hotcell` subprocess and parses its
/// `RESULT` line.
fn run_hotcell_subprocess(
    preset: Preset,
    scale: f64,
    seed: u64,
    vi: usize,
    supp: u32,
) -> Result<(f64, usize), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let out = std::process::Command::new(exe)
        .arg("hotcell")
        .arg(preset.name())
        .arg(scale.to_string())
        .arg(seed.to_string())
        .arg(vi.to_string())
        .arg(supp.to_string())
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("hotcell failed with {}", out.status));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .ok_or("hotcell produced no RESULT line")?;
    let mut parts = line.split_whitespace().skip(1);
    let seconds: f64 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("bad RESULT seconds")?;
    let sets: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or("bad RESULT sets")?;
    Ok((seconds, sets))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_hotcell(&argv)? {
        return Ok(());
    }
    let kv = parse_kv(&argv)?;
    let scale: f64 = kv
        .get("scale")
        .map_or(Ok(0.5), |s| s.parse().map_err(|e| format!("--scale: {e}")))?;
    let seed: u64 = kv
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("--seed: {e}")))?;
    let reps: usize = kv
        .get("reps")
        .map_or(Ok(5), |s| s.parse().map_err(|e| format!("--reps: {e}")))?;
    let check_txs: usize = kv.get("check-txs").map_or(Ok(10), |s| {
        s.parse().map_err(|e| format!("--check-txs: {e}"))
    })?;
    let out_path = kv
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_owned());

    let mut supps = vec![
        pick_supp(preset_by_name("ncbi60")?, scale),
        pick_supp(preset_by_name("webview-tpo")?, scale),
    ];
    if let Some(s) = kv.get("supps") {
        let parsed: Vec<u32> = s
            .split(',')
            .map(|v| v.parse().map_err(|e| format!("--supps: {e}")))
            .collect::<Result<_, _>>()?;
        if parsed.len() != supps.len() {
            return Err(format!("--supps expects {} values", supps.len()));
        }
        supps = parsed;
    }
    let workloads = [
        (preset_by_name("ncbi60")?, supps[0]),
        (preset_by_name("webview-tpo")?, supps[1]),
    ];

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut speedups: Vec<Speedup> = Vec::new();
    let mut ref_checks: Vec<RefCheck> = Vec::new();
    println!(
        "# E11 hot-path ablation (scale {scale}, seed {seed}, reps {reps}, \
         median-of-reps, one subprocess per rep)"
    );
    for (preset, supp) in workloads {
        let name = preset.name();
        let db = preset.build(scale, seed);
        println!(
            "# {name}: {} transactions, {} items, supp {supp}",
            db.num_transactions(),
            db.num_items()
        );
        let recoded = RecodedDatabase::prepare(
            &db,
            supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );

        // identity pass (untimed, in-process): every variant's canonical
        // output must equal the all-off baseline at the benchmark scale
        let run_on_big_stack = |variant: Variant| -> (f64, MiningResult) {
            std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || measure_once(&recoded, variant.miner().as_ref(), supp))
                    .expect("spawn failed")
                    .join()
                    .expect("mining thread panicked")
            })
        };
        let mut baseline: Option<MiningResult> = None;
        for &variant in VARIANTS.iter() {
            let (_, canon) = run_on_big_stack(variant);
            match &baseline {
                None => baseline = Some(canon),
                Some(want) => {
                    if &canon != want {
                        return Err(format!(
                            "CROSS-CHECK FAILED on {name}: '{}' output differs from baseline",
                            variant.label()
                        ));
                    }
                }
            }
        }
        let sets = baseline.as_ref().map_or(0, MiningResult::len);

        // timing: each rep of each variant is a fresh subprocess (see the
        // module docs — back-to-back in-process runs share allocator state
        // and cross-contaminate memory-layout variants). The aggregate is
        // the *median* over reps: with per-process variance (page
        // placement, huge-page luck) the minimum just rewards whichever
        // variant drew the luckiest layout once.
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); VARIANTS.len()];
        for _rep in 0..reps {
            for (vi, _) in VARIANTS.iter().enumerate() {
                let (secs, cell_sets) = run_hotcell_subprocess(preset, scale, seed, vi, supp)?;
                if cell_sets != sets {
                    return Err(format!(
                        "CROSS-CHECK FAILED on {name}: subprocess cell found {cell_sets} sets, expected {sets}"
                    ));
                }
                samples[vi].push(secs);
            }
        }
        let times: Vec<f64> = samples.iter().map(|s| median(s)).collect();
        println!(
            "{:>18} {:>10} {:>10} {:>9} {:>9}",
            "config", "supp", "seconds", "vs off", "sets"
        );
        for (vi, &variant) in VARIANTS.iter().enumerate() {
            let off_time = match variant {
                Variant::Ista { .. } => times[0],
                Variant::Lists { .. } => times[4],
            };
            println!(
                "{:>18} {:>10} {:>10.4} {:>8.2}x {:>9}",
                variant.label(),
                supp,
                times[vi],
                off_time / times[vi],
                sets
            );
            measurements.push(Measurement {
                preset: name,
                variant,
                supp,
                seconds: times[vi],
                sets,
            });
        }
        speedups.push(Speedup {
            preset: name,
            metric: "ista coalesce+compact vs off",
            factor: times[0] / times[3],
        });
        speedups.push(Speedup {
            preset: name,
            metric: "lists early-stop vs off",
            factor: times[4] / times[5],
        });

        if kv.get("phases").map(String::as_str) == Some("true") {
            std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || print_phases(name, &recoded, supp))
                    .expect("spawn failed")
                    .join()
                    .expect("phases thread panicked")
            });
        }

        // reference slice: the brute-force miner is quadratic in the
        // closed-set count, so the exact-identity check runs on the first
        // `check_txs` transactions at a deliberately low support
        let check_supp = 2u32.min(check_txs as u32).max(1);
        let slice: Vec<Vec<fim_core::Item>> = db
            .transactions()
            .iter()
            .take(check_txs)
            .map(|t| t.as_slice().to_vec())
            .collect();
        let slice_len = slice.len();
        let small = TransactionDatabase::from_codes_with_base(slice, db.num_items());
        let small_recoded = RecodedDatabase::prepare(
            &small,
            check_supp,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        let want = std::thread::scope(|s| {
            std::thread::Builder::new()
                .stack_size(MINE_STACK_BYTES)
                .spawn_scoped(s, || mine_reference(&small_recoded, check_supp))
                .expect("spawn failed")
                .join()
                .expect("reference thread panicked")
        });
        for variant in VARIANTS {
            let got = std::thread::scope(|s| {
                std::thread::Builder::new()
                    .stack_size(MINE_STACK_BYTES)
                    .spawn_scoped(s, || {
                        variant
                            .miner()
                            .mine(&small_recoded, check_supp)
                            .canonicalized()
                    })
                    .expect("spawn failed")
                    .join()
                    .expect("mining thread panicked")
            });
            if got != want {
                return Err(format!(
                    "REFERENCE CHECK FAILED on {name} slice: '{}' differs from mine_reference",
                    variant.label()
                ));
            }
        }
        println!(
            "# {name} reference slice: {slice_len} transactions, supp {check_supp}, {} sets, all {} configs exact",
            want.len(),
            VARIANTS.len()
        );
        ref_checks.push(RefCheck {
            preset: name,
            transactions: slice_len,
            minsupp: check_supp,
            reference_sets: want.len(),
        });
    }

    for s in &speedups {
        println!("# {} {}: {:.2}x", s.preset, s.metric, s.factor);
    }
    write_json(
        &out_path,
        scale,
        seed,
        reps,
        &measurements,
        &speedups,
        &ref_checks,
    )
    .map_err(|e| e.to_string())?;
    println!("# wrote {out_path}");
    Ok(())
}

/// Diagnostic phase breakdown: replays the sequential miner loop with the
/// public tree API so the insert+prune walk, the final compaction, and the
/// report walk can be timed separately, with compaction off and on.
fn print_phases(name: &str, recoded: &RecodedDatabase, supp: u32) {
    for compact in [false, true] {
        let t0 = Instant::now();
        let mut tree = PrefixTree::new(recoded.num_items());
        let mut remaining = recoded.item_supports().to_vec();
        let mut pacer = PrunePacer::new(PrunePolicy::Growth(2.0));
        for t in recoded.transactions() {
            for &i in t.as_ref() {
                remaining[i as usize] -= 1;
            }
            tree.add_transaction(t.as_ref());
            if pacer.due(tree.node_count()) {
                tree.prune(&remaining, supp);
                pacer.pruned(tree.node_count());
                if compact {
                    tree.compact_if_fragmented();
                }
            }
        }
        let insert_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        if compact {
            tree.compact_if_fragmented();
        }
        let compact_s = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        let sets = tree.report(supp).len();
        let report_s = t2.elapsed().as_secs_f64();
        println!(
            "# {name} phases (compact {}): insert+prune {insert_s:.4}s, final compact {compact_s:.4}s, report {report_s:.4}s, {sets} sets, {} nodes",
            if compact { "on" } else { "off" },
            tree.node_count()
        );
    }
}

/// Median of a non-empty sample list (mean of the middle pair when even).
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Picks the timing support: the second-lowest entry of the scaled paper
/// sweep (same convention as the E10 scaling bin).
fn pick_supp(preset: Preset, scale: f64) -> u32 {
    let mut sorted = fim_bench::scaled_sweep(preset, scale);
    sorted.sort_unstable();
    sorted.get(1).copied().unwrap_or(sorted[0])
}

fn write_json(
    path: &str,
    scale: f64,
    seed: u64,
    reps: usize,
    measurements: &[Measurement],
    speedups: &[Speedup],
    ref_checks: &[RefCheck],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"hotpath-ablation\",")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"seed\": {seed},")?;
    writeln!(f, "  \"reps\": {reps},")?;
    writeln!(
        f,
        "  \"timing\": \"median of reps, one subprocess per rep, warmup untimed, recode excluded\","
    )?;
    writeln!(f, "  \"cells\": [")?;
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        let features = match m.variant {
            Variant::Ista { coalesce, compact } => {
                format!("\"miner\": \"ista\", \"coalesce\": {coalesce}, \"compact\": {compact}")
            }
            Variant::Lists { early_stop } => {
                format!("\"miner\": \"carpenter-lists\", \"early_stop\": {early_stop}")
            }
        };
        writeln!(
            f,
            "    {{\"preset\": \"{}\", {features}, \"supp\": {}, \"seconds\": {:.6}, \"sets\": {}}}{comma}",
            m.preset, m.supp, m.seconds, m.sets
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"speedups\": [")?;
    for (i, s) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"preset\": \"{}\", \"metric\": \"{}\", \"factor\": {:.4}}}{comma}",
            s.preset, s.metric, s.factor
        )?;
    }
    writeln!(f, "  ],")?;
    // exact-output checks vs mine_reference on the truncated slices; the
    // run aborts before writing this file if any configuration disagrees
    writeln!(f, "  \"reference_checks\": [")?;
    for (i, r) in ref_checks.iter().enumerate() {
        let comma = if i + 1 == ref_checks.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"preset\": \"{}\", \"transactions\": {}, \"minsupp\": {}, \"reference_sets\": {}, \"status\": \"ok\"}}{comma}",
            r.preset, r.transactions, r.minsupp, r.reference_sets
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("hotpath: {e}");
        std::process::exit(1);
    }
}

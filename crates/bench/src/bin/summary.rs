//! Aggregates all recorded sweeps (`target/experiments/*.csv`) into the
//! paper-vs-measured verdict: per data set, the fastest algorithm at the
//! highest and lowest completed support, the IsTa-relative factors, and
//! where each enumeration baseline dropped out.

use fim_bench::report::experiments_dir;
use std::collections::BTreeMap;

#[derive(Debug, Default, Clone)]
struct Cell {
    seconds: Option<f64>,
    status: String,
}

fn main() {
    let dir = experiments_dir();
    let mut found_any = false;
    let mut entries: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd.flatten().collect(),
        Err(e) => {
            eprintln!(
                "summary: cannot read {}: {e} (run the fig* binaries first)",
                dir.display()
            );
            std::process::exit(1);
        }
    };
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.extension().map(|e| e != "csv").unwrap_or(true) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        // supp -> miner -> cell
        let mut table: BTreeMap<u32, BTreeMap<String, Cell>> = BTreeMap::new();
        let mut dataset = String::new();
        for line in text.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() < 6 {
                continue;
            }
            dataset = cols[0].to_owned();
            let Ok(supp) = cols[1].parse::<u32>() else {
                continue;
            };
            table.entry(supp).or_default().insert(
                cols[2].to_owned(),
                Cell {
                    seconds: cols[4].parse().ok(),
                    status: cols[3].to_owned(),
                },
            );
        }
        if table.is_empty() {
            continue;
        }
        found_any = true;
        println!(
            "== {} ({})",
            path.file_name().unwrap().to_string_lossy(),
            dataset
        );
        // per support (descending): winner and ista-relative factors
        for (supp, miners) in table.iter().rev() {
            let mut oks: Vec<(&String, f64)> = miners
                .iter()
                .filter_map(|(m, c)| c.seconds.map(|s| (m, s)))
                .collect();
            if oks.is_empty() {
                continue;
            }
            oks.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let (winner, best) = (&oks[0].0, oks[0].1);
            let ista = miners.get("ista").and_then(|c| c.seconds);
            let rel = ista
                .map(|i| format!("{:>6.2}x ista", best / i.max(1e-9)))
                .unwrap_or_default();
            let dead: Vec<&str> = miners
                .iter()
                .filter(|(_, c)| c.status == "timeout")
                .map(|(m, _)| m.as_str())
                .collect();
            println!(
                "  supp {supp:>5}: fastest {winner:<22} {best:>9.3}s {rel:>14} {}",
                if dead.is_empty() {
                    String::new()
                } else {
                    format!("(timed out: {})", dead.join(", "))
                }
            );
        }
        println!();
    }
    if !found_any {
        eprintln!(
            "summary: no CSV records in {} — run the fig* binaries first",
            dir.display()
        );
        std::process::exit(1);
    }
}

//! Aggregates all recorded sweeps (`target/experiments/*.csv`) into the
//! paper-vs-measured verdict: per data set, the fastest algorithm at the
//! highest and lowest completed support, the IsTa-relative factors, and
//! where each enumeration baseline dropped out. When `BENCH_scaling.json`
//! or `BENCH_hotpath.json` records exist, their final prefix-tree memory
//! stats are appended as a footer.

use fim_bench::report::experiments_dir;
use std::collections::BTreeMap;
use std::path::Path;

#[derive(Debug, Default, Clone)]
struct Cell {
    seconds: Option<f64>,
    status: String,
}

fn main() {
    let dir = experiments_dir();
    let mut found_any = false;
    // a missing experiments dir is not fatal: the tree-memory footer can
    // still report on JSON records sitting in the current directory
    let mut entries: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd.flatten().collect(),
        Err(_) => Vec::new(),
    };
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.extension().map(|e| e != "csv").unwrap_or(true) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        // supp -> miner -> cell
        let mut table: BTreeMap<u32, BTreeMap<String, Cell>> = BTreeMap::new();
        let mut dataset = String::new();
        for line in text.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() < 6 {
                continue;
            }
            dataset = cols[0].to_owned();
            let Ok(supp) = cols[1].parse::<u32>() else {
                continue;
            };
            table.entry(supp).or_default().insert(
                cols[2].to_owned(),
                Cell {
                    seconds: cols[4].parse().ok(),
                    status: cols[3].to_owned(),
                },
            );
        }
        if table.is_empty() {
            continue;
        }
        found_any = true;
        println!(
            "== {} ({})",
            path.file_name().unwrap().to_string_lossy(),
            dataset
        );
        // per support (descending): winner and ista-relative factors
        for (supp, miners) in table.iter().rev() {
            let mut oks: Vec<(&String, f64)> = miners
                .iter()
                .filter_map(|(m, c)| c.seconds.map(|s| (m, s)))
                .collect();
            if oks.is_empty() {
                continue;
            }
            oks.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let (winner, best) = (&oks[0].0, oks[0].1);
            let ista = miners.get("ista").and_then(|c| c.seconds);
            let rel = ista
                .map(|i| format!("{:>6.2}x ista", best / i.max(1e-9)))
                .unwrap_or_default();
            let dead: Vec<&str> = miners
                .iter()
                .filter(|(_, c)| c.status == "timeout")
                .map(|(m, _)| m.as_str())
                .collect();
            println!(
                "  supp {supp:>5}: fastest {winner:<22} {best:>9.3}s {rel:>14} {}",
                if dead.is_empty() {
                    String::new()
                } else {
                    format!("(timed out: {})", dead.join(", "))
                }
            );
        }
        println!();
    }
    print_tree_memory(&dir);
    if !found_any {
        eprintln!(
            "summary: no CSV records in {} — run the fig* binaries first",
            dir.display()
        );
        std::process::exit(1);
    }
}

/// Pulls one numeric field out of a hand-written JSON object line.
fn json_field(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Prints the `tree_memory` arrays of any scaling / hotpath JSON records
/// found in the current directory or the experiments directory. Purely
/// informational — absence is not an error.
fn print_tree_memory(dir: &Path) {
    let names = [
        "BENCH_scaling.json",
        "BENCH_hotpath.json",
        "BENCH_patricia.json",
    ];
    let mut printed_header = false;
    for name in names {
        let path = [Path::new(name).to_path_buf(), dir.join(name)]
            .into_iter()
            .find(|p| p.is_file());
        let Some(path) = path else { continue };
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let mut in_mem = false;
        for line in text.lines() {
            if line.contains("\"tree_memory\"") {
                in_mem = true;
                continue;
            }
            if !in_mem {
                continue;
            }
            let t = line.trim();
            if t.starts_with(']') {
                break;
            }
            let (Some(live), Some(total), Some(free)) = (
                json_field(t, "live_nodes"),
                json_field(t, "total_slots"),
                json_field(t, "free_slots"),
            ) else {
                continue;
            };
            let preset = t
                .split("\"preset\": \"")
                .nth(1)
                .and_then(|r| r.split('"').next())
                .unwrap_or("?");
            if !printed_header {
                println!("== final prefix-tree memory (sequential ista)");
                printed_header = true;
            }
            // segment fields are present once the layout is Patricia
            // (v2 JSON records); older records render as zero
            let tree = fim_obs::TreeMetrics {
                peak_nodes: json_field(t, "peak_nodes").unwrap_or(0),
                live_nodes: live,
                total_slots: total,
                free_slots: free,
                seg_items: json_field(t, "seg_items").unwrap_or(0),
                seg_bytes: json_field(t, "seg_bytes").unwrap_or(0),
                approx_bytes: json_field(t, "approx_bytes").unwrap_or(0),
            };
            println!(
                "  {:<24} {preset:<14} {}",
                path.file_name().unwrap().to_string_lossy(),
                fim_bench::report::tree_memory_line(
                    &tree,
                    json_field(t, "prune_passes").unwrap_or(0),
                    json_field(t, "compactions").unwrap_or(0),
                ),
            );
        }
    }
    if printed_header {
        println!();
    }
}

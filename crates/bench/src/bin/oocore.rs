//! Experiment **E15**: out-of-core shard-spill mining — peak RSS versus
//! shard count under a fixed byte budget.
//!
//! The workload is the *basket* (untransposed) form of the webview preset:
//! the same IBM-Quest generator the `webview-tpo` preset transposes, kept
//! as a long stream of short transactions — the many-transactions shape
//! the out-of-core slicer is built for. One FIMI file is written to disk
//! once; every cell is a fresh subprocess that mines that file end to end
//! (read through report serialization) and reports its wall time and its
//! peak resident set (`VmHWM` from `/proc/self/status`), so allocator
//! state never leaks between cells and the RSS number is the number the
//! kernel actually charged the process.
//!
//! Cells: one in-memory baseline (`fim_core::mine_closed_with_orders` over
//! the materialized database) and one out-of-core run per byte budget
//! (fractions of the estimated resident size of the transaction slice, so
//! the budgets map to ~4, ~8, and ~16 shards). Every cell's serialized
//! report is FNV-hashed and cross-checked against the baseline — the
//! pipeline must be byte-identical at every budget, every rep.
//!
//! The honest trade-off this experiment records: the out-of-core pipeline
//! reads the input twice and pays spill/reload I/O, so it *loses* wall
//! time; what it buys is the peak-RSS bound (DESIGN.md §17).
//!
//! Usage: `oocore [--scale X] [--seed N] [--reps R] [--supp S]
//!                [--out BENCH_oocore.json] [--ledger LEDGER.jsonl]`
//!
//! With `--ledger` every aggregated cell also appends one `fim-ledger/1`
//! line (input FNV-1a, median time, VmHWM, shard/spill counters) so two
//! bench runs gate through `fim compare`.

use fim_bench::{parse_kv, MINE_STACK_BYTES};
use fim_core::{mine_closed_with_orders, Budget, ItemOrder, TransactionOrder};
use fim_io::FimiLimits;
use fim_ista::{IstaMiner, OutOfCoreConfig};
// the shared probes: FNV-1a for report identity, VmHWM from
// /proc/self/status for the peak-RSS column (the sampler's probe, so
// the bench and --sample report the same number)
use fim_obs::{fnv1a, vmhwm_kb};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Byte-budget cells, as divisors of the estimated in-memory transaction
/// slice: `est / 4` ≈ 4-5 shards, up to `est / 16` ≈ 16-17 shards.
const BUDGET_DIVISORS: [u64; 3] = [4, 8, 16];

/// Support threshold as a fraction of the transaction count when `--supp`
/// is not given (sparse basket data: short transactions, Zipf items).
const DEFAULT_SUPP_FRAC: f64 = 0.005;

/// What one `oocell` subprocess reports.
#[derive(Clone, Copy)]
struct CellResult {
    seconds: f64,
    sets: usize,
    vmhwm_kb: u64,
    shards: u64,
    spilled: u64,
    merge_passes: u64,
    spill_bytes: u64,
    hash: u64,
}

/// One aggregated row of the experiment (medians over reps; structure and
/// hash are deterministic and verified identical across reps).
struct Measurement {
    mode: &'static str,
    mem_budget: u64,
    seconds: f64,
    vmhwm_kb: u64,
    cell: CellResult,
}

/// The basket-form webview workload: the quest generator of
/// [`fim_synth::Preset::Webview`] *without* the transpose.
fn basket_config(scale: f64, seed: u64) -> fim_synth::QuestConfig {
    let s = |x: usize| ((x as f64 * scale).round() as usize).max(4);
    fim_synth::QuestConfig {
        transactions: s(59_602),
        items: s(497),
        avg_transaction_len: 3,
        patterns: s(600),
        avg_pattern_len: 4,
        keep_prob: 0.75,
        zipf: 0.9,
        seed,
    }
}

/// If `argv` is a cell invocation (`oocell <data> <supp> <mode mem|ooc>
/// <mem_budget> <spill_dir>`), mines the FIMI file end to end in this
/// process on a big-stack thread, prints `RESULT <secs> <sets> <vmhwm_kb>
/// <shards> <spilled> <merges> <spill_bytes> <hash>`, and returns `true`.
fn maybe_run_oocell(argv: &[String]) -> Result<bool, String> {
    if argv.first().map(String::as_str) != Some("oocell") {
        return Ok(false);
    }
    if argv.len() != 6 {
        return Err(format!("oocell expects 5 operands, got {}", argv.len() - 1));
    }
    let data = PathBuf::from(&argv[1]);
    let supp: u32 = argv[2].parse().map_err(|e| format!("supp: {e}"))?;
    let mode = argv[3].as_str();
    let mem_budget: u64 = argv[4].parse().map_err(|e| format!("mem_budget: {e}"))?;
    let spill_dir = PathBuf::from(&argv[5]);
    let cell = std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(MINE_STACK_BYTES)
            .spawn_scoped(s, || {
                run_one_cell(&data, supp, mode, mem_budget, &spill_dir)
            })
            .expect("spawn failed")
            .join()
            .expect("mining thread panicked")
    })?;
    println!(
        "RESULT {:.6} {} {} {} {} {} {} {:016x}",
        cell.seconds,
        cell.sets,
        cell.vmhwm_kb,
        cell.shards,
        cell.spilled,
        cell.merge_passes,
        cell.spill_bytes,
        cell.hash
    );
    Ok(true)
}

/// Mines the file once, end to end, and measures this process.
fn run_one_cell(
    data: &Path,
    supp: u32,
    mode: &str,
    mem_budget: u64,
    spill_dir: &Path,
) -> Result<CellResult, String> {
    let start = Instant::now();
    let (report, sets, shards, spilled, merge_passes, spill_bytes) = match mode {
        "mem" => {
            let db = fim_io::read_fimi_path(data).map_err(|e| e.to_string())?;
            let result = mine_closed_with_orders(
                &db,
                supp,
                &IstaMiner::default(),
                ItemOrder::AscendingFrequency,
                TransactionOrder::Original,
            );
            let mut buf = Vec::new();
            fim_io::write_results(&result, &db, &mut buf).map_err(|e| e.to_string())?;
            (buf, result.len(), 1, 0, 0, 0)
        }
        "ooc" => {
            let run = fim_io::mine_fimi_out_of_core(
                data,
                &FimiLimits::default(),
                supp,
                ItemOrder::AscendingFrequency,
                OutOfCoreConfig::new(mem_budget, spill_dir),
                &Budget::unlimited(),
            )
            .map_err(|e| e.to_string())?;
            if run.outcome.is_interrupted() {
                return Err("unlimited budget must not interrupt".to_owned());
            }
            let result = run.outcome.result();
            let mut buf = Vec::new();
            fim_io::write_results_named(result, &run.catalog, &mut buf)
                .map_err(|e| e.to_string())?;
            let leftovers = std::fs::read_dir(spill_dir).map_or(0, |d| d.count());
            if leftovers != 0 {
                return Err(format!("{leftovers} files left in the spill dir"));
            }
            let s = run.stats;
            (
                buf,
                result.len(),
                s.shards,
                s.spilled,
                s.merge_passes,
                s.spill_bytes,
            )
        }
        other => return Err(format!("mode must be mem or ooc, got '{other}'")),
    };
    let seconds = start.elapsed().as_secs_f64();
    Ok(CellResult {
        seconds,
        sets,
        vmhwm_kb: vmhwm_kb()?,
        shards,
        spilled,
        merge_passes,
        spill_bytes,
        hash: fnv1a(&report),
    })
}

/// Spawns the current executable as an `oocell` subprocess and parses its
/// `RESULT` line.
fn run_oocell_subprocess(
    data: &Path,
    supp: u32,
    mode: &str,
    mem_budget: u64,
    spill_dir: &Path,
) -> Result<CellResult, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let out = std::process::Command::new(exe)
        .arg("oocell")
        .arg(data)
        .arg(supp.to_string())
        .arg(mode)
        .arg(mem_budget.to_string())
        .arg(spill_dir)
        .stderr(std::process::Stdio::inherit())
        .output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("oocell failed with {}", out.status));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .ok_or("oocell produced no RESULT line")?;
    let f: Vec<&str> = line.split_whitespace().skip(1).collect();
    if f.len() != 8 {
        return Err(format!("RESULT carries {} fields, expected 8", f.len()));
    }
    let num = |i: usize| -> Result<u64, String> {
        f[i].parse()
            .map_err(|e| format!("bad RESULT field {i}: {e}"))
    };
    Ok(CellResult {
        seconds: f[0].parse().map_err(|e| format!("bad seconds: {e}"))?,
        sets: num(1)? as usize,
        vmhwm_kb: num(2)?,
        shards: num(3)?,
        spilled: num(4)?,
        merge_passes: num(5)?,
        spill_bytes: num(6)?,
        hash: u64::from_str_radix(f[7], 16).map_err(|e| format!("bad hash: {e}"))?,
    })
}

fn median_u64(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn median_f64(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_oocell(&argv)? {
        return Ok(());
    }
    let kv = parse_kv(&argv)?;
    let scale: f64 = kv
        .get("scale")
        .map_or(Ok(1.0), |s| s.parse().map_err(|e| format!("--scale: {e}")))?;
    let seed: u64 = kv
        .get("seed")
        .map_or(Ok(1), |s| s.parse().map_err(|e| format!("--seed: {e}")))?;
    let reps: usize = kv
        .get("reps")
        .map_or(Ok(5), |s| s.parse().map_err(|e| format!("--reps: {e}")))?;
    let out_path = kv
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_oocore.json".to_owned());
    let ledger_path = kv.get("ledger").cloned();

    // one FIMI file on disk, shared by every cell
    let db = fim_synth::quest::generate(&basket_config(scale, seed));
    let supp: u32 = match kv.get("supp") {
        Some(s) => s.parse().map_err(|e| format!("--supp: {e}"))?,
        None => (((db.num_transactions() as f64) * DEFAULT_SUPP_FRAC).ceil() as u32).max(2),
    };
    let tag = std::process::id();
    let data = std::env::temp_dir().join(format!("fim-oocore-bench-{tag}.fimi"));
    let spill_dir = std::env::temp_dir().join(format!("fim-oocore-bench-{tag}-spill"));
    fim_io::write_fimi_path(&db, &data).map_err(|e| e.to_string())?;
    let fimi_bytes = std::fs::metadata(&data).map_err(|e| e.to_string())?.len();
    // same resident-size estimate the pipeline's slicer applies
    let est_bytes = db.total_occurrences() as u64 * 4 + db.num_transactions() as u64 * 32;
    println!(
        "# E15 out-of-core RSS (webview-basket, scale {scale}, seed {seed}, supp {supp}, \
         reps {reps}, median-of-reps, one subprocess per rep)"
    );
    println!(
        "# {} transactions, {} items, {} occurrences, {fimi_bytes} FIMI bytes, \
         ~{est_bytes} resident bytes in memory",
        db.num_transactions(),
        db.num_items(),
        db.total_occurrences()
    );

    // modes: the in-memory baseline, then one budget per divisor
    let mut modes: Vec<(&'static str, u64)> = vec![("in-memory", 0)];
    for d in BUDGET_DIVISORS {
        modes.push(("out-of-core", (est_bytes / d).max(1)));
    }
    let mut measurements: Vec<Measurement> = Vec::new();
    for (mode, mem_budget) in modes {
        let cell_mode = if mode == "in-memory" { "mem" } else { "ooc" };
        let mut secs = Vec::with_capacity(reps);
        let mut hwm = Vec::with_capacity(reps);
        let mut first: Option<CellResult> = None;
        for _rep in 0..reps {
            let cell = run_oocell_subprocess(&data, supp, cell_mode, mem_budget, &spill_dir)?;
            match first {
                None => first = Some(cell),
                Some(f) => {
                    if f.hash != cell.hash || f.sets != cell.sets || f.shards != cell.shards {
                        return Err(format!(
                            "NONDETERMINISM in {mode} budget {mem_budget}: reps disagree"
                        ));
                    }
                }
            }
            secs.push(cell.seconds);
            hwm.push(cell.vmhwm_kb);
        }
        let cell = first.expect("reps >= 1");
        measurements.push(Measurement {
            mode,
            mem_budget,
            seconds: median_f64(&secs),
            vmhwm_kb: median_u64(&mut hwm),
            cell,
        });
    }

    // canonical cross-check at every cell: byte-identical to the baseline
    let base = &measurements[0];
    for m in &measurements[1..] {
        if m.cell.hash != base.cell.hash || m.cell.sets != base.cell.sets {
            return Err(format!(
                "CROSS-CHECK FAILED: budget {} output differs from the in-memory run",
                m.mem_budget
            ));
        }
    }
    let max_shards = measurements
        .iter()
        .map(|m| m.cell.shards)
        .max()
        .unwrap_or(0);
    if max_shards < 4 {
        return Err(format!(
            "smallest budget produced only {max_shards} shards; expected >= 4"
        ));
    }

    println!(
        "{:>12} {:>12} {:>8} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "mode", "mem-budget", "shards", "seconds", "vmhwm kB", "vs mem", "spill B", "sets"
    );
    for m in &measurements {
        println!(
            "{:>12} {:>12} {:>8} {:>10.4} {:>10} {:>7.2}x {:>10} {:>8}",
            m.mode,
            m.mem_budget,
            m.cell.shards,
            m.seconds,
            m.vmhwm_kb,
            m.vmhwm_kb as f64 / base.vmhwm_kb as f64,
            m.cell.spill_bytes,
            m.cell.sets
        );
    }
    println!(
        "# identity: all {} cells hash 0x{:016x}",
        measurements.len(),
        base.cell.hash
    );

    write_json(
        &out_path,
        scale,
        seed,
        reps,
        supp,
        &db,
        fimi_bytes,
        est_bytes,
        &measurements,
    )
    .map_err(|e| e.to_string())?;
    println!("# wrote {out_path}");
    if let Some(ledger) = ledger_path {
        let input_fnv = fim_obs::fnv1a_file(&data).map_err(|e| e.to_string())?;
        for m in &measurements {
            let entry = fim_obs::LedgerEntry {
                input_fnv,
                algo: format!("oocore-{}", m.mode),
                supp: u64::from(supp),
                config: format!("mem-budget={} scale={scale} seed={seed}", m.mem_budget),
                seconds: m.seconds,
                sets: m.cell.sets as u64,
                transactions: db.num_transactions() as u64,
                peak_rss_kb: m.vmhwm_kb,
                exit: "ok".to_owned(),
                phases: Vec::new(),
                counters: vec![
                    ("shards".to_owned(), m.cell.shards),
                    ("shards_spilled".to_owned(), m.cell.spilled),
                    ("merge_passes".to_owned(), m.cell.merge_passes),
                    ("spill_bytes".to_owned(), m.cell.spill_bytes),
                ],
            };
            entry
                .append(Path::new(&ledger))
                .map_err(|e| format!("cannot append --ledger {ledger}: {e}"))?;
        }
        println!(
            "# appended {} ledger entries to {ledger}",
            measurements.len()
        );
    }
    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_dir_all(&spill_dir);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    scale: f64,
    seed: u64,
    reps: usize,
    supp: u32,
    db: &fim_core::TransactionDatabase,
    fimi_bytes: u64,
    est_bytes: u64,
    measurements: &[Measurement],
) -> std::io::Result<()> {
    let base = &measurements[0];
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(f, "  \"experiment\": \"oocore-rss\",")?;
    writeln!(f, "  \"preset\": \"webview-basket\",")?;
    writeln!(f, "  \"scale\": {scale},")?;
    writeln!(f, "  \"seed\": {seed},")?;
    writeln!(f, "  \"reps\": {reps},")?;
    writeln!(f, "  \"supp\": {supp},")?;
    writeln!(
        f,
        "  \"database\": {{\"transactions\": {}, \"items\": {}, \"occurrences\": {}, \"fimi_bytes\": {fimi_bytes}, \"est_resident_bytes\": {est_bytes}}},",
        db.num_transactions(),
        db.num_items(),
        db.total_occurrences()
    )?;
    writeln!(
        f,
        "  \"timing\": \"median of reps, one subprocess per rep, end-to-end file-to-report, VmHWM from /proc/self/status\","
    )?;
    writeln!(
        f,
        "  \"identity\": \"all cells byte-identical (fnv1a 0x{:016x})\",",
        base.cell.hash
    )?;
    writeln!(f, "  \"cells\": [")?;
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"mode\": \"{}\", \"mem_budget\": {}, \"shards\": {}, \"spilled\": {}, \"merge_passes\": {}, \"spill_bytes\": {}, \"seconds\": {:.6}, \"vmhwm_kb\": {}, \"vmhwm_vs_memory\": {:.4}, \"sets\": {}}}{comma}",
            m.mode,
            m.mem_budget,
            m.cell.shards,
            m.cell.spilled,
            m.cell.merge_passes,
            m.cell.spill_bytes,
            m.seconds,
            m.vmhwm_kb,
            m.vmhwm_kb as f64 / base.vmhwm_kb as f64,
            m.cell.sets
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("oocore: {e}");
        std::process::exit(1);
    }
}

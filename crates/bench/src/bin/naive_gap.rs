//! Experiment **E7**: the flat-repository cumulative scheme (Mielikäinen,
//! FIMI'03) vs the prefix-tree IsTa implementation — the paper's §5 claim
//! that the prefix tree is often more than 100× faster.
//!
//! Usage: `naive_gap [--scale X] [--seed N] [--timeout SECS] [--supps ...]`

use fim_bench::{maybe_run_cell, run_cell_subprocess, write_csv, Row, SweepConfig};
use fim_synth::Preset;
use std::time::Duration;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_cell(&argv) {
        return;
    }
    let mut config = SweepConfig::for_figure(Preset::Yeast, 0.12, &["ista", "naive-cumulative"]);
    config.timeout = Duration::from_secs(120);
    config.csv_name = "naive_gap.csv".into();
    if let Err(e) = config.apply_args(&argv) {
        eprintln!("naive_gap: {e}");
        std::process::exit(1);
    }
    println!(
        "# E7 naive-vs-ista gap — yeast-like, scale {}, seed {}",
        config.scale, config.seed
    );
    println!(
        "{:>8} {:>12} {:>16} {:>10}",
        "supp", "ista (s)", "naive (s)", "ratio"
    );
    let mut rows = Vec::new();
    let mut naive_dead = false;
    for &supp in &config.supports {
        let run = |miner: &str| {
            run_cell_subprocess(
                config.preset,
                config.scale,
                config.seed,
                miner,
                supp,
                "asc",
                "asc",
                config.timeout,
            )
        };
        let ista = match run("ista") {
            Ok(Some(o)) => o,
            _ => {
                println!("{supp:>8} {:>12}", "timeout");
                rows.push(Row::timeout("yeast", supp, "ista"));
                continue;
            }
        };
        rows.push(Row::ok("yeast", supp, "ista", ista));
        if naive_dead {
            println!("{supp:>8} {:>12.3} {:>16} {:>10}", ista.seconds, "-", "-");
            rows.push(Row::skipped("yeast", supp, "naive-cumulative"));
            continue;
        }
        match run("naive-cumulative") {
            Ok(Some(naive)) => {
                assert_eq!(naive.sets, ista.sets, "cross-check failed at supp {supp}");
                rows.push(Row::ok("yeast", supp, "naive-cumulative", naive));
                println!(
                    "{supp:>8} {:>12.3} {:>16.3} {:>9.1}x",
                    ista.seconds,
                    naive.seconds,
                    naive.seconds / ista.seconds.max(1e-9)
                );
            }
            _ => {
                naive_dead = true;
                rows.push(Row::timeout("yeast", supp, "naive-cumulative"));
                println!(
                    "{supp:>8} {:>12.3} {:>16} {:>9}",
                    ista.seconds,
                    "timeout",
                    format!(
                        ">{:.0}x",
                        config.timeout.as_secs_f64() / ista.seconds.max(1e-9)
                    )
                );
            }
        }
    }
    match write_csv(&config.csv_name, &rows) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => eprintln!("naive_gap: csv: {e}"),
    }
}

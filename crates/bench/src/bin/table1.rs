//! Regenerates paper **Table 1**: the matrix representation of the example
//! transaction database used by the table-based Carpenter variant
//! (paper §3.1.2). The output is asserted byte-exact against the paper.

use fim_core::{
    ItemOrder, RecodedDatabase, SuffixCountMatrix, TransactionDatabase, TransactionOrder,
};

fn main() {
    let db = TransactionDatabase::from_named(&[
        vec!["a", "b", "c"],
        vec!["a", "d", "e"],
        vec!["b", "c", "d"],
        vec!["a", "b", "c", "d"],
        vec!["b", "c"],
        vec!["a", "b", "d"],
        vec!["d", "e"],
        vec!["c", "d", "e"],
    ]);
    println!("transaction database:");
    for (k, t) in db.transactions().iter().enumerate() {
        let names: Vec<&str> = t.iter().map(|i| db.catalog().name(i).unwrap()).collect();
        println!("  t{} {}", k + 1, names.join(" "));
    }
    let recoded = RecodedDatabase::prepare(&db, 1, ItemOrder::Original, TransactionOrder::Original);
    let m = SuffixCountMatrix::from_database(&recoded);
    println!("\nmatrix representation (paper Table 1):");
    print!("{}", m.render(&["a", "b", "c", "d", "e"]));

    // assert the exact values printed in the paper
    let expected: [[u32; 5]; 8] = [
        [4, 5, 5, 0, 0],
        [3, 0, 0, 6, 3],
        [0, 4, 4, 5, 0],
        [2, 3, 3, 4, 0],
        [0, 2, 2, 0, 0],
        [1, 1, 0, 3, 0],
        [0, 0, 0, 2, 2],
        [0, 0, 1, 1, 1],
    ];
    for (tid, row) in expected.iter().enumerate() {
        for (i, &want) in row.iter().enumerate() {
            assert_eq!(m.entry(tid as u32, i as u32), want, "m[t{}][{i}]", tid + 1);
        }
    }
    println!("\nall 40 entries match the paper: OK");
}

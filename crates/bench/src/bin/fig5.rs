//! Regenerates paper **Figure 5**: execution time vs minimum support on
//! the yeast-like data set (few transactions, very many items).
//!
//! Usage: `fig5 [--scale X] [--seed N] [--timeout SECS] [--miners a,b,c]
//! [--supps s1,s2,...]`. The paper's finding: IsTa and Carpenter stay
//! flat while FP-close and LCM diverge as the minimum support drops.

use fim_bench::{figure_main, maybe_run_cell, SweepConfig};
use fim_synth::Preset;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if maybe_run_cell(&argv) {
        return;
    }
    let config = SweepConfig::for_figure(
        Preset::Yeast,
        0.25,
        &[
            "ista",
            "carpenter-table",
            "carpenter-lists",
            "fpclose",
            "lcm",
        ],
    );
    if let Err(e) = figure_main(config, &argv) {
        eprintln!("fig5: {e}");
        std::process::exit(1);
    }
}

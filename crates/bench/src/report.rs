//! CSV records for experiment results, plus the shared tree-occupancy
//! renderers the bench bins and the `summary` footer all use.

use crate::harness::CellOutcome;
use fim_obs::{KernelMetrics, TreeMetrics};
use std::io::Write;
use std::path::PathBuf;

/// Renders a tree-occupancy snapshot as one `tree_memory` JSON object for
/// the BENCH_* files — field names matching the fim-metrics/1 `tree`
/// section, so bench records and `fim mine --metrics` documents agree.
/// `passes` appends `prune_passes`/`compactions` when the run tracked them.
pub fn tree_memory_json(preset: &str, t: &TreeMetrics, passes: Option<(u64, u64)>) -> String {
    let passes = passes.map_or(String::new(), |(prunes, compactions)| {
        format!(", \"prune_passes\": {prunes}, \"compactions\": {compactions}")
    });
    format!(
        "{{\"preset\": \"{preset}\", \"peak_nodes\": {}, \"live_nodes\": {}, \"total_slots\": {}, \
         \"free_slots\": {}, \"seg_items\": {}, \"seg_bytes\": {}, \"avg_seg_len\": {:.3}, \
         \"approx_bytes\": {}{passes}}}",
        t.peak_nodes,
        t.live_nodes,
        t.total_slots,
        t.free_slots,
        t.seg_items,
        t.seg_bytes,
        t.avg_seg_len(),
        t.approx_bytes
    )
}

/// Renders an intersection-kernel snapshot as one `kernel` JSON object for
/// the BENCH_* files — field names matching the fim-metrics/1 `kernel`
/// section, so E14 records and `fim mine --metrics` documents agree
/// field-for-field.
pub fn kernel_json(k: &KernelMetrics) -> String {
    format!(
        "{{\"rep\": \"{}\", \"words_anded\": {}, \"gallop_probes\": {}, \"popcount_calls\": {}}}",
        k.rep, k.words_anded, k.gallop_probes, k.popcount_calls
    )
}

/// One-line human rendering of the same kernel snapshot, shared between
/// the E14 table and the `summary` footer.
pub fn kernel_line(k: &KernelMetrics) -> String {
    format!(
        "rep {}: {} words ANDed, {} gallop probes, {} popcounts",
        k.rep, k.words_anded, k.gallop_probes, k.popcount_calls
    )
}

/// One-line human rendering of the same snapshot, shared between the
/// bench tables and the `summary` footer.
pub fn tree_memory_line(t: &TreeMetrics, prune_passes: u64, compactions: u64) -> String {
    format!(
        "{} live nodes / {} slots ({} free), {} seg items ({} B, avg len {:.2}), ~{:.1} KiB, \
         {prune_passes} prunes, {compactions} compactions",
        t.live_nodes,
        t.total_slots,
        t.free_slots,
        t.seg_items,
        t.seg_bytes,
        t.avg_seg_len(),
        t.approx_bytes as f64 / 1024.0
    )
}

/// One experiment record.
#[derive(Clone, Debug)]
pub struct Row {
    /// Data set name.
    pub dataset: String,
    /// Minimum support of the cell.
    pub supp: u32,
    /// Algorithm name.
    pub miner: String,
    /// `ok`, `timeout`, `error`, or `skipped`.
    pub status: &'static str,
    /// Wall seconds (ok rows only).
    pub seconds: Option<f64>,
    /// Closed sets found (ok rows only).
    pub sets: Option<usize>,
}

impl Row {
    /// Successful cell.
    pub fn ok(dataset: &str, supp: u32, miner: &str, out: CellOutcome) -> Self {
        Row {
            dataset: dataset.into(),
            supp,
            miner: miner.into(),
            status: "ok",
            seconds: Some(out.seconds),
            sets: Some(out.sets),
        }
    }

    /// Timed-out cell.
    pub fn timeout(dataset: &str, supp: u32, miner: &str) -> Self {
        Row {
            dataset: dataset.into(),
            supp,
            miner: miner.into(),
            status: "timeout",
            seconds: None,
            sets: None,
        }
    }

    /// Failed cell.
    pub fn error(dataset: &str, supp: u32, miner: &str) -> Self {
        Row {
            dataset: dataset.into(),
            supp,
            miner: miner.into(),
            status: "error",
            seconds: None,
            sets: None,
        }
    }

    /// Cell skipped because the miner already timed out at higher support.
    pub fn skipped(dataset: &str, supp: u32, miner: &str) -> Self {
        Row {
            dataset: dataset.into(),
            supp,
            miner: miner.into(),
            status: "skipped",
            seconds: None,
            sets: None,
        }
    }
}

/// Writes rows to `target/experiments/<name>` and returns the path.
pub fn write_csv(name: &str, rows: &[Row]) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "dataset,supp,miner,status,seconds,sets")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{},{}",
            r.dataset,
            r.supp,
            r.miner,
            r.status,
            r.seconds.map_or(String::new(), |s| format!("{s:.6}")),
            r.sets.map_or(String::new(), |s| s.to_string()),
        )?;
    }
    Ok(path)
}

/// Writes a gnuplot script next to the CSV that reproduces the paper's
/// presentation: minimum support on the x axis (reversed, as in Figs. 5–8)
/// and log₁₀(time/seconds) on the y axis, one series per algorithm.
/// Returns the script path.
pub fn write_gnuplot(name: &str, rows: &[Row]) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let base = name.trim_end_matches(".csv");
    let path = dir.join(format!("{base}.gp"));
    let mut miners: Vec<&str> = Vec::new();
    for r in rows {
        if !miners.contains(&r.miner.as_str()) {
            miners.push(&r.miner);
        }
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "# gnuplot script generated by fim-bench")?;
    writeln!(f, "set terminal pngcairo size 900,600")?;
    writeln!(f, "set output '{base}.png'")?;
    writeln!(f, "set title '{base}'")?;
    writeln!(f, "set xlabel 'minimum support'")?;
    writeln!(f, "set ylabel 'log(time/seconds)'")?;
    writeln!(f, "set xrange [*:*] reverse")?;
    writeln!(f, "set key top left")?;
    writeln!(f, "set datafile separator ','")?;
    let plots: Vec<String> = miners
        .iter()
        .map(|m| {
            format!(
                "'{base}.csv' using 2:(stringcolumn(3) eq '{m}' && stringcolumn(4) eq 'ok' ? log10(column(5)) : 1/0) with linespoints title '{m}'"
            )
        })
        .collect();
    writeln!(f, "plot {}", plots.join(", \\\n     "))?;
    Ok(path)
}

/// `target/experiments/` resolved relative to the workspace target dir.
pub fn experiments_dir() -> PathBuf {
    // the binary lives in target/<profile>/; experiments go to
    // target/experiments/ next to it when possible
    if let Ok(exe) = std::env::current_exe() {
        if let Some(profile_dir) = exe.parent() {
            if let Some(target) = profile_dir.parent() {
                return target.join("experiments");
            }
        }
    }
    PathBuf::from("target/experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> TreeMetrics {
        TreeMetrics {
            peak_nodes: 2000,
            live_nodes: 1200,
            total_slots: 1500,
            free_slots: 300,
            seg_items: 4800,
            seg_bytes: 19200,
            approx_bytes: 61440,
        }
    }

    #[test]
    fn tree_memory_json_matches_metrics_field_names() {
        let doc = tree_memory_json("yeast", &sample_tree(), Some((3, 1)));
        for key in [
            "preset",
            "peak_nodes",
            "live_nodes",
            "total_slots",
            "free_slots",
            "seg_items",
            "seg_bytes",
            "avg_seg_len",
            "approx_bytes",
            "prune_passes",
            "compactions",
        ] {
            assert!(doc.contains(&format!("\"{key}\":")), "missing {key}: {doc}");
        }
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        let bare = tree_memory_json("yeast", &sample_tree(), None);
        assert!(!bare.contains("prune_passes"));
    }

    #[test]
    fn kernel_json_matches_metrics_field_names() {
        let k = KernelMetrics {
            rep: "bitset",
            words_anded: 123,
            gallop_probes: 0,
            popcount_calls: 45,
        };
        let doc = kernel_json(&k);
        // identical field spelling to the fim-metrics/1 kernel section
        let mut report = fim_obs::MetricsReport::new("eclat", 2, 0.1, 5, 10);
        report.kernel = Some(k);
        let metrics = report.to_json();
        for key in ["rep", "words_anded", "gallop_probes", "popcount_calls"] {
            assert!(doc.contains(&format!("\"{key}\":")), "missing {key}: {doc}");
            assert!(
                metrics.contains(&format!("\"{key}\":")),
                "metrics missing {key}"
            );
        }
        assert!(metrics.contains(doc.trim_start_matches('{').trim_end_matches('}')));
        let line = kernel_line(&k);
        assert!(!line.contains('\n'));
        assert!(line.contains("rep bitset"));
        assert!(line.contains("123 words ANDed"));
    }

    #[test]
    fn tree_memory_line_is_one_line() {
        let line = tree_memory_line(&sample_tree(), 3, 1);
        assert!(!line.contains('\n'));
        assert!(line.contains("1200 live nodes / 1500 slots (300 free)"));
        assert!(line.contains("avg len 4.00"));
        assert!(line.contains("60.0 KiB"));
        assert!(line.contains("3 prunes, 1 compactions"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let rows = vec![
            Row::ok(
                "yeast",
                8,
                "ista",
                CellOutcome {
                    seconds: 1.25,
                    sets: 42,
                },
            ),
            Row::timeout("yeast", 8, "fpclose"),
            Row::skipped("yeast", 6, "fpclose"),
        ];
        let path = write_csv("test_report.csv", &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "dataset,supp,miner,status,seconds,sets");
        assert!(lines[1].starts_with("yeast,8,ista,ok,1.25"));
        assert_eq!(lines[2], "yeast,8,fpclose,timeout,,");
        assert_eq!(lines[3], "yeast,6,fpclose,skipped,,");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn gnuplot_script_lists_each_miner_once() {
        let rows = vec![
            Row::ok(
                "t",
                4,
                "ista",
                CellOutcome {
                    seconds: 0.5,
                    sets: 10,
                },
            ),
            Row::ok(
                "t",
                3,
                "ista",
                CellOutcome {
                    seconds: 0.7,
                    sets: 20,
                },
            ),
            Row::timeout("t", 3, "lcm"),
        ];
        let path = write_gnuplot("test_report_gp.csv", &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("title 'ista'").count(), 1);
        assert_eq!(text.matches("title 'lcm'").count(), 1);
        assert!(text.contains("set output 'test_report_gp.png'"));
        std::fs::remove_file(path).ok();
    }
}

//! Name → miner registry used by the experiment runners.

use fim_baseline::{
    AprioriMiner, DEclatMiner, EclatMiner, FpCloseMiner, LcmClassicMiner, LcmMiner,
    NaiveCumulativeMiner, SamMiner,
};
use fim_carpenter::{CarpenterConfig, CarpenterListMiner, CarpenterTableMiner};
use fim_core::{ClosedMiner, Representation};
use fim_ista::{IstaConfig, IstaMiner, ParallelIstaMiner};

/// All registered algorithm names (plain variants first, ablations after).
pub fn all_miner_names() -> &'static [&'static str] {
    &[
        "ista",
        "ista-par",
        "carpenter-table",
        "carpenter-lists",
        "fpclose",
        "lcm",
        "eclat",
        "declat",
        "sam",
        "apriori",
        "naive-cumulative",
        "ista-bitset",
        "eclat-bitset",
        "eclat-gallop",
        "declat-bitset",
        "declat-gallop",
        "carpenter-lists-bitset",
        "carpenter-lists-gallop",
        "ista-noprune",
        "ista-nocoalesce",
        "ista-nocompact",
        "ista-plain",
        "carpenter-table-noelim",
        "carpenter-table-noabsorb",
        "carpenter-table-norepo",
        "carpenter-lists-noelim",
        "carpenter-lists-noearly",
        "lcm-noreuse",
    ]
}

/// Looks up a miner by registry name.
pub fn miner_by_name(name: &str) -> Result<Box<dyn ClosedMiner>, String> {
    Ok(match name {
        "ista" => Box::new(IstaMiner::default()),
        "ista-par" => Box::new(ParallelIstaMiner::default()),
        "ista-noprune" => Box::new(IstaMiner::with_config(IstaConfig::without_pruning())),
        "ista-nocoalesce" => Box::new(IstaMiner::with_config(IstaConfig::without_coalescing())),
        "ista-nocompact" => Box::new(IstaMiner::with_config(IstaConfig::without_compaction())),
        "ista-plain" => Box::new(IstaMiner::with_config(IstaConfig::without_patricia())),
        "carpenter-table" => Box::new(CarpenterTableMiner::default()),
        "carpenter-lists" => Box::new(CarpenterListMiner::default()),
        "carpenter-table-noelim" => Box::new(CarpenterTableMiner::with_config(CarpenterConfig {
            item_elimination: false,
            ..CarpenterConfig::default()
        })),
        "carpenter-table-noabsorb" => Box::new(CarpenterTableMiner::with_config(CarpenterConfig {
            perfect_extension: false,
            ..CarpenterConfig::default()
        })),
        "carpenter-table-norepo" => Box::new(CarpenterTableMiner::with_config(CarpenterConfig {
            repo_prune: false,
            ..CarpenterConfig::default()
        })),
        "carpenter-lists-noelim" => Box::new(CarpenterListMiner::with_config(CarpenterConfig {
            item_elimination: false,
            ..CarpenterConfig::default()
        })),
        "carpenter-lists-noearly" => Box::new(CarpenterListMiner::with_config(CarpenterConfig {
            early_stop: false,
            ..CarpenterConfig::default()
        })),
        "ista-bitset" => Box::new(IstaMiner::with_config(IstaConfig::bitset())),
        "fpclose" => Box::new(FpCloseMiner),
        "lcm" => Box::new(LcmMiner),
        "lcm-noreuse" => Box::new(LcmClassicMiner),
        "eclat" => Box::new(EclatMiner::default()),
        "eclat-bitset" => Box::new(EclatMiner::with_rep(Representation::Bitset)),
        "eclat-gallop" => Box::new(EclatMiner::with_rep(Representation::Gallop)),
        "declat" => Box::new(DEclatMiner::default()),
        "declat-bitset" => Box::new(DEclatMiner::with_rep(Representation::Bitset)),
        "declat-gallop" => Box::new(DEclatMiner::with_rep(Representation::Gallop)),
        "carpenter-lists-bitset" => Box::new(CarpenterListMiner::with_rep(Representation::Bitset)),
        "carpenter-lists-gallop" => Box::new(CarpenterListMiner::with_rep(Representation::Gallop)),
        "sam" => Box::new(SamMiner),
        "apriori" => Box::new(AprioriMiner),
        "naive-cumulative" => Box::new(NaiveCumulativeMiner),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in all_miner_names() {
            assert!(miner_by_name(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn unknown_is_error() {
        assert!(miner_by_name("bogus").is_err());
    }
}

//! Sweep orchestration: per-cell subprocesses, timeouts, and cross-checks.

use crate::registry::miner_by_name;
use crate::report::{write_csv, Row};
use fim_core::{Budget, ItemOrder, MineOutcome, RecodedDatabase, TransactionOrder, TripReason};
use fim_synth::Preset;
use std::collections::HashMap;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Stack size for mining threads: tree depth is bounded by the longest
/// transaction, which can reach tens of thousands of items on the
/// gene-expression-shaped data.
pub const MINE_STACK_BYTES: usize = 1 << 30;

/// Result of one sweep cell.
#[derive(Clone, Copy, Debug)]
pub struct CellOutcome {
    /// Wall time of recode + mine, in seconds.
    pub seconds: f64,
    /// Number of closed sets found (identical across correct algorithms).
    pub sets: usize,
}

/// How a governed cell run ended.
#[derive(Clone, Copy, Debug)]
pub enum CellRun {
    /// The mine finished within its budget.
    Done(CellOutcome),
    /// A budget tripped; the partial result is discarded (sweep tables
    /// cross-check exact set counts, so partials count as timeouts).
    Tripped(TripReason),
}

/// Parses a preset name.
pub fn preset_by_name(name: &str) -> Result<Preset, String> {
    Preset::ALL
        .iter()
        .copied()
        .find(|p| p.name() == name)
        .ok_or_else(|| format!("unknown preset '{name}'"))
}

fn order_by_names(item: &str, tx: &str) -> Result<(ItemOrder, TransactionOrder), String> {
    let io = match item {
        "asc" => ItemOrder::AscendingFrequency,
        "desc" => ItemOrder::DescendingFrequency,
        "orig" => ItemOrder::Original,
        other => return Err(format!("bad item order '{other}'")),
    };
    let to = match tx {
        "asc" => TransactionOrder::AscendingSize,
        "desc" => TransactionOrder::DescendingSize,
        "orig" => TransactionOrder::Original,
        other => return Err(format!("bad transaction order '{other}'")),
    };
    Ok((io, to))
}

/// Runs one cell in-process on a big-stack thread: generate the data set
/// (untimed), then recode + mine (timed). With a `budget_timeout` the mine
/// runs governed and trips cooperatively instead of relying on the caller
/// to kill the process.
#[allow(clippy::too_many_arguments)]
pub fn run_cell(
    preset: Preset,
    scale: f64,
    seed: u64,
    miner_name: &str,
    supp: u32,
    item_order: ItemOrder,
    tx_order: TransactionOrder,
    budget_timeout: Option<Duration>,
) -> Result<CellRun, String> {
    let miner_name = miner_name.to_owned();
    let handle = std::thread::Builder::new()
        .name(format!("mine-{miner_name}-{supp}"))
        .stack_size(MINE_STACK_BYTES)
        .spawn(move || -> Result<CellRun, String> {
            let db = preset.build(scale, seed);
            let miner = miner_by_name(&miner_name)?;
            let start = Instant::now();
            let recoded = RecodedDatabase::prepare(&db, supp, item_order, tx_order);
            let run = match budget_timeout {
                Some(t) => {
                    let budget = Budget::unlimited().with_timeout(t);
                    match miner.mine_governed(&recoded, supp, &budget) {
                        MineOutcome::Complete { result, .. } => CellRun::Done(CellOutcome {
                            seconds: start.elapsed().as_secs_f64(),
                            sets: result.len(),
                        }),
                        MineOutcome::Interrupted { reason, .. } => CellRun::Tripped(reason),
                    }
                }
                None => {
                    let result = miner.mine(&recoded, supp);
                    CellRun::Done(CellOutcome {
                        seconds: start.elapsed().as_secs_f64(),
                        sets: result.len(),
                    })
                }
            };
            Ok(run)
        })
        .map_err(|e| e.to_string())?;
    handle
        .join()
        .map_err(|_| "mining thread panicked".to_owned())?
}

/// If `argv` is a cell invocation (`cell <preset> <scale> <seed> <miner>
/// <supp> <item-order> <tx-order> [timeout-secs]`), runs it, prints
/// `RESULT <seconds> <sets>` (or `TRIPPED <reason>` when the optional
/// cooperative timeout fired), and returns `true`.
pub fn maybe_run_cell(argv: &[String]) -> bool {
    if argv.first().map(String::as_str) != Some("cell") {
        return false;
    }
    let run = || -> Result<CellRun, String> {
        if !(8..=9).contains(&argv.len()) {
            return Err(format!(
                "cell expects 7 or 8 operands, got {}",
                argv.len() - 1
            ));
        }
        let preset = preset_by_name(&argv[1])?;
        let scale: f64 = argv[2].parse().map_err(|e| format!("scale: {e}"))?;
        let seed: u64 = argv[3].parse().map_err(|e| format!("seed: {e}"))?;
        let supp: u32 = argv[5].parse().map_err(|e| format!("supp: {e}"))?;
        let (io, to) = order_by_names(&argv[6], &argv[7])?;
        let timeout = match argv.get(8) {
            Some(t) => Some(Duration::from_secs_f64(
                t.parse().map_err(|e| format!("timeout: {e}"))?,
            )),
            None => None,
        };
        run_cell(preset, scale, seed, &argv[4], supp, io, to, timeout)
    };
    match run() {
        Ok(CellRun::Done(out)) => println!("RESULT {:.6} {}", out.seconds, out.sets),
        Ok(CellRun::Tripped(reason)) => println!("TRIPPED {reason}"),
        Err(e) => {
            eprintln!("cell error: {e}");
            std::process::exit(2);
        }
    }
    true
}

/// Spawns the current executable as a cell subprocess with a timeout.
/// Returns `Ok(None)` on timeout.
///
/// The timeout is passed into the cell, where the governed miners trip it
/// cooperatively and report `TRIPPED` with a clean exit; the hard
/// kill-after-deadline remains only as a backstop for miners without a
/// governed hot loop (with a grace period so the cooperative path wins).
#[allow(clippy::too_many_arguments)]
pub fn run_cell_subprocess(
    preset: Preset,
    scale: f64,
    seed: u64,
    miner: &str,
    supp: u32,
    item_order: &str,
    tx_order: &str,
    timeout: Duration,
) -> Result<Option<CellOutcome>, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let mut child = Command::new(exe)
        .arg("cell")
        .arg(preset.name())
        .arg(scale.to_string())
        .arg(seed.to_string())
        .arg(miner)
        .arg(supp.to_string())
        .arg(item_order)
        .arg(tx_order)
        .arg(timeout.as_secs_f64().to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| e.to_string())?;
    let deadline = Instant::now() + timeout + Duration::from_secs(5);
    loop {
        match child.try_wait().map_err(|e| e.to_string())? {
            Some(status) => {
                let mut out = String::new();
                use std::io::Read;
                if let Some(mut stdout) = child.stdout.take() {
                    stdout.read_to_string(&mut out).ok();
                }
                if !status.success() {
                    return Err(format!("cell failed with {status}"));
                }
                if out.lines().any(|l| l.starts_with("TRIPPED ")) {
                    return Ok(None);
                }
                let line = out
                    .lines()
                    .find(|l| l.starts_with("RESULT "))
                    .ok_or("cell produced no RESULT line")?;
                let mut parts = line.split_whitespace().skip(1);
                let seconds: f64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad RESULT seconds")?;
                let sets: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad RESULT sets")?;
                return Ok(Some(CellOutcome { seconds, sets }));
            }
            None => {
                if Instant::now() >= deadline {
                    child.kill().ok();
                    child.wait().ok();
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Configuration of one figure sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Data set to sweep over.
    pub preset: Preset,
    /// Scale factor applied to the paper shape.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Per-cell timeout.
    pub timeout: Duration,
    /// Algorithms, in display order.
    pub miners: Vec<String>,
    /// Minimum supports, descending.
    pub supports: Vec<u32>,
    /// Item / transaction orders (registry names `asc|desc|orig`).
    pub item_order: String,
    /// Transaction order name.
    pub tx_order: String,
    /// Output CSV name (under `target/experiments/`).
    pub csv_name: String,
    /// Optional run-ledger file (`--ledger PATH`): one `fim-ledger/1`
    /// line per cell, so sweeps feed `fim compare` directly.
    pub ledger: Option<String>,
}

impl SweepConfig {
    /// Default sweep for a figure: paper sweep scaled to the transaction
    /// count, default orders, 60 s timeout.
    pub fn for_figure(preset: Preset, scale: f64, miners: &[&str]) -> Self {
        SweepConfig {
            preset,
            scale,
            seed: 1,
            timeout: Duration::from_secs(60),
            miners: miners.iter().map(|s| s.to_string()).collect(),
            supports: scaled_sweep(preset, scale),
            item_order: "asc".into(),
            tx_order: "asc".into(),
            csv_name: format!("{}.csv", preset.name()),
            ledger: None,
        }
    }

    /// Applies `--scale/--seed/--timeout/--miners/--supps` overrides from
    /// the command line.
    pub fn apply_args(&mut self, argv: &[String]) -> Result<(), String> {
        let kv = parse_kv(argv)?;
        if let Some(s) = kv.get("scale") {
            self.scale = s.parse().map_err(|e| format!("--scale: {e}"))?;
            self.supports = scaled_sweep(self.preset, self.scale);
        }
        if let Some(s) = kv.get("seed") {
            self.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
        }
        if let Some(s) = kv.get("timeout") {
            let secs: f64 = s.parse().map_err(|e| format!("--timeout: {e}"))?;
            self.timeout = Duration::from_secs_f64(secs);
        }
        if let Some(s) = kv.get("miners") {
            self.miners = s.split(',').map(str::to_owned).collect();
        }
        if let Some(s) = kv.get("supps") {
            let parsed: Result<Vec<u32>, _> = s.split(',').map(str::parse).collect();
            self.supports = parsed.map_err(|e| format!("--supps: {e}"))?;
        }
        if let Some(s) = kv.get("ledger") {
            self.ledger = Some(s.clone());
        }
        Ok(())
    }
}

/// The paper's minimum-support sweep, scaled to the shrunken transaction
/// count (supports are absolute counts, so they shrink with the data).
pub fn scaled_sweep(preset: Preset, scale: f64) -> Vec<u32> {
    let mut sweep: Vec<u32> = preset
        .paper_sweep()
        .into_iter()
        .map(|v| ((v as f64 * scale).round() as u32).max(1))
        .collect();
    sweep.dedup();
    sweep
}

/// Tiny `--key value` parser for the experiment binaries.
pub fn parse_kv(argv: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --key, got '{}'", argv[i]))?;
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for --{key}"))?;
        map.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(map)
}

/// Runs a full figure sweep: orchestrates cells, cross-checks set counts,
/// prints a table, writes the CSV. Call from a figure binary's `main` after
/// `maybe_run_cell`.
pub fn figure_main(mut config: SweepConfig, argv: &[String]) -> Result<(), String> {
    config.apply_args(argv)?;
    let preset = config.preset;
    println!(
        "# {} — {} (scale {}, seed {}, timeout {:?})",
        preset.figure(),
        preset.name(),
        config.scale,
        config.seed,
        config.timeout
    );
    let transactions = {
        let db = preset.build(config.scale, config.seed);
        println!(
            "# data: {} transactions, {} items, {} occurrences",
            db.num_transactions(),
            db.num_items(),
            db.total_occurrences()
        );
        db.num_transactions() as u64
    };
    // the sweep's ledger identity: synthetic cells have no input file, so
    // the generator parameters are the input fingerprint
    let input_fnv =
        fim_obs::fnv1a(format!("{}:{}:{}", preset.name(), config.scale, config.seed).as_bytes());
    let ledger_cell = |miner: &str, supp: u32, seconds: f64, sets: u64, exit: &str| {
        let Some(path) = config.ledger.as_deref() else {
            return Ok(());
        };
        let entry = fim_obs::LedgerEntry {
            input_fnv,
            algo: miner.to_owned(),
            supp: u64::from(supp),
            config: format!(
                "item-order={} preset={} scale={} seed={} tx-order={}",
                config.item_order,
                preset.name(),
                config.scale,
                config.seed,
                config.tx_order
            ),
            seconds,
            sets,
            transactions,
            peak_rss_kb: 0,
            exit: exit.to_owned(),
            phases: Vec::new(),
            counters: Vec::new(),
        };
        entry
            .append(std::path::Path::new(path))
            .map_err(|e| format!("cannot append --ledger {path}: {e}"))
    };
    let mut rows: Vec<Row> = Vec::new();
    let mut dead: Vec<String> = Vec::new();

    print!("{:>8}", "supp");
    for m in &config.miners {
        print!(" {m:>22}");
    }
    println!(" {:>10}", "sets");

    for &supp in &config.supports {
        let mut sets_seen: Option<usize> = None;
        print!("{supp:>8}");
        for miner in &config.miners {
            if dead.contains(miner) {
                print!(" {:>22}", "-");
                rows.push(Row::skipped(preset.name(), supp, miner));
                continue;
            }
            let outcome = run_cell_subprocess(
                preset,
                config.scale,
                config.seed,
                miner,
                supp,
                &config.item_order,
                &config.tx_order,
                config.timeout,
            );
            match outcome {
                Ok(Some(out)) => {
                    print!(" {:>21.3}s", out.seconds);
                    match sets_seen {
                        None => sets_seen = Some(out.sets),
                        Some(prev) => {
                            if prev != out.sets {
                                return Err(format!(
                                    "CROSS-CHECK FAILED at supp {supp}: {miner} found {} sets, others {prev}",
                                    out.sets
                                ));
                            }
                        }
                    }
                    rows.push(Row::ok(preset.name(), supp, miner, out));
                    ledger_cell(miner, supp, out.seconds, out.sets as u64, "ok")?;
                }
                Ok(None) => {
                    print!(" {:>22}", "timeout");
                    dead.push(miner.clone());
                    rows.push(Row::timeout(preset.name(), supp, miner));
                    ledger_cell(miner, supp, config.timeout.as_secs_f64(), 0, "timeout")?;
                }
                Err(e) => {
                    print!(" {:>22}", "error");
                    eprintln!("\n{miner} at supp {supp}: {e}");
                    dead.push(miner.clone());
                    rows.push(Row::error(preset.name(), supp, miner));
                    ledger_cell(miner, supp, 0.0, 0, "error")?;
                }
            }
            use std::io::Write;
            std::io::stdout().flush().ok();
        }
        println!(" {:>10}", sets_seen.map_or("-".into(), |s| s.to_string()));
    }
    let path = write_csv(&config.csv_name, &rows).map_err(|e| e.to_string())?;
    println!("# wrote {}", path.display());
    let gp = crate::report::write_gnuplot(&config.csv_name, &rows).map_err(|e| e.to_string())?;
    println!("# wrote {}", gp.display());
    Ok(())
}

//! A minimal, dependency-free, offline drop-in for the subset of the
//! `rand 0.8` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `rand` dependency to this crate by path. Only the surface
//! actually consumed by the generators is provided: [`rngs::StdRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`SeedableRng::seed_from_u64`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction rand's `SmallRng` historically used. Streams are
//! deterministic per seed but are **not** bit-compatible with upstream
//! `rand`; all in-repo consumers only rely on per-seed determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything an [`Rng`] needs.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step; used for seeding and as a standalone mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The default deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias: this shim uses one generator for both std and small variants.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // avoid the all-zero state xoshiro cannot escape
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Types that can be sampled uniformly from an entropy source
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a value uniformly from the (non-empty) range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // full-width range
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing random value methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}

//! Schema-evolution guarantees, pinned by committed fixtures.
//!
//! `fixtures/metrics-v1.json` is verbatim `--stats` output from the
//! fim-metrics/1 era. It must keep validating and comparing forever —
//! old `BENCH_*` files and committed baselines are read with today's
//! reader. The same document under the v2 tag must be *rejected*: v2
//! made the `resources` section mandatory, and a v2 document without it
//! is a producer bug, not an old file.

use std::io::Write;
use std::sync::{Arc, Mutex};

const V1_FIXTURE: &str = include_str!("fixtures/metrics-v1.json");

#[test]
fn committed_v1_fixture_still_validates() {
    fim_obs::validate_metrics_json(V1_FIXTURE).expect("v1 compatibility reader");
}

#[test]
fn committed_v1_fixture_still_compares() {
    let summary = fim_obs::parse_run_summary(V1_FIXTURE).expect("v1 summary");
    assert_eq!(summary.kind, "metrics");
    assert_eq!(summary.algo, "ista");
    assert_eq!(summary.sets, Some(10));
    // v1 never recorded RSS; compare must treat it as absent, not zero
    assert_eq!(summary.peak_rss_kb, None);
    let report = fim_obs::compare(&summary, &summary.clone(), &fim_obs::Thresholds::default());
    assert_eq!(report.regressions, 0, "a run cannot regress against itself");
}

#[test]
fn v2_document_without_resources_is_rejected() {
    let fake_v2 = V1_FIXTURE.replace("fim-metrics/1", "fim-metrics/2");
    let err = fim_obs::validate_metrics_json(&fake_v2).unwrap_err();
    assert!(err.contains("resources"), "{err}");
}

/// A shared in-memory sink, so the test can read back what the writer
/// streamed.
#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn emitted_trace_is_perfetto_loadable() {
    let sink = Sink::default();
    let mut w = fim_obs::TraceWriter::new(Box::new(sink.clone()));
    w.begin("stream");
    w.instant("checkpoint", &[("transactions", 100)]);
    w.begin("shard");
    w.end();
    w.begin("merge");
    // crash hygiene: finish closes the still-open spans itself
    let emitted = w.finish();

    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let events = fim_obs::read_trace(&text).expect("array format parses");
    assert_eq!(events.len() as u64, emitted);
    assert_eq!(events[0].ph, "M", "schema metadata leads the stream");
    fim_obs::validate_trace_pairing(&events).expect("begin/end balanced");

    // the exporter rewrites it as one strict JSON object for picky tools
    let mut obj = Vec::new();
    let exported = fim_obs::export_chrome_object(&text, &mut obj).expect("exports");
    assert_eq!(exported, emitted);
    let doc =
        fim_obs::json::parse_json(&String::from_utf8(obj).unwrap()).expect("strict JSON object");
    assert!(doc.get("traceEvents").is_some());
}

#[test]
fn truncated_trace_still_loads() {
    // a crash mid-write leaves no closing bracket and possibly a torn
    // final line; the reader (like Chrome and Perfetto) must cope
    let sink = Sink::default();
    let mut w = fim_obs::TraceWriter::new(Box::new(sink.clone()));
    w.begin("stream");
    w.instant("spill", &[]);
    drop(w); // never finished: no `]`, spans still open
    let mut text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    text.push_str("{\"ph\":\"i\",\"pid\":1,\"ti"); // torn line
    let events = fim_obs::read_trace(&text).expect("truncated trace parses");
    assert_eq!(events.len(), 3, "metadata + begin + instant survive");
}

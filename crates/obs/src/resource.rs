//! Resource telemetry: the `/proc` probe, shared gauges, the background
//! sampler thread, and per-phase duration histograms.
//!
//! The probe ([`vm_status`]) replaces the inline `/proc/self/status`
//! parse that previously lived in `bench/src/bin/oocore.rs`; the bench
//! bins and the sampler now share it. Gauges ([`ResourceGauges`]) are
//! plain atomics the miners update from instrumentation points they
//! already pass through (ticks, spill writes), so the sampler thread can
//! read a consistent point-in-time picture without touching miner state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One `/proc/self/status` reading, in kibibytes as the kernel reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStatus {
    /// Current resident set size (`VmRSS`).
    pub rss_kb: u64,
    /// Peak resident set size (`VmHWM`).
    pub hwm_kb: u64,
}

/// Reads `VmRSS`/`VmHWM` from `/proc/self/status`. Returns an error (not
/// a silent zero) off Linux or when the fields are missing, so callers
/// that publish the numbers can say "unavailable" honestly.
pub fn vm_status() -> Result<VmStatus, String> {
    let text = std::fs::read_to_string("/proc/self/status")
        .map_err(|e| format!("/proc/self/status unreadable: {e}"))?;
    let mut status = VmStatus::default();
    let mut seen = 0;
    for line in text.lines() {
        let field = if let Some(rest) = line.strip_prefix("VmRSS:") {
            Some((&mut status.rss_kb, rest))
        } else {
            line.strip_prefix("VmHWM:")
                .map(|rest| (&mut status.hwm_kb, rest))
        };
        if let Some((slot, rest)) = field {
            let kb = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .map_err(|e| format!("unparseable VmRSS/VmHWM line {line:?}: {e}"))?;
            *slot = kb;
            seen += 1;
            if seen == 2 {
                break;
            }
        }
    }
    if seen == 0 {
        return Err("no VmRSS/VmHWM in /proc/self/status".into());
    }
    Ok(status)
}

/// Peak resident set size in kB — the single-shot probe the bench bins
/// use for their `vmhwm_kb` result column.
pub fn vmhwm_kb() -> Result<u64, String> {
    vm_status().map(|s| s.hwm_kb)
}

/// Total size in bytes of the regular files directly inside `dir`
/// (spill directories are flat). Missing directory reads as 0 — the
/// spill dir legitimately disappears when the run cleans up.
pub fn dir_bytes(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

/// Shared point-in-time gauges the miners keep current and the sampler
/// thread reads. Relaxed ordering throughout: each gauge is an
/// independent monotonic-ish scalar, and the sampler only needs a recent
/// value, not a cross-gauge snapshot.
#[derive(Debug, Default)]
pub struct ResourceGauges {
    /// Live repository nodes (IsTa) or rows (other miners).
    pub nodes: AtomicU64,
    /// Approximate arena bytes (nodes + segment pool).
    pub arena_bytes: AtomicU64,
    /// Bytes currently spilled to disk (out-of-core runs).
    pub spill_bytes: AtomicU64,
}

impl ResourceGauges {
    /// Stores a gauge value (relaxed).
    pub fn set(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }
}

/// One sampler observation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResourceSample {
    /// Milliseconds since the sampler started.
    pub at_ms: u64,
    /// `VmRSS` in kB (0 when the probe is unavailable).
    pub rss_kb: u64,
    /// `VmHWM` in kB (0 when the probe is unavailable).
    pub hwm_kb: u64,
    /// [`ResourceGauges::nodes`] at sample time.
    pub nodes: u64,
    /// [`ResourceGauges::arena_bytes`] at sample time.
    pub arena_bytes: u64,
    /// [`ResourceGauges::spill_bytes`] at sample time, or the live
    /// spill-dir size when a directory was configured.
    pub spill_bytes: u64,
}

/// Background thread sampling the gauges and `/proc` on an interval.
#[derive(Debug)]
pub struct ResourceSampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<ResourceSample>>>,
    interval: Duration,
    handle: Option<JoinHandle<()>>,
}

impl ResourceSampler {
    /// Spawns the sampler. `spill_dir`, when given, is measured with
    /// [`dir_bytes`] each sample; otherwise the spill gauge is used.
    pub fn start(
        interval: Duration,
        gauges: Arc<ResourceGauges>,
        spill_dir: Option<PathBuf>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let thread_stop = Arc::clone(&stop);
        let thread_samples = Arc::clone(&samples);
        let handle = std::thread::Builder::new()
            .name("fim-sampler".into())
            .spawn(move || {
                let started = Instant::now();
                loop {
                    let vm = vm_status().unwrap_or_default();
                    let spill_bytes = match &spill_dir {
                        Some(dir) => dir_bytes(dir),
                        None => gauges.spill_bytes.load(Ordering::Relaxed),
                    };
                    let sample = ResourceSample {
                        at_ms: started.elapsed().as_millis() as u64,
                        rss_kb: vm.rss_kb,
                        hwm_kb: vm.hwm_kb,
                        nodes: gauges.nodes.load(Ordering::Relaxed),
                        arena_bytes: gauges.arena_bytes.load(Ordering::Relaxed),
                        spill_bytes,
                    };
                    thread_samples.lock().unwrap().push(sample);
                    // Sleep in short slices so stop() returns promptly even
                    // with a multi-second interval.
                    let deadline = Instant::now() + interval;
                    while Instant::now() < deadline {
                        if thread_stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(5).min(interval));
                    }
                    if thread_stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
            })
            .ok();
        ResourceSampler {
            stop,
            samples,
            interval,
            handle,
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Stops the thread and returns the collected series (at least the
    /// initial sample, taken at start).
    pub fn stop(mut self) -> Vec<ResourceSample> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        std::mem::take(&mut self.samples.lock().unwrap())
    }
}

impl Drop for ResourceSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Number of log2 buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` microseconds; bucket 0 also holds sub-microsecond
/// spans. 40 buckets reaches ~2^39 µs ≈ 6.4 days.
pub const HIST_BUCKETS: usize = 40;

/// Log-scaled duration histograms keyed by phase name.
#[derive(Debug, Default)]
pub struct PhaseHistograms {
    phases: Vec<(&'static str, [u64; HIST_BUCKETS])>,
}

impl PhaseHistograms {
    /// An empty histogram set.
    pub fn new() -> Self {
        PhaseHistograms::default()
    }

    /// Records one phase duration.
    pub fn record(&mut self, name: &'static str, dur: Duration) {
        let micros = dur.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, buckets)) => buckets[bucket] += 1,
            None => {
                let mut buckets = [0u64; HIST_BUCKETS];
                buckets[bucket] += 1;
                self.phases.push((name, buckets));
            }
        }
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// `(phase, buckets)` rows in first-recorded order.
    pub fn rows(&self) -> &[(&'static str, [u64; HIST_BUCKETS])] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reads_this_process() {
        // The repo only builds on Linux (CI and the bench boxes); the probe
        // must find both fields there.
        let vm = vm_status().expect("probe works on Linux");
        assert!(vm.rss_kb > 0);
        assert!(vm.hwm_kb >= vm.rss_kb);
        assert_eq!(vmhwm_kb().unwrap(), vm.hwm_kb);
    }

    #[test]
    fn sampler_collects_and_stops() {
        let gauges = Arc::new(ResourceGauges::default());
        gauges.nodes.store(17, Ordering::Relaxed);
        let sampler = ResourceSampler::start(Duration::from_millis(1), Arc::clone(&gauges), None);
        std::thread::sleep(Duration::from_millis(30));
        let samples = sampler.stop();
        assert!(!samples.is_empty());
        assert!(samples.iter().all(|s| s.nodes == 17));
        assert!(samples[0].rss_kb > 0, "probe feeds the series");
    }

    #[test]
    fn dir_bytes_sums_flat_files() {
        let dir = std::env::temp_dir().join(format!("fim-obs-dirbytes-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.spill"), [0u8; 100]).unwrap();
        std::fs::write(dir.join("b.spill"), [0u8; 28]).unwrap();
        assert_eq!(dir_bytes(&dir), 128);
        std::fs::remove_dir_all(&dir).unwrap();
        assert_eq!(dir_bytes(&dir), 0, "missing dir reads as zero");
    }

    #[test]
    fn histogram_buckets_are_log2_micros() {
        let mut h = PhaseHistograms::new();
        h.record("mine", Duration::from_micros(1)); // bucket 0
        h.record("mine", Duration::from_micros(3)); // bucket 1
        h.record("mine", Duration::from_micros(1024)); // bucket 10
        h.record("report", Duration::from_nanos(10)); // clamps to bucket 0
        let rows = h.rows();
        assert_eq!(rows.len(), 2);
        let mine = &rows[0].1;
        assert_eq!(mine[0], 1);
        assert_eq!(mine[1], 1);
        assert_eq!(mine[10], 1);
        assert_eq!(rows[1].1[0], 1);
    }
}

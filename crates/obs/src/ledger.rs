//! Append-only run ledger: one fingerprinted JSON line per run.
//!
//! The ledger is the durable complement of the one-shot metrics snapshot:
//! every `--ledger` run appends a line keyed by the input's FNV-1a
//! fingerprint, so "did PR N make webview-tpo slower?" becomes a
//! `fim compare` over two ledger files instead of a manual rerun of
//! E10–E16. Lines are self-describing ([`LEDGER_SCHEMA`] tag per line)
//! and the file is valid JSONL — crash-truncated final lines are
//! skipped, never fatal, matching the spill-manifest recovery posture.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use crate::json::{parse_json, JsonValue};
use crate::metrics::escape;

/// Schema tag carried by every ledger line.
pub const LEDGER_SCHEMA: &str = "fim-ledger/1";

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// 64-bit FNV-1a over a file's contents, streamed.
pub fn fnv1a_file(path: &Path) -> std::io::Result<u64> {
    let mut file = std::fs::File::open(path)?;
    let mut hash = FNV_OFFSET;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok(hash);
        }
        for &b in &buf[..n] {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
}

/// One run's ledger record.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LedgerEntry {
    /// FNV-1a of the input file's bytes (0 when the input was stdin).
    pub input_fnv: u64,
    /// Algorithm name as the CLI spells it (`ista`, `eclat`, ...).
    pub algo: String,
    /// Effective absolute support threshold.
    pub supp: u64,
    /// Free-form config summary (flags that shape the run).
    pub config: String,
    /// Wall-clock seconds for the mine.
    pub seconds: f64,
    /// Closed sets reported.
    pub sets: u64,
    /// Transactions processed.
    pub transactions: u64,
    /// Peak resident set size in kB (0 when the probe was unavailable).
    pub peak_rss_kb: u64,
    /// Exit status: `"ok"`, `"budget"`, `"disk-full"`, ...
    pub exit: String,
    /// Per-phase self-times in seconds, recording order preserved.
    pub phases: Vec<(String, f64)>,
    /// Nonzero counters.
    pub counters: Vec<(String, u64)>,
}

impl LedgerEntry {
    /// Renders the entry as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut line = format!(
            "{{\"schema\":\"{LEDGER_SCHEMA}\",\"input_fnv\":\"{:016x}\",\"algo\":\"{}\",\"supp\":{},\"config\":\"{}\",\"seconds\":{:.6},\"sets\":{},\"transactions\":{},\"peak_rss_kb\":{},\"exit\":\"{}\"",
            self.input_fnv,
            escape(&self.algo),
            self.supp,
            escape(&self.config),
            self.seconds,
            self.sets,
            self.transactions,
            self.peak_rss_kb,
            escape(&self.exit),
        );
        line.push_str(",\"phases\":{");
        for (i, (name, secs)) in self.phases.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{:.6}", escape(name), secs));
        }
        line.push_str("},\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", escape(name), value));
        }
        line.push_str("}}");
        line
    }

    /// Appends the entry to the ledger file, creating it if needed. The
    /// line is written with one syscall-visible `write` + flush so
    /// concurrent appenders interleave at line granularity.
    pub fn append(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let mut line = self.to_json_line();
        line.push('\n');
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Parses one ledger line.
    pub fn from_json_line(line: &str) -> Result<LedgerEntry, String> {
        let doc = parse_json(line)?;
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("ledger line has no schema tag")?;
        if schema != LEDGER_SCHEMA {
            return Err(format!("unsupported ledger schema {schema:?}"));
        }
        let str_of = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("ledger line missing \"{key}\""))
        };
        let u64_of = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("ledger line missing \"{key}\""))
        };
        let input_fnv = u64::from_str_radix(&str_of("input_fnv")?, 16)
            .map_err(|e| format!("bad input_fnv: {e}"))?;
        let phases = match doc.get("phases") {
            Some(JsonValue::Obj(members)) => members
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                .collect(),
            _ => Vec::new(),
        };
        let counters: Vec<(String, u64)> = match doc.get("counters") {
            Some(JsonValue::Obj(members)) => members
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect(),
            _ => Vec::new(),
        };
        Ok(LedgerEntry {
            input_fnv,
            algo: str_of("algo")?,
            supp: u64_of("supp")?,
            config: str_of("config")?,
            seconds: doc
                .get("seconds")
                .and_then(|v| v.as_f64())
                .ok_or("ledger line missing \"seconds\"")?,
            sets: u64_of("sets")?,
            transactions: u64_of("transactions")?,
            peak_rss_kb: u64_of("peak_rss_kb")?,
            exit: str_of("exit")?,
            phases,
            counters,
        })
    }

    /// Nonzero counters as a map (for comparison).
    pub fn counter_map(&self) -> BTreeMap<String, u64> {
        self.counters.iter().cloned().collect()
    }
}

/// Reads a ledger file's entries. A truncated final line (crash during
/// append) is skipped; any other malformed line is an error with its
/// 1-based line number.
pub fn read_ledger(text: &str) -> Result<Vec<LedgerEntry>, String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut entries = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        match LedgerEntry::from_json_line(line) {
            Ok(entry) => entries.push(entry),
            Err(_) if i + 1 == lines.len() => break,
            Err(e) => return Err(format!("ledger line {}: {e}", i + 1)),
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published FNV-1a test vectors.
    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn file_hash_matches_slice_hash() {
        let path = std::env::temp_dir().join(format!("fim-ledger-fnv-{}", std::process::id()));
        std::fs::write(&path, b"1 2 3\n2 3\n").unwrap();
        assert_eq!(fnv1a_file(&path).unwrap(), fnv1a(b"1 2 3\n2 3\n"));
        std::fs::remove_file(&path).unwrap();
    }

    fn entry() -> LedgerEntry {
        LedgerEntry {
            input_fnv: 0xdead_beef_0123_4567,
            algo: "ista".into(),
            supp: 2,
            config: "order=app patricia=on".into(),
            seconds: 1.25,
            sets: 981,
            transactions: 59602,
            peak_rss_kb: 20480,
            exit: "ok".into(),
            phases: vec![("recode".into(), 0.05), ("mine".into(), 1.1)],
            counters: vec![("seg_scans".into(), 12), ("isect_ops".into(), 9000)],
        }
    }

    #[test]
    fn roundtrips_through_json_line() {
        let e = entry();
        let parsed = LedgerEntry::from_json_line(&e.to_json_line()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn append_accumulates_and_truncated_tail_is_skipped() {
        let path = std::env::temp_dir().join(format!("fim-ledger-append-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        entry().append(&path).unwrap();
        entry().append(&path).unwrap();
        // Simulate a crash mid-append.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\":\"fim-ledger/1\",\"inp");
        let entries = read_ledger(&text).unwrap();
        assert_eq!(entries.len(), 2);
        // A malformed line in the middle is a real error.
        let bad = format!(
            "{}\nnot json\n{}\n",
            entry().to_json_line(),
            entry().to_json_line()
        );
        assert!(read_ledger(&bad).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_foreign_schema() {
        assert!(LedgerEntry::from_json_line("{\"schema\":\"fim-ledger/9\"}").is_err());
    }
}

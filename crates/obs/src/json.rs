//! A minimal hand-rolled JSON reader.
//!
//! The repo's writers hand-roll their JSON (no serde anywhere), and until
//! this PR nothing needed to read it back. The ledger, `fim compare`, and
//! the trace exporter all do, so this module provides the smallest value
//! model that covers them: numbers are kept as `f64` (every quantity we
//! emit fits exactly — counters stay below 2^53 in practice), objects keep
//! insertion order, and errors carry a byte offset for diagnostics.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, kept as `f64`.
    Num(f64),
    /// A string with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members as a name → u64 map, skipping non-integral members.
    /// Convenience for the `counters` sections.
    pub fn as_u64_map(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        if let JsonValue::Obj(members) = self {
            for (k, v) in members {
                if let Some(n) = v.as_u64() {
                    out.insert(k.clone(), n);
                }
            }
        }
        out
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", JsonValue::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte {:?} at {}", other as char, *pos)),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are not emitted by any writer in
                        // this repo; map lone surrogates to the replacement
                        // character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Re-borrow the utf8 tail for multi-byte characters.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let tail = std::str::from_utf8(&bytes[*pos - 1..])
                        .map_err(|e| format!("invalid utf-8 in string: {e}"))?;
                    let ch = tail.chars().next().unwrap();
                    out.push(ch);
                    *pos += ch.len_utf8() - 1;
                }
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse_json(
            r#"{"a": 1, "b": -2.5, "c": "x\n\"y\"", "d": [true, false, null], "e": {"k": 1e3}}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(-2.5));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(doc.get("d").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("e").unwrap().get("k").unwrap().as_f64(),
            Some(1000.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("12 tail").is_err());
        assert!(parse_json("\"open").is_err());
    }

    #[test]
    fn roundtrips_real_metrics_output() {
        // A trimmed fim-metrics document as written by MetricsReport.
        let doc = parse_json(
            "{\n  \"schema\": \"fim-metrics/1\",\n  \"miner\": \"ista\",\n  \"supp\": 2,\n  \"counters\": {\n    \"seg_scans\": 12\n  }\n}",
        )
        .unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("fim-metrics/1"));
        assert_eq!(
            doc.get("counters").unwrap().as_u64_map().get("seg_scans"),
            Some(&12)
        );
    }

    #[test]
    fn u64_map_skips_fractional_members() {
        let doc = parse_json(r#"{"a": 2, "b": 2.5, "c": "x"}"#).unwrap();
        let map = doc.as_u64_map();
        assert_eq!(map.len(), 1);
        assert_eq!(map.get("a"), Some(&2));
    }
}

//! Unified observability for the closed-set miners.
//!
//! Four instrumentation islands grew up with the repo — `MineStats`,
//! `TreeMemoryStats`, governor progress, and the per-bench JSON written by
//! the bench bins — each with its own field names and plumbing. This crate
//! replaces the reporting side of all of them with one layer:
//!
//! * [`Counters`]: a fixed registry of hot-loop counters ([`Counter`])
//!   incremented as plain adjacent `u64` adds (no atomics, no locks, no
//!   indirection — the counter array lives inside the structure the hot
//!   loop already mutates, so the always-on cost is a single add next to
//!   memory that is already in cache).
//! * [`SpanRecorder`]: hierarchical phase spans (read/recode → insert/isect
//!   → prune/compact → report) with monotonic timing, exported in the
//!   collapsed-stack format that `flamegraph.pl`/inferno consume.
//! * [`ProgressEmitter`]: a heartbeat line (transactions processed, peak
//!   nodes, sets, ETA) on a wall-clock interval, rendered human-readable or
//!   as JSON lines, always on `stderr` or an explicit writer so `stdout`
//!   stays clean result output.
//! * [`MetricsReport`]: the schema-versioned metrics JSON
//!   ([`METRICS_SCHEMA`]) that the CLI `--metrics` flag and the `BENCH_*`
//!   files share, plus [`validate_metrics_json`] pinning its required keys.
//! * [`TraceWriter`]: the flight recorder — a Chrome `trace_event` stream
//!   (`--trace-events`) of phase begin/end and discrete events (spill,
//!   adopt, merge pass, checkpoint, fault, retry, budget trip) that opens
//!   directly in Perfetto.
//! * [`ResourceSampler`] + [`ResourceGauges`]: a background thread
//!   sampling VmRSS/VmHWM, arena bytes, and spill-dir bytes on an
//!   interval, surfaced as the `resources` section of the metrics JSON
//!   together with per-phase duration histograms ([`PhaseHistograms`]).
//! * [`LedgerEntry`]: the append-only run ledger (`--ledger`) — one
//!   fingerprinted JSON line per run — and [`compare`], the regression
//!   diff behind `fim compare`.
//!
//! The discipline matches `fim_core::govern::checkpoint!`: everything that
//! costs a clock read or a write is behind an `Option` that is `None` when
//! the feature is off, so the off path is a branch on a register. The
//! counters are the one always-on piece, and they are sized so that the
//! fully-disabled overhead stays under the 1% budget measured in
//! EXPERIMENTS.md E13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod counters;
pub mod json;
mod ledger;
mod metrics;
mod progress;
mod resource;
mod span;
mod trace;

pub use compare::{compare, parse_run_summary, CompareReport, CompareRow, RunSummary, Thresholds};
pub use counters::{Counter, Counters, NUM_COUNTERS};
pub use ledger::{fnv1a, fnv1a_file, read_ledger, LedgerEntry, LEDGER_SCHEMA};
pub use metrics::{
    validate_metrics_json, ConstraintMetrics, EventsMetrics, KernelMetrics, MetricsReport,
    PassMetrics, ResourceMetrics, ShardMetrics, SpillMetrics, TreeMetrics, METRICS_SCHEMA,
    METRICS_SCHEMA_V1, REQUIRED_METRICS_KEYS,
};
pub use progress::{ProgressEmitter, ProgressSnapshot, ProgressStyle};
pub use resource::{
    dir_bytes, vm_status, vmhwm_kb, PhaseHistograms, ResourceGauges, ResourceSample,
    ResourceSampler, VmStatus, HIST_BUCKETS,
};
pub use span::SpanRecorder;
pub use trace::{
    export_chrome_object, read_trace, validate_trace_pairing, TraceEvent, TraceWriter, TRACE_SCHEMA,
};

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Per-run observability bundle threaded through the miners.
///
/// Every member defaults to `None`; a miner handed `None::<&mut Obs>` (or
/// an `Obs` with everything off) does no observability work beyond the
/// always-on counters. Spans, the heartbeat, the trace stream, the
/// duration histograms, and the resource gauges are each only touched
/// when the corresponding member is populated.
#[derive(Default)]
pub struct Obs {
    /// Phase spans, populated when a profile was requested.
    pub spans: Option<SpanRecorder>,
    /// Heartbeat emitter, populated when live progress was requested.
    pub progress: Option<ProgressEmitter>,
    /// Flight-recorder event stream (`--trace-events`).
    pub trace: Option<TraceWriter>,
    /// Per-phase duration histograms (on whenever the sampler is).
    pub hist: Option<PhaseHistograms>,
    /// Shared gauges the background sampler reads.
    pub gauges: Option<Arc<ResourceGauges>>,
    /// The background sampler itself; stopped and drained by
    /// [`Obs::take_resources`].
    pub sampler: Option<ResourceSampler>,
    /// Open spans for the histogram clock — [`SpanRecorder`] and
    /// [`TraceWriter`] keep their own stacks, this one exists so phase
    /// durations are measured even when only the sampler is on.
    hist_stack: Vec<(&'static str, Instant)>,
}

impl Obs {
    /// An empty bundle (everything off).
    pub fn new() -> Self {
        Obs::default()
    }

    /// Whether anything is switched on.
    pub fn enabled(&self) -> bool {
        self.spans.is_some()
            || self.progress.is_some()
            || self.trace.is_some()
            || self.hist.is_some()
            || self.sampler.is_some()
    }

    /// Enters a span. Feeds the span recorder, the trace stream (`B`
    /// event), and the histogram clock — whichever are on.
    #[inline]
    pub fn span_enter(&mut self, name: &'static str) {
        if let Some(s) = self.spans.as_mut() {
            s.enter(name);
        }
        if let Some(t) = self.trace.as_mut() {
            t.begin(name);
        }
        if self.hist.is_some() {
            self.hist_stack.push((name, Instant::now()));
        }
    }

    /// Exits the current span (`E` trace event; histogram sample).
    #[inline]
    pub fn span_exit(&mut self) {
        if let Some(s) = self.spans.as_mut() {
            s.exit();
        }
        if let Some(t) = self.trace.as_mut() {
            t.end();
        }
        if let Some(h) = self.hist.as_mut() {
            if let Some((name, start)) = self.hist_stack.pop() {
                h.record(name, start.elapsed());
            }
        }
    }

    /// Records a discrete flight-recorder event (spill, adopt, merge
    /// pass, checkpoint, fault, retry, budget trip) when tracing is on.
    #[inline]
    pub fn instant(&mut self, name: &str, args: &[(&str, u64)]) {
        if let Some(t) = self.trace.as_mut() {
            t.instant(name, args);
        }
    }

    /// Publishes the live node count for the sampler.
    #[inline]
    pub fn gauge_nodes(&self, nodes: u64) {
        if let Some(g) = self.gauges.as_deref() {
            g.nodes.store(nodes, Ordering::Relaxed);
        }
    }

    /// Publishes the approximate arena byte size for the sampler.
    #[inline]
    pub fn gauge_arena_bytes(&self, bytes: u64) {
        if let Some(g) = self.gauges.as_deref() {
            g.arena_bytes.store(bytes, Ordering::Relaxed);
        }
    }

    /// Publishes the bytes currently spilled to disk for the sampler.
    #[inline]
    pub fn gauge_spill_bytes(&self, bytes: u64) {
        if let Some(g) = self.gauges.as_deref() {
            g.spill_bytes.store(bytes, Ordering::Relaxed);
        }
    }

    /// Offers a heartbeat tick if progress is on (strided internally, so
    /// this is safe to call once per transaction). Also keeps the node
    /// gauge current for the sampler.
    #[inline]
    pub fn tick(&mut self, snap: &ProgressSnapshot) {
        self.gauge_nodes(snap.peak_nodes);
        if let Some(p) = self.progress.as_mut() {
            p.tick(snap);
        }
    }

    /// Emits a final heartbeat line if progress is on.
    pub fn finish(&mut self, snap: &ProgressSnapshot) {
        if let Some(p) = self.progress.as_mut() {
            p.finish(snap);
        }
    }

    /// Stops the sampler (if any), drains the histograms, and returns the
    /// `resources` metrics section with a fresh `/proc` probe on top.
    pub fn take_resources(&mut self) -> ResourceMetrics {
        let mut section = ResourceMetrics::probe_now();
        if let Some(sampler) = self.sampler.take() {
            section.sample_interval_ms = Some(sampler.interval().as_millis() as u64);
            section.samples = sampler.stop();
        }
        if let Some(hist) = self.hist.take() {
            section.histograms = hist.rows().to_vec();
        }
        section
    }

    /// Finishes the trace stream (if any): closes open spans, writes the
    /// array terminator, and returns the number of events emitted.
    pub fn finish_trace(&mut self) -> Option<u64> {
        self.trace.take().map(TraceWriter::finish)
    }
}

//! Unified observability for the closed-set miners.
//!
//! Four instrumentation islands grew up with the repo — `MineStats`,
//! `TreeMemoryStats`, governor progress, and the per-bench JSON written by
//! the bench bins — each with its own field names and plumbing. This crate
//! replaces the reporting side of all of them with one layer:
//!
//! * [`Counters`]: a fixed registry of hot-loop counters ([`Counter`])
//!   incremented as plain adjacent `u64` adds (no atomics, no locks, no
//!   indirection — the counter array lives inside the structure the hot
//!   loop already mutates, so the always-on cost is a single add next to
//!   memory that is already in cache).
//! * [`SpanRecorder`]: hierarchical phase spans (read/recode → insert/isect
//!   → prune/compact → report) with monotonic timing, exported in the
//!   collapsed-stack format that `flamegraph.pl`/inferno consume.
//! * [`ProgressEmitter`]: a heartbeat line (transactions processed, peak
//!   nodes, sets, ETA) on a wall-clock interval, rendered human-readable or
//!   as JSON lines, always on `stderr` or an explicit writer so `stdout`
//!   stays clean result output.
//! * [`MetricsReport`]: the schema-versioned metrics JSON
//!   ([`METRICS_SCHEMA`]) that the CLI `--metrics` flag and the `BENCH_*`
//!   files share, plus [`validate_metrics_json`] pinning its required keys.
//!
//! The discipline matches `fim_core::govern::checkpoint!`: everything that
//! costs a clock read or a write is behind an `Option` that is `None` when
//! the feature is off, so the off path is a branch on a register. The
//! counters are the one always-on piece, and they are sized so that the
//! fully-disabled overhead stays under the 1% budget measured in
//! EXPERIMENTS.md E13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod metrics;
mod progress;
mod span;

pub use counters::{Counter, Counters, NUM_COUNTERS};
pub use metrics::{
    validate_metrics_json, ConstraintMetrics, KernelMetrics, MetricsReport, PassMetrics,
    ShardMetrics, SpillMetrics, TreeMetrics, METRICS_SCHEMA, REQUIRED_METRICS_KEYS,
};
pub use progress::{ProgressEmitter, ProgressSnapshot, ProgressStyle};
pub use span::SpanRecorder;

/// Per-run observability bundle threaded through the miners.
///
/// Both members default to `None`; a miner handed `None::<&mut Obs>` (or an
/// `Obs` with both members off) does no observability work beyond the
/// always-on counters. Spans and the heartbeat are only recorded when the
/// corresponding member is populated.
#[derive(Default)]
pub struct Obs {
    /// Phase spans, populated when a profile was requested.
    pub spans: Option<SpanRecorder>,
    /// Heartbeat emitter, populated when live progress was requested.
    pub progress: Option<ProgressEmitter>,
}

impl Obs {
    /// An empty bundle (no spans, no progress).
    pub fn new() -> Self {
        Obs::default()
    }

    /// Whether anything is switched on.
    pub fn enabled(&self) -> bool {
        self.spans.is_some() || self.progress.is_some()
    }

    /// Enters a span if spans are on.
    #[inline]
    pub fn span_enter(&mut self, name: &'static str) {
        if let Some(s) = self.spans.as_mut() {
            s.enter(name);
        }
    }

    /// Exits the current span if spans are on.
    #[inline]
    pub fn span_exit(&mut self) {
        if let Some(s) = self.spans.as_mut() {
            s.exit();
        }
    }

    /// Offers a heartbeat tick if progress is on (strided internally, so
    /// this is safe to call once per transaction).
    #[inline]
    pub fn tick(&mut self, snap: &ProgressSnapshot) {
        if let Some(p) = self.progress.as_mut() {
            p.tick(snap);
        }
    }

    /// Emits a final heartbeat line if progress is on.
    pub fn finish(&mut self, snap: &ProgressSnapshot) {
        if let Some(p) = self.progress.as_mut() {
            p.finish(snap);
        }
    }
}

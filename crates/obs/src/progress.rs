//! Heartbeat progress emission.
//!
//! The miners call [`ProgressEmitter::tick`] once per transaction (or
//! search step). Ticks are strided — only every [`STRIDE`]th call reads the
//! clock, mirroring the governor's deadline stride — and a line is only
//! written once the configured interval has elapsed, so a 1 s heartbeat
//! costs a handful of clock reads per second of mining.

use std::io::{self, Write};
use std::time::{Duration, Instant};

/// How many ticks pass between clock reads.
pub(crate) const STRIDE: u32 = 64;

/// What a heartbeat line reports. Populated by the caller at each tick.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProgressSnapshot {
    /// Transactions (or search steps) processed so far.
    pub processed: u64,
    /// Total work items when known (enables the percentage and the ETA).
    pub total: Option<u64>,
    /// Estimated work items beyond `total` that are already known to be
    /// coming — the out-of-core pipeline reports its pending merge-pass
    /// replays here so the ETA does not collapse to ~0 when pass 1 ends
    /// with the merge queue still full. Folded into the ETA and the
    /// percentage denominator.
    pub pending: u64,
    /// Peak repository size in nodes so far (0 when not applicable).
    pub peak_nodes: u64,
    /// Current result-set size: repository nodes for IsTa (an upper bound
    /// on closed sets), emitted sets for the enumeration miners.
    pub sets: u64,
}

/// Rendering style for heartbeat lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressStyle {
    /// One human-readable line per heartbeat.
    Human,
    /// One JSON object per line (`{"type":"progress",...}`).
    JsonLines,
}

/// Interval-gated heartbeat writer.
pub struct ProgressEmitter {
    interval: Duration,
    style: ProgressStyle,
    out: Box<dyn Write + Send>,
    started: Instant,
    last_emit: Instant,
    ticks_since_check: u32,
    emitted: u64,
}

impl std::fmt::Debug for ProgressEmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressEmitter")
            .field("interval", &self.interval)
            .field("style", &self.style)
            .field("emitted", &self.emitted)
            .finish()
    }
}

impl ProgressEmitter {
    /// Heartbeat to `stderr` every `interval`.
    pub fn stderr(interval: Duration, style: ProgressStyle) -> Self {
        ProgressEmitter::with_writer(interval, style, Box::new(io::stderr()))
    }

    /// Heartbeat to an arbitrary writer (tests, log files).
    pub fn with_writer(
        interval: Duration,
        style: ProgressStyle,
        out: Box<dyn Write + Send>,
    ) -> Self {
        let now = Instant::now();
        ProgressEmitter {
            interval,
            style,
            out,
            started: now,
            last_emit: now,
            ticks_since_check: 0,
            emitted: 0,
        }
    }

    /// Number of heartbeat lines written so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Offers a tick; emits a line if the interval has elapsed. Strided so
    /// the per-call cost between clock reads is one compare and one add.
    #[inline]
    pub fn tick(&mut self, snap: &ProgressSnapshot) {
        self.ticks_since_check += 1;
        if self.ticks_since_check < STRIDE {
            return;
        }
        self.ticks_since_check = 0;
        self.tick_checked(snap);
    }

    #[inline(never)]
    fn tick_checked(&mut self, snap: &ProgressSnapshot) {
        let now = Instant::now();
        if now.duration_since(self.last_emit) < self.interval {
            return;
        }
        self.last_emit = now;
        self.emit(snap, now.duration_since(self.started));
    }

    /// Writes a final line regardless of the interval, so short runs still
    /// produce at least one heartbeat.
    pub fn finish(&mut self, snap: &ProgressSnapshot) {
        let elapsed = self.started.elapsed();
        self.emit(snap, elapsed);
    }

    fn emit(&mut self, snap: &ProgressSnapshot, elapsed: Duration) {
        let eta = eta(snap, elapsed);
        let secs = elapsed.as_secs_f64();
        let res = match self.style {
            ProgressStyle::Human => {
                let pct = snap
                    .total
                    .map(|t| t + snap.pending)
                    .filter(|&t| t > 0)
                    .map(|t| 100.0 * snap.processed as f64 / t as f64);
                let mut line = format!("[progress] {} tx", snap.processed);
                if let Some(pct) = pct {
                    line.push_str(&format!(" ({pct:.1}%)"));
                }
                line.push_str(&format!(
                    ", peak {} nodes, {} sets, {:.1}s elapsed",
                    snap.peak_nodes, snap.sets, secs
                ));
                match eta {
                    Some(e) => line.push_str(&format!(", eta {:.1}s", e.as_secs_f64())),
                    None => line.push_str(", eta ?"),
                }
                writeln!(self.out, "{line}")
            }
            ProgressStyle::JsonLines => {
                let mut line = format!(
                    "{{\"type\":\"progress\",\"processed\":{},\"peak_nodes\":{},\"sets\":{},\"elapsed_secs\":{:.3}",
                    snap.processed, snap.peak_nodes, snap.sets, secs
                );
                if let Some(t) = snap.total {
                    line.push_str(&format!(",\"total\":{t}"));
                }
                if snap.pending > 0 {
                    line.push_str(&format!(",\"pending\":{}", snap.pending));
                }
                if let Some(e) = eta {
                    line.push_str(&format!(",\"eta_secs\":{:.3}", e.as_secs_f64()));
                }
                line.push('}');
                writeln!(self.out, "{line}")
            }
        };
        if res.is_ok() {
            self.emitted += 1;
            let _ = self.out.flush();
        }
    }
}

/// Linear remaining-work estimate; `None` until there is enough signal.
/// Pending work (queued merge passes) counts as remaining even when
/// `processed` has caught up with `total`.
fn eta(snap: &ProgressSnapshot, elapsed: Duration) -> Option<Duration> {
    let total = snap.total? + snap.pending;
    if snap.processed == 0 || total <= snap.processed {
        return None;
    }
    let per_item = elapsed.as_secs_f64() / snap.processed as f64;
    Some(Duration::from_secs_f64(
        per_item * (total - snap.processed) as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Shared sink so the test can read what the boxed writer received.
    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl Sink {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn snap(processed: u64, total: Option<u64>) -> ProgressSnapshot {
        ProgressSnapshot {
            processed,
            total,
            pending: 0,
            peak_nodes: 42,
            sets: 7,
        }
    }

    #[test]
    fn zero_interval_emits_after_stride() {
        let sink = Sink::default();
        let mut p = ProgressEmitter::with_writer(
            Duration::ZERO,
            ProgressStyle::Human,
            Box::new(sink.clone()),
        );
        for i in 0..(STRIDE as u64 * 2) {
            p.tick(&snap(i, Some(1000)));
        }
        assert_eq!(p.emitted(), 2, "one line per stride at interval 0");
        let text = sink.text();
        assert!(text.lines().all(|l| l.starts_with("[progress] ")), "{text}");
        assert!(text.contains("peak 42 nodes"));
        assert!(text.contains("eta "));
    }

    #[test]
    fn long_interval_suppresses_midrun_lines() {
        let sink = Sink::default();
        let mut p = ProgressEmitter::with_writer(
            Duration::from_secs(3600),
            ProgressStyle::Human,
            Box::new(sink.clone()),
        );
        for i in 0..1000 {
            p.tick(&snap(i, None));
        }
        assert_eq!(p.emitted(), 0);
        p.finish(&snap(1000, None));
        assert_eq!(p.emitted(), 1, "finish always emits");
        assert!(sink.text().contains("eta ?"));
    }

    #[test]
    fn json_lines_are_json_shaped() {
        let sink = Sink::default();
        let mut p = ProgressEmitter::with_writer(
            Duration::ZERO,
            ProgressStyle::JsonLines,
            Box::new(sink.clone()),
        );
        p.finish(&snap(10, Some(100)));
        p.finish(&snap(100, Some(100)));
        let text = sink.text();
        for line in text.lines() {
            assert!(line.starts_with("{\"type\":\"progress\","), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"total\":100"));
        assert!(text.contains("\"eta_secs\":"));
        // completed run: no ETA on the final line
        assert!(!text.lines().last().unwrap().contains("eta_secs"));
    }

    #[test]
    fn eta_math() {
        let e = eta(&snap(50, Some(100)), Duration::from_secs(5)).unwrap();
        assert!((e.as_secs_f64() - 5.0).abs() < 1e-9);
        assert!(eta(&snap(0, Some(100)), Duration::from_secs(5)).is_none());
        assert!(eta(&snap(100, Some(100)), Duration::from_secs(5)).is_none());
        assert!(eta(&snap(50, None), Duration::from_secs(5)).is_none());
    }

    #[test]
    fn pending_merge_work_keeps_eta_alive() {
        // End of pass 1 with merges queued: processed == total used to
        // drop the ETA to None (read: "done"); pending keeps it honest.
        let mut s = snap(100, Some(100));
        s.pending = 50;
        let e = eta(&s, Duration::from_secs(10)).unwrap();
        assert!(
            (e.as_secs_f64() - 5.0).abs() < 1e-9,
            "50 items at 0.1 s/item"
        );
        // Pending also widens the percentage denominator in the JSON line.
        let sink = Sink::default();
        let mut p = ProgressEmitter::with_writer(
            Duration::ZERO,
            ProgressStyle::JsonLines,
            Box::new(sink.clone()),
        );
        p.finish(&s);
        let text = sink.text();
        assert!(text.contains("\"pending\":50"), "{text}");
        assert!(text.contains("\"eta_secs\":"), "{text}");
    }
}

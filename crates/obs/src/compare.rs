//! Regression comparison between two runs (`fim compare`).
//!
//! Inputs are either metrics snapshots (one `fim-metrics/N` object per
//! file) or ledgers (JSONL of `fim-ledger/1` lines — the *last* entry is
//! compared, so pointing at a growing ledger compares the most recent
//! run). Detection is by content, not extension.
//!
//! Regression policy: a metric regresses when it worsens by more than the
//! percentage threshold *and* by more than an absolute floor. The floors
//! exist because CI smoke cells finish in milliseconds and idle-RSS noise
//! is a few hundred kB — a pure percentage gate would flap. A `sets`
//! mismatch is always a regression: result drift is never noise.

use crate::json::{parse_json, JsonValue};
use crate::ledger::{read_ledger, LedgerEntry};
use crate::metrics::{METRICS_SCHEMA, METRICS_SCHEMA_V1};
use std::collections::BTreeMap;
use std::io::Write;

/// Thresholds above which a worsened metric counts as a regression.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Wall-clock regression percentage (default 10%).
    pub time_pct: f64,
    /// Absolute wall-clock floor in seconds (default 0.1 s).
    pub time_floor_secs: f64,
    /// Peak-RSS regression percentage (default 10%).
    pub mem_pct: f64,
    /// Absolute peak-RSS floor in kB (default 2048 kB).
    pub mem_floor_kb: f64,
    /// Counter regression percentage (default 25%).
    pub counter_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            time_pct: 10.0,
            time_floor_secs: 0.1,
            mem_pct: 10.0,
            mem_floor_kb: 2048.0,
            counter_pct: 25.0,
        }
    }
}

/// The comparable surface extracted from either input kind.
#[derive(Clone, Debug, Default)]
pub struct RunSummary {
    /// Where the numbers came from (`metrics` or `ledger`).
    pub kind: &'static str,
    /// Algorithm label.
    pub algo: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Reported closed sets, when present.
    pub sets: Option<u64>,
    /// Peak RSS in kB, when the source recorded it (v1 metrics did not).
    pub peak_rss_kb: Option<u64>,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
}

/// Parses a run summary out of file contents (metrics object or ledger
/// JSONL, detected by schema tag).
pub fn parse_run_summary(text: &str) -> Result<RunSummary, String> {
    let head = text.trim_start();
    if head.is_empty() {
        return Err("input is empty".into());
    }
    if text.contains("\"fim-ledger/") {
        let entries = read_ledger(text)?;
        let last = entries.last().ok_or("ledger has no complete entries")?;
        return Ok(summary_of_ledger(last));
    }
    let doc = parse_json(text).map_err(|e| format!("not a metrics document: {e}"))?;
    summary_of_metrics(&doc)
}

fn summary_of_ledger(entry: &LedgerEntry) -> RunSummary {
    RunSummary {
        kind: "ledger",
        algo: entry.algo.clone(),
        seconds: entry.seconds,
        sets: Some(entry.sets),
        peak_rss_kb: (entry.peak_rss_kb > 0).then_some(entry.peak_rss_kb),
        counters: entry.counter_map(),
    }
}

fn summary_of_metrics(doc: &JsonValue) -> Result<RunSummary, String> {
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or("metrics document has no schema tag")?;
    if schema != METRICS_SCHEMA && schema != METRICS_SCHEMA_V1 {
        return Err(format!("unsupported metrics schema {schema:?}"));
    }
    // v1 compatibility: the resources section (and its peak RSS) only
    // exists from v2 on.
    let peak_rss_kb = doc
        .get("resources")
        .and_then(|r| r.get("peak_rss_kb"))
        .and_then(|v| v.as_u64())
        .filter(|&kb| kb > 0);
    Ok(RunSummary {
        kind: "metrics",
        algo: doc
            .get("miner")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string(),
        seconds: doc
            .get("seconds")
            .and_then(|v| v.as_f64())
            .ok_or("metrics document missing \"seconds\"")?,
        sets: doc.get("sets").and_then(|v| v.as_u64()),
        peak_rss_kb,
        counters: doc
            .get("counters")
            .map(|c| c.as_u64_map())
            .unwrap_or_default(),
    })
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Metric name (`seconds`, `peak_rss_kb`, `sets`, or a counter).
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed percentage change (positive = worsened for all our metrics).
    pub delta_pct: f64,
    /// Whether this row trips the regression gate.
    pub regressed: bool,
}

/// Full comparison result.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// All compared rows, regressions first.
    pub rows: Vec<CompareRow>,
    /// Number of regressed rows.
    pub regressions: usize,
}

fn pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        if new == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (new - base) / base
    }
}

/// Compares candidate against baseline under `t`.
pub fn compare(base: &RunSummary, new: &RunSummary, t: &Thresholds) -> CompareReport {
    let mut rows = Vec::new();

    let time_pct = pct(base.seconds, new.seconds);
    rows.push(CompareRow {
        metric: "seconds".into(),
        base: base.seconds,
        new: new.seconds,
        delta_pct: time_pct,
        regressed: time_pct > t.time_pct && (new.seconds - base.seconds) > t.time_floor_secs,
    });

    if let (Some(b), Some(n)) = (base.peak_rss_kb, new.peak_rss_kb) {
        let mem_pct = pct(b as f64, n as f64);
        rows.push(CompareRow {
            metric: "peak_rss_kb".into(),
            base: b as f64,
            new: n as f64,
            delta_pct: mem_pct,
            regressed: mem_pct > t.mem_pct && (n as f64 - b as f64) > t.mem_floor_kb,
        });
    }

    if let (Some(b), Some(n)) = (base.sets, new.sets) {
        rows.push(CompareRow {
            metric: "sets".into(),
            base: b as f64,
            new: n as f64,
            delta_pct: pct(b as f64, n as f64),
            // Result drift in either direction is a correctness signal,
            // never noise.
            regressed: b != n,
        });
    }

    // Counters present on both sides; a counter that appears or vanishes
    // entirely usually means a different code path was configured, which
    // the config diff (not this gate) should surface.
    for (name, &b) in &base.counters {
        let Some(&n) = new.counters.get(name) else {
            continue;
        };
        let delta = pct(b as f64, n as f64);
        rows.push(CompareRow {
            metric: name.clone(),
            base: b as f64,
            new: n as f64,
            delta_pct: delta,
            regressed: delta > t.counter_pct,
        });
    }

    rows.sort_by_key(|r| !r.regressed as u8);
    let regressions = rows.iter().filter(|r| r.regressed).count();
    CompareReport { rows, regressions }
}

impl CompareReport {
    /// Writes the human-readable table.
    pub fn write_table(&self, w: &mut dyn Write) -> std::io::Result<()> {
        let name_width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .chain(std::iter::once("metric".len()))
            .max()
            .unwrap_or(6);
        writeln!(
            w,
            "{:<name_width$}  {:>14}  {:>14}  {:>9}  verdict",
            "metric", "base", "new", "delta"
        )?;
        for row in &self.rows {
            let delta = if row.delta_pct.is_infinite() {
                "new".to_string()
            } else {
                format!("{:+.1}%", row.delta_pct)
            };
            writeln!(
                w,
                "{:<name_width$}  {:>14}  {:>14}  {:>9}  {}",
                row.metric,
                trim_float(row.base),
                trim_float(row.new),
                delta,
                if row.regressed { "REGRESSED" } else { "ok" }
            )?;
        }
        writeln!(
            w,
            "{} metric(s) compared, {} regression(s)",
            self.rows.len(),
            self.regressions
        )
    }

    /// Writes the machine-readable JSON report.
    pub fn write_json(&self, w: &mut dyn Write) -> std::io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"schema\": \"fim-compare/1\",")?;
        writeln!(w, "  \"regressions\": {},", self.regressions)?;
        writeln!(w, "  \"rows\": [")?;
        for (i, row) in self.rows.iter().enumerate() {
            let delta = if row.delta_pct.is_finite() {
                format!("{:.4}", row.delta_pct)
            } else {
                "null".to_string()
            };
            writeln!(
                w,
                "    {{\"metric\": \"{}\", \"base\": {}, \"new\": {}, \"delta_pct\": {}, \"regressed\": {}}}{}",
                crate::metrics::escape(&row.metric),
                trim_float(row.base),
                trim_float(row.new),
                delta,
                row.regressed,
                if i + 1 < self.rows.len() { "," } else { "" }
            )?;
        }
        writeln!(w, "  ]")?;
        writeln!(w, "}}")
    }
}

fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seconds: f64, sets: u64, rss: u64, scans: u64) -> RunSummary {
        RunSummary {
            kind: "metrics",
            algo: "ista".into(),
            seconds,
            sets: Some(sets),
            peak_rss_kb: Some(rss),
            counters: [("seg_scans".to_string(), scans)].into_iter().collect(),
        }
    }

    #[test]
    fn identical_runs_have_no_regressions() {
        let a = run(1.0, 981, 20000, 500);
        let report = compare(&a, &a.clone(), &Thresholds::default());
        assert_eq!(report.regressions, 0);
        assert!(report.rows.iter().all(|r| !r.regressed));
    }

    #[test]
    fn small_noise_is_below_the_floors() {
        let base = run(0.010, 981, 20000, 500);
        let new = run(0.014, 981, 20500, 500); // +40% time but only 4 ms
        let report = compare(&base, &new, &Thresholds::default());
        assert_eq!(report.regressions, 0, "absolute floors absorb noise");
    }

    #[test]
    fn large_time_regression_trips() {
        let base = run(1.0, 981, 20000, 500);
        let new = run(1.5, 981, 20000, 500);
        let report = compare(&base, &new, &Thresholds::default());
        assert_eq!(report.regressions, 1);
        assert_eq!(report.rows[0].metric, "seconds", "regressions sort first");
    }

    #[test]
    fn sets_drift_always_trips() {
        let base = run(1.0, 981, 20000, 500);
        let new = run(1.0, 980, 20000, 500);
        let report = compare(&base, &new, &Thresholds::default());
        assert_eq!(report.regressions, 1);
        assert!(report.rows[0].metric == "sets");
    }

    #[test]
    fn counter_regression_trips_over_threshold() {
        let base = run(1.0, 981, 20000, 100);
        let new = run(1.0, 981, 20000, 126);
        let report = compare(&base, &new, &Thresholds::default());
        assert_eq!(report.regressions, 1);
        assert_eq!(report.rows[0].metric, "seg_scans");
    }

    #[test]
    fn parses_metrics_v1_without_resources() {
        let doc = "{\n  \"schema\": \"fim-metrics/1\",\n  \"miner\": \"ista\",\n  \"supp\": 2,\n  \"seconds\": 1.5,\n  \"sets\": 10,\n  \"transactions\": {\"total\": 9, \"distinct\": 9},\n  \"counters\": {\"seg_scans\": 4}\n}";
        let summary = parse_run_summary(doc).unwrap();
        assert_eq!(summary.kind, "metrics");
        assert_eq!(summary.peak_rss_kb, None, "v1 has no resources section");
        assert_eq!(summary.counters.get("seg_scans"), Some(&4));
    }

    #[test]
    fn parses_ledger_last_entry() {
        let mut entry = crate::ledger::LedgerEntry {
            algo: "eclat".into(),
            seconds: 2.0,
            sets: 7,
            peak_rss_kb: 1024,
            exit: "ok".into(),
            ..Default::default()
        };
        let mut text = entry.to_json_line();
        text.push('\n');
        entry.seconds = 3.0;
        text.push_str(&entry.to_json_line());
        text.push('\n');
        let summary = parse_run_summary(&text).unwrap();
        assert_eq!(summary.kind, "ledger");
        assert_eq!(summary.seconds, 3.0, "last entry wins");
    }

    #[test]
    fn reports_render() {
        let base = run(1.0, 981, 20000, 100);
        let new = run(1.5, 980, 24000, 200);
        let report = compare(&base, &new, &Thresholds::default());
        let mut table = Vec::new();
        report.write_table(&mut table).unwrap();
        let table = String::from_utf8(table).unwrap();
        assert!(table.contains("REGRESSED"));
        let mut json = Vec::new();
        report.write_json(&mut json).unwrap();
        let doc = parse_json(std::str::from_utf8(&json).unwrap()).unwrap();
        assert_eq!(
            doc.get("regressions").unwrap().as_u64().unwrap() as usize,
            report.regressions
        );
    }
}

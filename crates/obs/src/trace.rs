//! Flight-recorder event stream in Chrome `trace_event` format.
//!
//! The stream is written in the *JSON Array Format*: the file opens with
//! `[` and every event is one complete JSON object on its own line with a
//! trailing comma. Chrome and Perfetto explicitly tolerate a missing
//! closing `]`, which buys two properties at once: the file is loadable in
//! a trace viewer even when the run crashed mid-write, and each line after
//! the first is independently parseable, so the stream doubles as JSONL.
//!
//! Phases used: `B`/`E` bracket the spans the miners already enter via
//! [`crate::Obs::span_enter`], `i` marks discrete events (spill, adopt,
//! merge pass, checkpoint, fault, retry, budget trip), and one `M`
//! metadata event at the head carries the schema tag [`TRACE_SCHEMA`].

use std::io::Write;
use std::time::Instant;

use crate::json::{parse_json, JsonValue};

/// Schema tag carried by the leading metadata event.
pub const TRACE_SCHEMA: &str = "fim-trace/1";

/// Streaming writer for the event trace.
pub struct TraceWriter {
    out: Box<dyn Write + Send>,
    started: Instant,
    /// Open `B` events awaiting their `E`; names only, the timestamps live
    /// in the file.
    stack: Vec<&'static str>,
    events: u64,
    failed: bool,
}

impl std::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("events", &self.events)
            .field("open_spans", &self.stack.len())
            .finish()
    }
}

impl TraceWriter {
    /// Starts a trace on `out`: writes the array opener and the schema
    /// metadata event.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        let mut w = TraceWriter {
            out,
            started: Instant::now(),
            stack: Vec::new(),
            events: 0,
            failed: false,
        };
        let _ = writeln!(w.out, "[");
        w.write_line(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"fim_trace_schema\",\"args\":{{\"schema\":\"{TRACE_SCHEMA}\"}}}}",
        ));
        w
    }

    /// Number of events written (metadata included).
    pub fn events(&self) -> u64 {
        self.events
    }

    fn ts_us(&self) -> u128 {
        self.started.elapsed().as_micros()
    }

    fn write_line(&mut self, body: &str) {
        if self.failed {
            return;
        }
        if writeln!(self.out, "{body},").is_err() {
            // A broken trace sink must never abort the mining run; stop
            // writing and let `finish` report the truncation.
            self.failed = true;
            return;
        }
        self.events += 1;
    }

    /// Opens a duration span (`ph:"B"`).
    pub fn begin(&mut self, name: &'static str) {
        let ts = self.ts_us();
        self.write_line(&format!(
            "{{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":{ts},\"name\":\"{name}\"}}"
        ));
        self.stack.push(name);
    }

    /// Closes the most recently opened span (`ph:"E"`). Ignored when no
    /// span is open (mirrors [`crate::SpanRecorder::exit`]).
    pub fn end(&mut self) {
        let Some(name) = self.stack.pop() else {
            debug_assert!(false, "trace end with no open span");
            return;
        };
        let ts = self.ts_us();
        self.write_line(&format!(
            "{{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":{ts},\"name\":\"{name}\"}}"
        ));
    }

    /// Records a discrete instant event with integer args.
    pub fn instant(&mut self, name: &str, args: &[(&str, u64)]) {
        let ts = self.ts_us();
        let mut body = format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"t\",\"ts\":{ts},\"name\":\"{name}\""
        );
        if !args.is_empty() {
            body.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!("\"{k}\":{v}"));
            }
            body.push('}');
        }
        body.push('}');
        self.write_line(&body);
    }

    /// Closes any still-open spans (crash hygiene), writes the closing
    /// bracket, and flushes. Returns the total number of events written.
    pub fn finish(mut self) -> u64 {
        while !self.stack.is_empty() {
            self.end();
        }
        if !self.failed {
            let _ = writeln!(self.out, "]");
            let _ = self.out.flush();
        }
        self.events
    }
}

/// One parsed trace event; only the fields the tooling needs.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Phase letter: `B`, `E`, `i`, `M`, ...
    pub ph: String,
    /// Event name.
    pub name: String,
    /// Timestamp in microseconds (0 for metadata events).
    pub ts_us: u64,
}

/// Parses a trace written by [`TraceWriter`] — tolerant of the missing
/// closing `]` a crashed run leaves behind, exactly like the viewers are.
pub fn read_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let body = normalize_array(text)?;
    let doc = parse_json(&body).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let JsonValue::Arr(items) = doc else {
        return Err("trace is not a JSON array".into());
    };
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i} has no \"ph\""))?;
        let name = item
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i} has no \"name\""))?;
        let ts_us = item.get("ts").and_then(|v| v.as_u64()).unwrap_or(0);
        events.push(TraceEvent {
            ph: ph.to_string(),
            name: name.to_string(),
            ts_us,
        });
    }
    Ok(events)
}

/// Normalizes a streamed array-format trace into strict JSON: closes a
/// missing `]` (crashed run), drops a torn final line (crash mid-write —
/// every complete line ends `},`, so a line without its `}` is the torn
/// tail), and drops the trailing comma the per-line stream syntax leaves
/// before the terminator — all forms the Chrome and Perfetto loaders
/// accept.
fn normalize_array(text: &str) -> Result<String, String> {
    let mut body = text.trim().to_string();
    if !body.starts_with('[') {
        return Err("trace does not start with '['".into());
    }
    if body.ends_with(']') {
        body.pop();
        body.truncate(body.trim_end().len());
    }
    if !body.ends_with(',') && !body.ends_with('[') {
        match body.rfind('\n') {
            Some(pos) => body.truncate(pos),
            None => return Err("trace has no complete events".into()),
        }
    }
    let trimmed = body.trim_end().trim_end_matches(',').to_string();
    Ok(format!("{trimmed}\n]"))
}

/// Validates `B`/`E` pairing: every `E` must close the innermost open `B`
/// of the same name, and nothing may remain open at the end. Returns the
/// number of complete spans.
pub fn validate_trace_pairing(events: &[TraceEvent]) -> Result<u64, String> {
    let mut stack: Vec<&str> = Vec::new();
    let mut spans = 0u64;
    for (i, ev) in events.iter().enumerate() {
        match ev.ph.as_str() {
            "B" => stack.push(&ev.name),
            "E" => match stack.pop() {
                Some(open) if open == ev.name => spans += 1,
                Some(open) => {
                    return Err(format!(
                        "event {i}: E \"{}\" closes open span \"{open}\"",
                        ev.name
                    ))
                }
                None => return Err(format!("event {i}: E \"{}\" with no open span", ev.name)),
            },
            _ => {}
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("span \"{open}\" never closed"));
    }
    Ok(spans)
}

/// Exports a streamed trace to the strict Chrome JSON *Object Format*
/// (`{"traceEvents": [...]}`) — the belt-and-braces form every
/// `trace_event` consumer accepts. Events are re-serialised from the
/// parsed form, which also normalises away the trailing-comma stream
/// syntax.
pub fn export_chrome_object(text: &str, w: &mut dyn Write) -> Result<u64, String> {
    let events = read_trace(text)?;
    validate_trace_pairing(&events)?;
    // Re-emit the normalized stream verbatim so every event field
    // survives, not just the ones TraceEvent keeps.
    let body = normalize_array(text)?;
    writeln!(w, "{{\"displayTimeUnit\": \"ms\", \"traceEvents\":").map_err(|e| e.to_string())?;
    writeln!(w, "{body}").map_err(|e| e.to_string())?;
    writeln!(w, "}}").map_err(|e| e.to_string())?;
    Ok(events.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct Sink(Arc<Mutex<Vec<u8>>>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl Sink {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn stream_is_valid_chrome_array_json() {
        let sink = Sink::default();
        let mut t = TraceWriter::new(Box::new(sink.clone()));
        t.begin("mine");
        t.instant("spill", &[("shard", 3), ("bytes", 4096)]);
        t.begin("merge");
        t.end();
        t.end();
        t.finish();
        let text = sink.text();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        let events = read_trace(&text).unwrap();
        assert_eq!(events.len(), 6, "M + B + i + B + E + E");
        assert_eq!(events[0].ph, "M");
        assert_eq!(validate_trace_pairing(&events).unwrap(), 2);
    }

    #[test]
    fn truncated_stream_still_parses() {
        let sink = Sink::default();
        let mut t = TraceWriter::new(Box::new(sink.clone()));
        t.begin("mine");
        t.instant("fault_injected", &[]);
        // No end/finish: simulate a crash. Snapshot what hit the sink.
        let text = sink.text();
        drop(t);
        assert!(!text.trim_end().ends_with(']'));
        let events = read_trace(&text).unwrap();
        assert_eq!(events.len(), 3);
        assert!(
            validate_trace_pairing(&events).is_err(),
            "open span detected"
        );
    }

    #[test]
    fn finish_closes_open_spans() {
        let sink = Sink::default();
        let mut t = TraceWriter::new(Box::new(sink.clone()));
        t.begin("mine");
        t.begin("merge");
        t.finish();
        let events = read_trace(&sink.text()).unwrap();
        assert_eq!(validate_trace_pairing(&events).unwrap(), 2);
    }

    #[test]
    fn export_produces_object_format() {
        let sink = Sink::default();
        let mut t = TraceWriter::new(Box::new(sink.clone()));
        t.begin("mine");
        t.end();
        t.finish();
        let mut out = Vec::new();
        let n = export_chrome_object(&sink.text(), &mut out).unwrap();
        assert_eq!(n, 3);
        let doc = parse_json(std::str::from_utf8(&out).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn mismatched_pairing_is_rejected() {
        let text = "[\n{\"ph\":\"B\",\"ts\":1,\"name\":\"a\"},\n{\"ph\":\"E\",\"ts\":2,\"name\":\"b\"},\n]";
        let events = read_trace(text).unwrap();
        assert!(validate_trace_pairing(&events).is_err());
    }
}

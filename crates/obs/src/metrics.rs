//! Schema-versioned metrics JSON.
//!
//! One JSON document describes a finished mining run. The CLI `--metrics`
//! flag, the `--stats` flag, and the bench bins all emit this shape, so
//! `BENCH_*` files and CLI output agree on field names. The schema is
//! pinned: [`METRICS_SCHEMA`] names the version and
//! [`REQUIRED_METRICS_KEYS`] the keys every document must carry;
//! [`validate_metrics_json`] enforces both (the CI smoke step and the
//! schema unit test share it).

use crate::counters::Counters;
use crate::resource::{ResourceSample, HIST_BUCKETS};
use std::io::{self, Write};

/// Version tag carried in the `schema` field. Bump when a required key
/// changes meaning or disappears; adding optional keys is compatible.
/// v2 added the required `resources` section and the optional `events`
/// section.
pub const METRICS_SCHEMA: &str = "fim-metrics/2";

/// The previous schema tag. [`validate_metrics_json`] still accepts v1
/// documents (under the v1 key set) so committed baselines and old
/// `BENCH_*` files keep validating and comparing.
pub const METRICS_SCHEMA_V1: &str = "fim-metrics/1";

/// Keys every current (v2) metrics document must contain. v1 documents
/// carry everything except `resources`.
pub const REQUIRED_METRICS_KEYS: [&str; 8] = [
    "schema",
    "miner",
    "supp",
    "seconds",
    "sets",
    "transactions",
    "resources",
    "counters",
];

/// Repository-size metrics (IsTa miners only).
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeMetrics {
    /// Largest node count the repository reached while mining.
    pub peak_nodes: u64,
    /// Live nodes at the end.
    pub live_nodes: u64,
    /// Arena slots allocated (live + free).
    pub total_slots: u64,
    /// Free-listed slots.
    pub free_slots: u64,
    /// Items in the segment store (Patricia layout; plain: one per node).
    pub seg_items: u64,
    /// Bytes of the segment store.
    pub seg_bytes: u64,
    /// Approximate resident bytes of the whole tree.
    pub approx_bytes: u64,
}

impl TreeMetrics {
    /// Mean items per live node (the Patricia compression ratio).
    pub fn avg_seg_len(&self) -> f64 {
        if self.live_nodes == 0 {
            0.0
        } else {
            self.seg_items as f64 / self.live_nodes as f64
        }
    }
}

/// Maintenance-pass metrics (IsTa miners only).
#[derive(Clone, Copy, Debug, Default)]
pub struct PassMetrics {
    /// Pruning passes run.
    pub prune_passes: u64,
    /// Arena compactions run.
    pub compactions: u64,
}

/// Shard metrics (parallel miner only).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardMetrics {
    /// Shards mined.
    pub shards: u64,
    /// Shards re-mined sequentially after a worker panic.
    pub recovered: u64,
}

/// Spill metrics (out-of-core pipeline only).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpillMetrics {
    /// Shard trees spilled to disk.
    pub shards: u64,
    /// Bytes written across all spilled snapshots (shard spills plus
    /// intermediate merge re-spills).
    pub spill_bytes: u64,
    /// Pairwise merge-reduce passes over spilled snapshots.
    pub merge_passes: u64,
    /// Injected faults that fired during the run.
    pub faults_injected: u64,
    /// Bounded-retry re-attempts after transient I/O errors.
    pub retries_attempted: u64,
    /// Completed spills adopted from a prior run's manifest instead of
    /// being re-mined (`--resume-spill`).
    pub shards_resumed: u64,
}

impl SpillMetrics {
    /// A spill section read out of a counter registry.
    pub fn from_counters(counters: &Counters) -> Self {
        use crate::counters::Counter;
        SpillMetrics {
            shards: counters.get(Counter::ShardsSpilled),
            spill_bytes: counters.get(Counter::SpillBytes),
            merge_passes: counters.get(Counter::MergePasses),
            faults_injected: counters.get(Counter::FaultsInjected),
            retries_attempted: counters.get(Counter::RetriesAttempted),
            shards_resumed: counters.get(Counter::ShardsResumed),
        }
    }
}

/// Intersection-kernel metrics: which representation ran and how hard the
/// word-parallel / galloping kernels were driven. Present whenever the
/// miner supports representation selection (even when the scalar kernels
/// ran, so the choice itself is visible).
#[derive(Clone, Copy, Debug)]
pub struct KernelMetrics {
    /// The representation mined with (`scalar`, `bitset`, `gallop`).
    pub rep: &'static str,
    /// `u64` words ANDed by the bitset kernels.
    pub words_anded: u64,
    /// Exponential/binary-search probes spent by the galloping kernels.
    pub gallop_probes: u64,
    /// Popcount invocations by the bitset kernels.
    pub popcount_calls: u64,
}

impl KernelMetrics {
    /// A kernel section for `rep` with the three kernel counters read out
    /// of a counter registry.
    pub fn from_counters(rep: &'static str, counters: &Counters) -> Self {
        use crate::counters::Counter;
        KernelMetrics {
            rep,
            words_anded: counters.get(Counter::WordsAnded),
            gallop_probes: counters.get(Counter::GallopProbes),
            popcount_calls: counters.get(Counter::PopcountCalls),
        }
    }
}

/// Constraint-engine metrics: the active constraint spec, whether it was
/// pushed into the search loops or post-filtered, and how hard the pushed
/// bounds pruned. Present whenever the run was constrained.
#[derive(Clone, Debug)]
pub struct ConstraintMetrics {
    /// Compact spec string (`include={..} min_size=..`, `none` when
    /// unconstrained).
    pub spec: String,
    /// `true` when constraints were pushed into the miner's search loops,
    /// `false` for the `--no-push` post-filter path.
    pub pushed: bool,
    /// Branches cut / candidates dropped by pushed constraints.
    pub prunes: u64,
}

impl ConstraintMetrics {
    /// A constraint section with the prune counter read out of a counter
    /// registry.
    pub fn from_counters(spec: String, pushed: bool, counters: &Counters) -> Self {
        use crate::counters::Counter;
        ConstraintMetrics {
            spec,
            pushed,
            prunes: counters.get(Counter::ConstraintPrunes),
        }
    }
}

/// Resource telemetry section. Required from `fim-metrics/2` on: every
/// report carries at least the one-shot peak-RSS reading, and runs with
/// the sampler enabled additionally carry the time series and the
/// per-phase duration histograms.
#[derive(Clone, Debug, Default)]
pub struct ResourceMetrics {
    /// Peak resident set size in kB (`VmHWM`; 0 when the probe is
    /// unavailable, e.g. off Linux).
    pub peak_rss_kb: u64,
    /// Resident set size in kB at report time (`VmRSS`; 0 when
    /// unavailable).
    pub rss_kb: u64,
    /// Sampler interval in ms when the background sampler ran.
    pub sample_interval_ms: Option<u64>,
    /// Sampler time series (empty without `--sample`).
    pub samples: Vec<ResourceSample>,
    /// Per-phase log2-µs duration histograms, trimmed to the last
    /// nonzero bucket when rendered.
    pub histograms: Vec<(&'static str, [u64; HIST_BUCKETS])>,
}

impl ResourceMetrics {
    /// A section holding just the current probe readings (the minimum a
    /// v2 document carries). Off Linux both fields read 0.
    pub fn probe_now() -> Self {
        let vm = crate::resource::vm_status().unwrap_or_default();
        ResourceMetrics {
            peak_rss_kb: vm.hwm_kb,
            rss_kb: vm.rss_kb,
            ..ResourceMetrics::default()
        }
    }
}

/// Event-stream section, present when `--trace-events` was on.
#[derive(Clone, Debug, Default)]
pub struct EventsMetrics {
    /// Where the trace stream was written.
    pub path: String,
    /// Events emitted (metadata event included).
    pub emitted: u64,
}

/// Everything one metrics document reports. Optional sections are omitted
/// from the JSON when `None`.
#[derive(Debug)]
pub struct MetricsReport<'a> {
    /// Miner registry name (`ista`, `carpenter-lists`, ...).
    pub miner: &'a str,
    /// Minimum support used.
    pub supp: u32,
    /// Wall-clock mining seconds.
    pub seconds: f64,
    /// Closed sets reported.
    pub sets: u64,
    /// Transactions mined (after reading, before coalescing).
    pub transactions_total: u64,
    /// Distinct weighted transactions after coalescing, when coalescing ran.
    pub transactions_distinct: Option<u64>,
    /// Repository size section.
    pub tree: Option<TreeMetrics>,
    /// Maintenance-pass section.
    pub passes: Option<PassMetrics>,
    /// Parallel-shard section.
    pub shards: Option<ShardMetrics>,
    /// Out-of-core spill section.
    pub spill: Option<SpillMetrics>,
    /// Intersection-kernel section (representation-aware miners).
    pub kernel: Option<KernelMetrics>,
    /// Constraint-engine section (constrained runs).
    pub constraint: Option<ConstraintMetrics>,
    /// Event-stream section (`--trace-events` runs).
    pub events: Option<EventsMetrics>,
    /// Resource telemetry; always rendered (required in v2).
    pub resources: ResourceMetrics,
    /// Hot-loop counters; zero slots are omitted from the JSON.
    pub counters: Counters,
}

impl<'a> MetricsReport<'a> {
    /// A report with only the required fields populated.
    pub fn new(miner: &'a str, supp: u32, seconds: f64, sets: u64, transactions: u64) -> Self {
        MetricsReport {
            miner,
            supp,
            seconds,
            sets,
            transactions_total: transactions,
            transactions_distinct: None,
            tree: None,
            passes: None,
            shards: None,
            spill: None,
            kernel: None,
            constraint: None,
            events: None,
            resources: ResourceMetrics::probe_now(),
            counters: Counters::new(),
        }
    }

    /// Writes the document as pretty-printed JSON followed by a newline.
    pub fn write_json(&self, w: &mut dyn Write) -> io::Result<()> {
        writeln!(w, "{{")?;
        writeln!(w, "  \"schema\": \"{METRICS_SCHEMA}\",")?;
        writeln!(w, "  \"miner\": \"{}\",", escape(self.miner))?;
        writeln!(w, "  \"supp\": {},", self.supp)?;
        writeln!(w, "  \"seconds\": {:.6},", self.seconds)?;
        writeln!(w, "  \"sets\": {},", self.sets)?;
        write!(
            w,
            "  \"transactions\": {{\"total\": {}",
            self.transactions_total
        )?;
        if let Some(d) = self.transactions_distinct {
            write!(w, ", \"distinct\": {d}")?;
        }
        writeln!(w, "}},")?;
        if let Some(t) = &self.tree {
            writeln!(w, "  \"tree\": {{")?;
            writeln!(w, "    \"peak_nodes\": {},", t.peak_nodes)?;
            writeln!(w, "    \"live_nodes\": {},", t.live_nodes)?;
            writeln!(w, "    \"total_slots\": {},", t.total_slots)?;
            writeln!(w, "    \"free_slots\": {},", t.free_slots)?;
            writeln!(w, "    \"seg_items\": {},", t.seg_items)?;
            writeln!(w, "    \"seg_bytes\": {},", t.seg_bytes)?;
            writeln!(w, "    \"avg_seg_len\": {:.3},", t.avg_seg_len())?;
            writeln!(w, "    \"approx_bytes\": {}", t.approx_bytes)?;
            writeln!(w, "  }},")?;
        }
        if let Some(p) = &self.passes {
            writeln!(
                w,
                "  \"passes\": {{\"prune_passes\": {}, \"compactions\": {}}},",
                p.prune_passes, p.compactions
            )?;
        }
        if let Some(s) = &self.shards {
            writeln!(
                w,
                "  \"shards\": {{\"total\": {}, \"recovered\": {}}},",
                s.shards, s.recovered
            )?;
        }
        if let Some(s) = &self.spill {
            writeln!(
                w,
                "  \"spill\": {{\"shards\": {}, \"spill_bytes\": {}, \"merge_passes\": {}, \
                 \"faults_injected\": {}, \"retries_attempted\": {}, \"shards_resumed\": {}}},",
                s.shards,
                s.spill_bytes,
                s.merge_passes,
                s.faults_injected,
                s.retries_attempted,
                s.shards_resumed
            )?;
        }
        if let Some(k) = &self.kernel {
            writeln!(
                w,
                "  \"kernel\": {{\"rep\": \"{}\", \"words_anded\": {}, \"gallop_probes\": {}, \"popcount_calls\": {}}},",
                escape(k.rep), k.words_anded, k.gallop_probes, k.popcount_calls
            )?;
        }
        if let Some(c) = &self.constraint {
            writeln!(
                w,
                "  \"constraint\": {{\"spec\": \"{}\", \"pushed\": {}, \"prunes\": {}}},",
                escape(&c.spec),
                c.pushed,
                c.prunes
            )?;
        }
        if let Some(e) = &self.events {
            writeln!(
                w,
                "  \"events\": {{\"path\": \"{}\", \"emitted\": {}}},",
                escape(&e.path),
                e.emitted
            )?;
        }
        writeln!(w, "  \"resources\": {{")?;
        writeln!(w, "    \"peak_rss_kb\": {},", self.resources.peak_rss_kb)?;
        write!(w, "    \"rss_kb\": {}", self.resources.rss_kb)?;
        if let Some(ms) = self.resources.sample_interval_ms {
            write!(w, ",\n    \"sample_interval_ms\": {ms}")?;
        }
        if !self.resources.samples.is_empty() {
            write!(w, ",\n    \"samples\": [")?;
            for (i, s) in self.resources.samples.iter().enumerate() {
                if i > 0 {
                    write!(w, ",")?;
                }
                write!(
                    w,
                    "\n      {{\"at_ms\": {}, \"rss_kb\": {}, \"hwm_kb\": {}, \"nodes\": {}, \
                     \"arena_bytes\": {}, \"spill_bytes\": {}}}",
                    s.at_ms, s.rss_kb, s.hwm_kb, s.nodes, s.arena_bytes, s.spill_bytes
                )?;
            }
            write!(w, "\n    ]")?;
        }
        if !self.resources.histograms.is_empty() {
            write!(w, ",\n    \"phase_hist_log2_us\": {{")?;
            for (i, (name, buckets)) in self.resources.histograms.iter().enumerate() {
                if i > 0 {
                    write!(w, ", ")?;
                }
                let len = buckets.iter().rposition(|&b| b > 0).map_or(0, |p| p + 1);
                write!(w, "\"{}\": [", escape(name))?;
                for (j, b) in buckets[..len].iter().enumerate() {
                    if j > 0 {
                        write!(w, ", ")?;
                    }
                    write!(w, "{b}")?;
                }
                write!(w, "]")?;
            }
            write!(w, "}}")?;
        }
        writeln!(w, "\n  }},")?;
        write!(w, "  \"counters\": {{")?;
        let mut first = true;
        for (name, value) in self.counters.iter_nonzero() {
            if !first {
                write!(w, ", ")?;
            }
            first = false;
            write!(w, "\"{name}\": {value}")?;
        }
        writeln!(w, "}}")?;
        writeln!(w, "}}")
    }

    /// The document as a `String` (same bytes as [`write_json`](Self::write_json)).
    pub fn to_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("metrics JSON is UTF-8")
    }
}

pub(crate) fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Checks a metrics document against the pinned schema: the `schema` field
/// must equal [`METRICS_SCHEMA`] (or [`METRICS_SCHEMA_V1`], the
/// compatibility tag) and every key in [`REQUIRED_METRICS_KEYS`] must be
/// present — v1 documents are exempt from `resources`, which v2
/// introduced. Returns a description of the first violation. This is a
/// structural lint, not a JSON parser — it matches the `"key":` spellings
/// [`MetricsReport::write_json`] emits.
pub fn validate_metrics_json(doc: &str) -> Result<(), String> {
    let trimmed = doc.trim_start();
    if !trimmed.starts_with('{') {
        return Err("document does not start with '{'".into());
    }
    let v2 = doc.contains(&format!("\"schema\": \"{METRICS_SCHEMA}\""));
    let v1 = doc.contains(&format!("\"schema\": \"{METRICS_SCHEMA_V1}\""));
    if !v2 && !v1 {
        return Err(format!(
            "missing or wrong schema tag (want {METRICS_SCHEMA} or {METRICS_SCHEMA_V1})"
        ));
    }
    for key in REQUIRED_METRICS_KEYS {
        if key == "resources" && v1 {
            continue;
        }
        if !doc.contains(&format!("\"{key}\":")) {
            return Err(format!("missing required key \"{key}\""));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;

    fn sample() -> MetricsReport<'static> {
        let mut r = MetricsReport::new("ista", 2, 1.25, 345, 1000);
        r.transactions_distinct = Some(800);
        r.tree = Some(TreeMetrics {
            peak_nodes: 53406,
            live_nodes: 1200,
            total_slots: 1500,
            free_slots: 300,
            seg_items: 4800,
            seg_bytes: 19200,
            approx_bytes: 60000,
        });
        r.passes = Some(PassMetrics {
            prune_passes: 3,
            compactions: 1,
        });
        r.kernel = Some(KernelMetrics {
            rep: "bitset",
            words_anded: 777,
            gallop_probes: 0,
            popcount_calls: 555,
        });
        r.counters.add(Counter::SegScans, 123456);
        r.counters.add(Counter::IsectEarlyExits, 4567);
        r
    }

    #[test]
    fn schema_pins_version_and_required_keys() {
        let doc = sample().to_json();
        assert!(doc.contains("\"schema\": \"fim-metrics/2\""));
        for key in REQUIRED_METRICS_KEYS {
            assert!(
                doc.contains(&format!("\"{key}\":")),
                "missing {key}:\n{doc}"
            );
        }
        validate_metrics_json(&doc).expect("sample validates");
    }

    #[test]
    fn v1_documents_still_validate_without_resources() {
        let v1 = "{\n  \"schema\": \"fim-metrics/1\",\n  \"miner\": \"ista\",\n  \"supp\": 2,\n  \
                  \"seconds\": 1.0,\n  \"sets\": 5,\n  \"transactions\": {\"total\": 9},\n  \
                  \"counters\": {}\n}";
        validate_metrics_json(v1).expect("v1 compatibility reader");
        // The same document under the v2 tag must be rejected: v2 made
        // resources mandatory.
        let fake_v2 = v1.replace("fim-metrics/1", "fim-metrics/2");
        let err = validate_metrics_json(&fake_v2).unwrap_err();
        assert!(err.contains("resources"), "{err}");
    }

    #[test]
    fn resources_section_renders_series_and_histograms() {
        let mut r = MetricsReport::new("ista", 2, 0.5, 10, 60);
        r.resources.peak_rss_kb = 4096;
        r.resources.rss_kb = 2048;
        r.resources.sample_interval_ms = Some(100);
        r.resources.samples = vec![
            ResourceSample {
                at_ms: 0,
                rss_kb: 2000,
                hwm_kb: 2000,
                nodes: 10,
                arena_bytes: 640,
                spill_bytes: 0,
            },
            ResourceSample {
                at_ms: 100,
                rss_kb: 2048,
                hwm_kb: 4096,
                nodes: 20,
                arena_bytes: 1280,
                spill_bytes: 512,
            },
        ];
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[0] = 1;
        buckets[3] = 2;
        r.resources.histograms = vec![("mine", buckets)];
        let doc = r.to_json();
        validate_metrics_json(&doc).expect("resource report validates");
        assert!(doc.contains("\"peak_rss_kb\": 4096"));
        assert!(doc.contains("\"sample_interval_ms\": 100"));
        assert!(doc.contains("\"spill_bytes\": 512"));
        assert!(
            doc.contains("\"phase_hist_log2_us\": {\"mine\": [1, 0, 0, 2]}"),
            "buckets trim to the last nonzero:\n{doc}"
        );
        // The whole document must be well-formed JSON, not just greppable.
        crate::json::parse_json(&doc).expect("metrics JSON parses");
    }

    #[test]
    fn optional_sections_come_and_go() {
        let bare = MetricsReport::new("carpenter-lists", 3, 0.5, 10, 60).to_json();
        validate_metrics_json(&bare).expect("bare report validates");
        assert!(!bare.contains("\"tree\""));
        assert!(!bare.contains("\"passes\""));
        assert!(!bare.contains("\"shards\""));
        assert!(!bare.contains("\"spill\""));
        assert!(!bare.contains("\"kernel\""));
        assert!(!bare.contains("\"constraint\""));
        assert!(!bare.contains("\"events\""));
        assert!(
            bare.contains("\"resources\""),
            "resources is always present"
        );
        assert!(bare.contains("\"counters\": {}"));
        let full = sample().to_json();
        assert!(full.contains("\"tree\""));
        assert!(full.contains("\"avg_seg_len\": 4.000"));
        assert!(full.contains("\"seg_scans\": 123456"));
        assert!(full.contains("\"distinct\": 800"));
        assert!(full.contains(
            "\"kernel\": {\"rep\": \"bitset\", \"words_anded\": 777, \
             \"gallop_probes\": 0, \"popcount_calls\": 555}"
        ));
    }

    #[test]
    fn spill_section_reads_counters_and_renders() {
        let mut c = Counters::new();
        c.add(Counter::ShardsSpilled, 6);
        c.add(Counter::SpillBytes, 123_456);
        c.add(Counter::MergePasses, 5);
        c.add(Counter::FaultsInjected, 2);
        c.add(Counter::RetriesAttempted, 3);
        c.add(Counter::ShardsResumed, 4);
        let s = SpillMetrics::from_counters(&c);
        assert_eq!(s.shards, 6);
        assert_eq!(s.spill_bytes, 123_456);
        assert_eq!(s.merge_passes, 5);
        assert_eq!(s.faults_injected, 2);
        assert_eq!(s.retries_attempted, 3);
        assert_eq!(s.shards_resumed, 4);
        let mut r = MetricsReport::new("ista-oocore", 2, 0.5, 10, 60);
        r.spill = Some(s);
        let doc = r.to_json();
        validate_metrics_json(&doc).expect("spill report validates");
        assert!(doc.contains(
            "\"spill\": {\"shards\": 6, \"spill_bytes\": 123456, \"merge_passes\": 5, \
             \"faults_injected\": 2, \"retries_attempted\": 3, \"shards_resumed\": 4}"
        ));
    }

    #[test]
    fn constraint_section_reads_counters_and_renders() {
        let mut c = Counters::new();
        c.add(Counter::ConstraintPrunes, 42);
        let s = ConstraintMetrics::from_counters("min_size=2 max_size=4".into(), true, &c);
        assert_eq!(s.prunes, 42);
        assert!(s.pushed);
        let mut r = MetricsReport::new("eclat", 2, 0.5, 10, 60);
        r.constraint = Some(s);
        let doc = r.to_json();
        validate_metrics_json(&doc).expect("constraint report validates");
        assert!(doc.contains(
            "\"constraint\": {\"spec\": \"min_size=2 max_size=4\", \"pushed\": true, \"prunes\": 42}"
        ));
    }

    #[test]
    fn kernel_section_reads_counters() {
        let mut c = Counters::new();
        c.add(Counter::WordsAnded, 10);
        c.add(Counter::PopcountCalls, 4);
        let k = KernelMetrics::from_counters("gallop", &c);
        assert_eq!(k.rep, "gallop");
        assert_eq!(k.words_anded, 10);
        assert_eq!(k.gallop_probes, 0);
        assert_eq!(k.popcount_calls, 4);
    }

    #[test]
    fn validator_rejects_violations() {
        assert!(validate_metrics_json("not json").is_err());
        assert!(validate_metrics_json("{\"schema\": \"fim-metrics/0\"}").is_err());
        let doc = sample().to_json();
        let no_sets = doc.replace("\"sets\":", "\"fsets\":");
        let err = validate_metrics_json(&no_sets).unwrap_err();
        assert!(err.contains("sets"), "{err}");
    }

    #[test]
    fn miner_name_is_escaped() {
        let r = MetricsReport::new("we\"ird\\name", 1, 0.0, 0, 0);
        let doc = r.to_json();
        assert!(doc.contains("we\\\"ird\\\\name"));
    }
}

//! Hierarchical phase spans with a collapsed-stack exporter.
//!
//! Spans aggregate by path: entering `"prune"` twice under `"mine"`
//! accumulates into one `mine;prune` node with `count == 2`, so the cost of
//! a span is two monotonic clock reads per enter/exit pair regardless of
//! how often the phase repeats. Per-transaction work is therefore recorded
//! as one span around the whole loop (its `count` carries the iteration
//! count), not one span per transaction.

use std::io::{self, Write};
use std::time::{Duration, Instant};

/// Aggregating recorder for hierarchical phase spans.
///
/// `enter`/`exit` must nest like brackets. Timing uses [`Instant`], so
/// spans are monotonic even if the wall clock steps.
#[derive(Debug)]
pub struct SpanRecorder {
    /// Node 0 is a sentinel root that never accumulates time.
    names: Vec<&'static str>,
    parents: Vec<usize>,
    children: Vec<Vec<usize>>,
    totals: Vec<Duration>,
    counts: Vec<u64>,
    /// Open spans: `(node index, enter time)`.
    stack: Vec<(usize, Instant)>,
}

impl Default for SpanRecorder {
    fn default() -> Self {
        SpanRecorder::new()
    }
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SpanRecorder {
            names: vec![""],
            parents: vec![usize::MAX],
            children: vec![Vec::new()],
            totals: vec![Duration::ZERO],
            counts: vec![0],
            stack: Vec::new(),
        }
    }

    /// Opens a span named `name` under the currently open span (or at the
    /// top level). Re-entering the same name under the same parent
    /// accumulates into the existing node.
    pub fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().map_or(0, |&(n, _)| n);
        let node = match self.children[parent]
            .iter()
            .copied()
            .find(|&c| self.names[c] == name)
        {
            Some(c) => c,
            None => {
                let c = self.names.len();
                self.names.push(name);
                self.parents.push(parent);
                self.children.push(Vec::new());
                self.totals.push(Duration::ZERO);
                self.counts.push(0);
                self.children[parent].push(c);
                c
            }
        };
        self.stack.push((node, Instant::now()));
    }

    /// Closes the most recently opened span. A stray `exit` with nothing
    /// open is ignored (debug builds assert).
    pub fn exit(&mut self) {
        debug_assert!(!self.stack.is_empty(), "span exit with no open span");
        if let Some((node, start)) = self.stack.pop() {
            self.totals[node] += start.elapsed();
            self.counts[node] += 1;
        }
    }

    /// Number of distinct span paths recorded.
    pub fn num_spans(&self) -> usize {
        self.names.len() - 1
    }

    /// Total accumulated time of the top-level spans.
    pub fn total(&self) -> Duration {
        self.children[0].iter().map(|&c| self.totals[c]).sum()
    }

    /// `(path, total, count)` rows in recording order, paths joined with
    /// `;` like the collapsed output.
    pub fn rows(&self) -> Vec<(String, Duration, u64)> {
        (1..self.names.len())
            .map(|n| (self.path_of(n), self.totals[n], self.counts[n]))
            .collect()
    }

    /// `(path, self_time)` rows — total minus child totals, the same
    /// quantity [`write_collapsed`](Self::write_collapsed) emits — for
    /// consumers that want durations rather than formatted lines (the run
    /// ledger's per-phase column). Zero-self-time nodes are kept so the
    /// phase list is stable across runs.
    pub fn self_rows(&self) -> Vec<(String, Duration)> {
        (1..self.names.len())
            .map(|node| {
                let child_total: Duration =
                    self.children[node].iter().map(|&c| self.totals[c]).sum();
                (
                    self.path_of(node),
                    self.totals[node].saturating_sub(child_total),
                )
            })
            .collect()
    }

    fn path_of(&self, mut node: usize) -> String {
        let mut parts = Vec::new();
        while node != 0 {
            parts.push(self.names[node]);
            node = self.parents[node];
        }
        parts.reverse();
        parts.join(";")
    }

    /// Writes the spans in collapsed-stack format: one `path;to;span N`
    /// line per node, `N` the node's *self* time in microseconds (total
    /// minus child totals), which is what `flamegraph.pl` and inferno sum
    /// back up the stack. Zero-self-time nodes are skipped.
    pub fn write_collapsed(&self, w: &mut dyn Write) -> io::Result<()> {
        for node in 1..self.names.len() {
            let child_total: Duration = self.children[node].iter().map(|&c| self.totals[c]).sum();
            let self_time = self.totals[node].saturating_sub(child_total);
            let micros = self_time.as_micros();
            if micros > 0 {
                writeln!(w, "{} {}", self.path_of(node), micros)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_aggregation() {
        let mut r = SpanRecorder::new();
        r.enter("mine");
        r.enter("prune");
        r.exit();
        r.enter("prune");
        r.exit();
        r.enter("compact");
        r.exit();
        r.exit();
        let rows = r.rows();
        assert_eq!(r.num_spans(), 3);
        assert_eq!(rows[0].0, "mine");
        assert_eq!(rows[0].2, 1);
        assert_eq!(rows[1].0, "mine;prune");
        assert_eq!(rows[1].2, 2, "re-entered span aggregates");
        assert_eq!(rows[2].0, "mine;compact");
        assert!(rows[0].1 >= rows[1].1 + rows[2].1, "parent covers children");
    }

    #[test]
    fn same_name_under_different_parents_is_distinct() {
        let mut r = SpanRecorder::new();
        r.enter("a");
        r.enter("x");
        r.exit();
        r.exit();
        r.enter("b");
        r.enter("x");
        r.exit();
        r.exit();
        let paths: Vec<_> = r.rows().into_iter().map(|(p, _, _)| p).collect();
        assert_eq!(paths, vec!["a", "a;x", "b", "b;x"]);
    }

    #[test]
    fn collapsed_output_is_parseable() {
        let mut r = SpanRecorder::new();
        r.enter("mine");
        std::thread::sleep(Duration::from_millis(2));
        r.enter("report");
        std::thread::sleep(Duration::from_millis(2));
        r.exit();
        r.exit();
        let mut buf = Vec::new();
        r.write_collapsed(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            // collapsed-stack grammar: frames joined by ';', space, integer
            let (stack, value) = line.rsplit_once(' ').expect("space separator");
            assert!(!stack.is_empty());
            assert!(stack.split(';').all(|f| !f.is_empty()));
            value.parse::<u64>().expect("integer sample value");
        }
        assert!(text.lines().any(|l| l.starts_with("mine;report ")));
    }

    #[test]
    fn stray_exit_is_ignored_in_release() {
        let mut r = SpanRecorder::new();
        r.enter("only");
        r.exit();
        // no open span: must not panic in release; rows unchanged
        if cfg!(not(debug_assertions)) {
            r.exit();
        }
        assert_eq!(r.num_spans(), 1);
    }
}

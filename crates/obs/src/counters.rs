//! Fixed counter registry for hot-loop accounting.
//!
//! One `u64` slot per [`Counter`], indexed by a `const` discriminant so an
//! increment compiles to a single add at a fixed offset. The array lives
//! inside whatever structure the hot loop already mutates (`SegArena`, the
//! Carpenter search state, the eclat context), not behind a global or an
//! atomic, so incrementing touches memory that is already in cache.

/// Names for every counter slot in the registry.
///
/// The slots cover all miners; each miner only drives its own subset and
/// reporting drops zero slots, so unrelated entries cost nothing but their
/// 8 bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// IsTa: item segments scanned by `intersect_segment` (plain layout:
    /// nodes scanned, i.e. segments of length 1).
    SegScans = 0,
    /// IsTa: `intersect_segment` scans that stopped at the `imin`
    /// early-exit bound instead of draining the segment.
    IsectEarlyExits = 1,
    /// IsTa (Patricia): segment splits.
    Splits = 2,
    /// IsTa: node allocations, both layouts.
    NodeAllocs = 3,
    /// Carpenter lists: hopeless tid-list probes skipped by the
    /// early-stop upper bound (Nguyen 2019).
    TidEarlyStops = 4,
    /// Carpenter: perfect-extension absorptions (items collapsed into the
    /// current set without branching).
    AbsorptionHits = 5,
    /// Carpenter: repository `contains` probes (the prune check).
    RepoLookups = 6,
    /// Carpenter: repository probes that hit, pruning the branch.
    RepoHits = 7,
    /// Carpenter/eclat: search-tree nodes entered.
    SearchSteps = 8,
    /// Carpenter: items dropped by item elimination (matched the current
    /// tid set but can no longer reach `minsupp`).
    Eliminations = 9,
    /// Eclat: tid-list intersections materialised.
    TidIntersections = 10,
    /// Eclat: perfect extensions collapsed into the prefix.
    PerfectExtensions = 11,
    /// Bitset kernels: `u64` words ANDed (in-place or fused with popcount).
    WordsAnded = 12,
    /// Gallop kernels: exponential/binary-search probes spent advancing
    /// cursors (compare against the elements a linear scan would touch).
    GallopProbes = 13,
    /// Bitset kernels: popcount invocations (support counts and surviving
    /// word counts).
    PopcountCalls = 14,
    /// Out-of-core pipeline: shard trees spilled to disk as snapshots.
    ShardsSpilled = 15,
    /// Out-of-core pipeline: bytes written across all spilled snapshots
    /// (shard spills and intermediate merge re-spills).
    SpillBytes = 16,
    /// Out-of-core pipeline: pairwise merge-reduce passes over spilled
    /// snapshots (each pass loads two trees and re-spills or reports one).
    MergePasses = 17,
    /// Fault layer: injected faults that fired during the run
    /// (`fim_core::fault`).
    FaultsInjected = 18,
    /// Fault layer: bounded-retry re-attempts after transient I/O errors.
    RetriesAttempted = 19,
    /// Out-of-core resume: completed spills adopted from a prior run's
    /// manifest instead of being re-mined.
    ShardsResumed = 20,
    /// Constraint engine: search branches cut or candidate sets dropped by
    /// a pushed constraint (include/size/area bounds) before the
    /// unconstrained path would have paid for them.
    ConstraintPrunes = 21,
    /// LCM (CbO): closure computations avoided — canonicity rejections
    /// that exited before computing a closure, plus prefix items reused
    /// from the parent closure instead of being re-derived.
    ClosureReuses = 22,
}

/// Number of counter slots.
pub const NUM_COUNTERS: usize = 23;

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::SegScans,
        Counter::IsectEarlyExits,
        Counter::Splits,
        Counter::NodeAllocs,
        Counter::TidEarlyStops,
        Counter::AbsorptionHits,
        Counter::RepoLookups,
        Counter::RepoHits,
        Counter::SearchSteps,
        Counter::Eliminations,
        Counter::TidIntersections,
        Counter::PerfectExtensions,
        Counter::WordsAnded,
        Counter::GallopProbes,
        Counter::PopcountCalls,
        Counter::ShardsSpilled,
        Counter::SpillBytes,
        Counter::MergePasses,
        Counter::FaultsInjected,
        Counter::RetriesAttempted,
        Counter::ShardsResumed,
        Counter::ConstraintPrunes,
        Counter::ClosureReuses,
    ];

    /// The stable snake_case name used in metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SegScans => "seg_scans",
            Counter::IsectEarlyExits => "isect_early_exits",
            Counter::Splits => "splits",
            Counter::NodeAllocs => "node_allocs",
            Counter::TidEarlyStops => "tid_early_stops",
            Counter::AbsorptionHits => "absorption_hits",
            Counter::RepoLookups => "repo_lookups",
            Counter::RepoHits => "repo_hits",
            Counter::SearchSteps => "search_steps",
            Counter::Eliminations => "eliminations",
            Counter::TidIntersections => "tid_intersections",
            Counter::PerfectExtensions => "perfect_extensions",
            Counter::WordsAnded => "words_anded",
            Counter::GallopProbes => "gallop_probes",
            Counter::PopcountCalls => "popcount_calls",
            Counter::ShardsSpilled => "shards_spilled",
            Counter::SpillBytes => "spill_bytes",
            Counter::MergePasses => "merge_passes",
            Counter::FaultsInjected => "faults_injected",
            Counter::RetriesAttempted => "retries_attempted",
            Counter::ShardsResumed => "shards_resumed",
            Counter::ConstraintPrunes => "constraint_prunes",
            Counter::ClosureReuses => "closure_reuses",
        }
    }
}

/// The counter registry: one `u64` per [`Counter`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    vals: [u64; NUM_COUNTERS],
}

impl Counters {
    /// All-zero registry.
    pub const fn new() -> Self {
        Counters {
            vals: [0; NUM_COUNTERS],
        }
    }

    /// Adds `n` to a slot. The hot-loop entry point: compiles to one add
    /// at a constant offset.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Increments a slot by one.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.vals[c as usize] += 1;
    }

    /// Reads a slot.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Adds every slot of `other` into `self` (shard/merge aggregation).
    pub fn merge(&mut self, other: &Counters) {
        for (a, b) in self.vals.iter_mut().zip(other.vals.iter()) {
            *a += *b;
        }
    }

    /// Whether every slot is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// `(name, value)` pairs for the slots that fired.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL
            .iter()
            .filter(|&&c| self.get(c) != 0)
            .map(|&c| (c.name(), self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = Counters::new();
        assert!(a.is_zero());
        a.add(Counter::SegScans, 5);
        a.bump(Counter::SegScans);
        a.bump(Counter::Splits);
        assert_eq!(a.get(Counter::SegScans), 6);
        assert_eq!(a.get(Counter::Splits), 1);
        assert_eq!(a.get(Counter::NodeAllocs), 0);
        let mut b = Counters::new();
        b.add(Counter::SegScans, 4);
        b.add(Counter::RepoHits, 2);
        b.merge(&a);
        assert_eq!(b.get(Counter::SegScans), 10);
        assert_eq!(b.get(Counter::Splits), 1);
        assert_eq!(b.get(Counter::RepoHits), 2);
        assert!(!b.is_zero());
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), NUM_COUNTERS, "duplicate counter name");
        assert_eq!(names[0], "seg_scans");
        assert_eq!(names[NUM_COUNTERS - 1], "closure_reuses");
    }

    #[test]
    fn iter_nonzero_skips_zeros() {
        let mut c = Counters::new();
        assert_eq!(c.iter_nonzero().count(), 0);
        c.add(Counter::TidEarlyStops, 3);
        c.add(Counter::SearchSteps, 7);
        let got: Vec<_> = c.iter_nonzero().collect();
        assert_eq!(got, vec![("tid_early_stops", 3), ("search_steps", 7)]);
    }
}

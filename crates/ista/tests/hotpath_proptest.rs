//! Property tests for the single-core hot path: weighted transaction
//! coalescing and DFS arena compaction.
//!
//! Coalescing rests on the support identity supp_T(S) = Σ w_t over the
//! distinct transactions t ⊇ S, so mining a database with duplicated rows
//! must equal mining its coalesced `(items, weight)` form. Compaction
//! relocates live arena nodes into depth-first order, so a compacted tree
//! must report exactly the same closed sets as the fragmented original.
//! Both are pinned against the brute-force reference across minimum-support
//! sweeps and every pruning-placement policy.

use fim_core::reference::mine_reference;
use fim_core::{coalesce, ClosedMiner, Item, MiningResult, RecodedDatabase};
use fim_ista::{IstaConfig, IstaMiner, PrefixTree, PrunePolicy};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a database whose rows carry explicit multiplicities 1..=3, so
/// coalescing always has duplicates to merge.
fn dup_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=8).prop_flat_map(|num_items| {
        vec(
            (vec(0..num_items, 0..=num_items as usize), 1usize..=3),
            0..8,
        )
        .prop_map(move |rows| {
            let mut txs = Vec::new();
            for (t, mult) in rows {
                for _ in 0..mult {
                    txs.push(t.clone());
                }
            }
            RecodedDatabase::from_dense(txs, num_items)
        })
    })
}

/// Strategy: every pruning-placement policy the miner supports.
fn any_policy() -> impl Strategy<Value = PrunePolicy> {
    prop_oneof![
        Just(PrunePolicy::Never),
        Just(PrunePolicy::EveryN(1)),
        Just(PrunePolicy::EveryN(3)),
        Just(PrunePolicy::Growth(1.2)),
        Just(PrunePolicy::Growth(2.0)),
    ]
}

/// Canonical (items, support) view of a mining result, for comparison.
fn canon(r: &MiningResult) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = r
        .sets
        .iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

/// Canonical view of a tree's report.
fn canon_tree(t: &PrefixTree, minsupp: u32) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = t
        .report(minsupp)
        .into_iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every (coalesce, compact) toggle combination must reproduce the
    /// reference on duplicated-row databases, under every prune policy.
    #[test]
    fn toggle_grid_matches_reference_on_duplicated_rows(
        db in dup_db(),
        minsupp in 1u32..6,
        policy in any_policy(),
    ) {
        let want = mine_reference(&db, minsupp).canonicalized();
        for coalesce in [false, true] {
            for compact in [false, true] {
                let got = IstaMiner::with_config(IstaConfig { policy, coalesce, compact, ..IstaConfig::default() })
                    .mine(&db, minsupp)
                    .canonicalized();
                prop_assert_eq!(
                    &got, &want,
                    "coalesce = {}, compact = {}, policy = {:?}",
                    coalesce, compact, policy
                );
            }
        }
    }

    /// The tree-level identity behind coalescing: one weighted insertion
    /// per distinct row builds a tree reporting exactly what per-row
    /// repeated insertion reports.
    #[test]
    fn weighted_insertion_equals_repeated_insertion(
        db in dup_db(),
        minsupp in 1u32..5,
    ) {
        let mut repeated = PrefixTree::new(db.num_items());
        for t in db.transactions() {
            repeated.add_transaction(t);
        }
        let mut weighted = PrefixTree::new(db.num_items());
        for (t, w) in coalesce(db.transactions()) {
            weighted.add_transaction_weighted(t, w);
        }
        weighted.validate_invariants();
        prop_assert_eq!(canon_tree(&weighted, minsupp), canon_tree(&repeated, minsupp));
    }

    /// Coalescing preserves total weight and yields strictly deduplicated,
    /// size-then-lex-ordered rows.
    #[test]
    fn coalesce_weights_sum_to_row_count(db in dup_db()) {
        let rows = coalesce(db.transactions());
        let total: u32 = rows.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(total as usize, db.num_transactions());
        for pair in rows.windows(2) {
            prop_assert_ne!(pair[0].0, pair[1].0, "adjacent duplicates must merge");
        }
    }

    /// Compaction under pruning churn: interleave insertion, exact-bound
    /// pruning, and compaction at an arbitrary cadence — the tree must
    /// stay internally consistent and report the reference result, and a
    /// final compact must not change the report.
    #[test]
    fn compact_preserves_reports_under_churn(
        db in dup_db(),
        minsupp in 1u32..5,
        cadence in 1usize..4,
    ) {
        let mut remaining = db.item_supports().to_vec();
        let mut tree = PrefixTree::new(db.num_items());
        for (i, t) in db.transactions().iter().enumerate() {
            for &item in t.as_ref() {
                remaining[item as usize] -= 1;
            }
            tree.add_transaction(t);
            if i % cadence == 0 {
                tree.prune(&remaining, minsupp);
                if tree.compact_if_fragmented() {
                    tree.validate_invariants();
                }
            }
        }
        let before = canon_tree(&tree, minsupp);
        tree.compact();
        tree.validate_invariants();
        prop_assert_eq!(canon_tree(&tree, minsupp), before.clone());
        prop_assert_eq!(before, canon(&mine_reference(&db, minsupp)));
    }
}

#[test]
fn coalescing_handles_empty_and_all_empty_transactions() {
    // empty databases and item-less rows must survive every toggle
    for db in [
        RecodedDatabase::from_dense(vec![], 4),
        RecodedDatabase::from_dense(vec![vec![], vec![], vec![]], 4),
    ] {
        for coalesce in [false, true] {
            let got = IstaMiner::with_config(IstaConfig {
                coalesce,
                ..IstaConfig::default()
            })
            .mine(&db, 1);
            assert!(got.sets.is_empty(), "coalesce = {coalesce}");
        }
    }
}

#[test]
fn compact_is_idempotent() {
    let db = RecodedDatabase::from_dense(
        vec![vec![0, 1, 2], vec![0, 2], vec![1, 2], vec![0, 1, 2]],
        3,
    );
    let mut tree = PrefixTree::new(3);
    for t in db.transactions() {
        tree.add_transaction(t);
    }
    tree.prune(&[0, 0, 0], 2);
    tree.compact();
    let once = canon_tree(&tree, 1);
    let stats = tree.memory_stats();
    assert_eq!(stats.free_slots, 0, "compaction must drop the free list");
    tree.compact();
    assert_eq!(canon_tree(&tree, 1), once);
    assert_eq!(tree.memory_stats(), stats);
}

//! Property tests for the observability layer: instrumentation must be a
//! pure observer. Mining with the full bundle enabled — spans, a
//! heartbeat, the flight-recorder trace, the background resource sampler,
//! phase histograms, and counters — has to produce exactly the sets that
//! an unobserved run produces, across the tree-layout × prune-policy ×
//! minimum-support grid; and the counters it reports must describe work
//! that actually happened (allocations at least as numerous as live
//! nodes, scans at least as numerous as insertions).

use fim_core::{ClosedMiner, Item, MiningResult, RecodedDatabase};
use fim_ista::{IstaConfig, IstaMiner, PrunePolicy};
use fim_obs::{
    Counter, Obs, PhaseHistograms, ProgressEmitter, ProgressStyle, ResourceGauges, ResourceSampler,
    SpanRecorder, TraceWriter,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Strategy: a database of up to 12 transactions over up to 8 items.
fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=8).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..12)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, num_items))
    })
}

fn any_policy() -> impl Strategy<Value = PrunePolicy> {
    prop_oneof![
        Just(PrunePolicy::Never),
        Just(PrunePolicy::EveryN(1)),
        Just(PrunePolicy::EveryN(2)),
        Just(PrunePolicy::Growth(1.5)),
    ]
}

/// Canonical (items, support) view of a mining result, for comparison.
fn canon(r: &MiningResult) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = r
        .sets
        .iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

/// A shared in-memory sink for the heartbeat writer.
#[derive(Clone, Default)]
struct Sink(Arc<Mutex<Vec<u8>>>);

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// An [`Obs`] with every facility turned on: heartbeat into `sink` at a
/// zero interval so every strided check emits, the trace stream into
/// `trace_sink`, and the background sampler polling at 1 ms.
fn full_obs(sink: &Sink, trace_sink: &Sink) -> Obs {
    let mut obs = Obs::new();
    obs.spans = Some(SpanRecorder::new());
    obs.progress = Some(ProgressEmitter::with_writer(
        Duration::ZERO,
        ProgressStyle::JsonLines,
        Box::new(sink.clone()),
    ));
    obs.trace = Some(TraceWriter::new(Box::new(trace_sink.clone())));
    let gauges = Arc::new(ResourceGauges::default());
    obs.sampler = Some(ResourceSampler::start(
        Duration::from_millis(1),
        Arc::clone(&gauges),
        None,
    ));
    obs.gauges = Some(gauges);
    obs.hist = Some(PhaseHistograms::new());
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observed and unobserved runs report identical closed sets on both
    /// tree layouts, under every prune policy, at every minimum support.
    #[test]
    fn observed_mining_is_byte_identical(
        db in small_db(),
        policy in any_policy(),
        minsupp in 1u32..=4,
        patricia in any::<bool>(),
    ) {
        let config = IstaConfig { policy, patricia, ..IstaConfig::default() };
        let miner = IstaMiner::with_config(config);
        let plain = miner.mine(&db, minsupp).canonicalized();

        let sink = Sink::default();
        let trace_sink = Sink::default();
        let mut obs = full_obs(&sink, &trace_sink);
        let (observed, stats) = miner.mine_with_obs(&db, minsupp, &mut obs);
        prop_assert_eq!(canon(&plain), canon(&observed.canonicalized()));

        // render both to text as the CLI would: byte-identical output
        let fmt = |r: &MiningResult| -> String {
            canon(r).iter().map(|(items, supp)| {
                let names: Vec<String> = items.iter().map(u32::to_string).collect();
                format!("{} ({supp})\n", names.join(" "))
            }).collect()
        };
        prop_assert_eq!(fmt(&plain), fmt(&observed));

        // drain the full bundle: the sampler stops cleanly and the trace
        // closes with balanced begin/end events
        let resources = obs.take_resources();
        prop_assert!(resources.peak_rss_kb > 0, "RSS probe returned nothing");
        let emitted = obs.finish_trace().expect("trace was on");
        let text = String::from_utf8(trace_sink.0.lock().unwrap().clone()).unwrap();
        let events = fim_obs::read_trace(&text);
        prop_assert!(events.is_ok(), "trace unreadable: {:?}", events.err());
        let events = events.unwrap();
        prop_assert_eq!(events.len() as u64, emitted);
        let pairing = fim_obs::validate_trace_pairing(&events);
        prop_assert!(pairing.is_ok(), "unbalanced trace: {:?}", pairing.err());

        // the counters must describe real work
        let c = &stats.counters;
        prop_assert!(c.get(Counter::NodeAllocs) + 1 >= stats.memory.live_nodes as u64);
        if db.transactions().iter().any(|t| !t.is_empty()) {
            prop_assert!(c.get(Counter::NodeAllocs) > 0, "no allocations recorded");
        }
        prop_assert!(c.get(Counter::IsectEarlyExits) <= c.get(Counter::SegScans));
        // splits only exist on the path-compressed layout
        if !patricia {
            prop_assert_eq!(c.get(Counter::Splits), 0);
        }
    }

    /// The heartbeat fires (at a zero interval, on any non-empty database)
    /// and every line is a JSON progress object; the spans nest under the
    /// recorder root and account for non-negative time.
    #[test]
    fn heartbeat_and_spans_record(db in small_db(), minsupp in 1u32..=3) {
        prop_assume!(db.transactions().iter().any(|t| !t.is_empty()));
        let sink = Sink::default();
        let trace_sink = Sink::default();
        let mut obs = full_obs(&sink, &trace_sink);
        let miner = IstaMiner::default();
        let _ = miner.mine_with_obs(&db, minsupp, &mut obs);

        let emitted = obs.progress.as_ref().unwrap().emitted();
        prop_assert!(emitted >= 1, "finish() must always emit");
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        for line in text.lines() {
            prop_assert!(
                line.starts_with("{\"type\":\"progress\"") && line.ends_with('}'),
                "bad heartbeat line: {line}"
            );
        }

        let spans = obs.spans.as_ref().unwrap();
        prop_assert!(spans.num_spans() >= 2, "miner phases must be recorded");
        let mut collapsed = Vec::new();
        spans.write_collapsed(&mut collapsed).unwrap();
        let collapsed = String::from_utf8(collapsed).unwrap();
        for line in collapsed.lines() {
            let (path, micros) = line.rsplit_once(' ').unwrap();
            prop_assert!(!path.is_empty());
            prop_assert!(micros.parse::<u64>().is_ok(), "bad self-time: {line}");
        }
    }
}

//! Property tests for the data-parallel miner and the tree merge operator.
//!
//! The parallel miner partitions the transaction list into contiguous
//! shards, mines each independently, and combines the shard trees with
//! `PrefixTree::merge` (additive cross-shard supports, DESIGN.md §6). These
//! tests pin the whole pipeline against the brute-force reference miner and
//! the sequential `IstaMiner` across shard counts, pruning policies, and a
//! minimum-support sweep, plus the degenerate shapes (empty shards, empty
//! databases, a single transaction).

use fim_core::reference::mine_reference;
use fim_core::{ClosedMiner, Item, MiningResult, RecodedDatabase};
use fim_ista::{IstaMiner, ParallelConfig, ParallelIstaMiner, PrefixTree, PrunePolicy};
use proptest::collection::vec;
use proptest::prelude::*;

/// Shard counts exercised everywhere: sequential fallback, even/odd splits,
/// and more shards than most generated databases have transactions.
const SHARDS: [usize; 4] = [1, 2, 3, 7];

/// Strategy: a database of up to 14 transactions over up to 9 items.
fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=9).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..14)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, num_items))
    })
}

/// Strategy: every pruning-placement policy the miners support.
fn any_policy() -> impl Strategy<Value = PrunePolicy> {
    prop_oneof![
        Just(PrunePolicy::Never),
        Just(PrunePolicy::EveryN(1)),
        Just(PrunePolicy::EveryN(3)),
        Just(PrunePolicy::Growth(1.2)),
        Just(PrunePolicy::Growth(2.0)),
    ]
}

/// Canonical (items, support) view of a mining result, for comparison.
fn canon(r: &MiningResult) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = r
        .sets
        .iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

/// Canonical view of a merged tree's report.
fn canon_tree(t: &PrefixTree, minsupp: u32) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = t
        .report(minsupp)
        .into_iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// ParallelIstaMiner == IstaMiner == mine_reference for every shard
    /// count, across a minimum-support sweep.
    #[test]
    fn parallel_matches_sequential_and_reference(db in small_db(), minsupp in 1u32..6) {
        let want = mine_reference(&db, minsupp).canonicalized();
        let seq = IstaMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(&seq, &want);
        for threads in SHARDS {
            let got = ParallelIstaMiner::with_threads(threads)
                .mine(&db, minsupp)
                .canonicalized();
            prop_assert_eq!(&got, &want, "threads = {}", threads);
        }
    }

    /// Per-shard item-elimination pruning must not change results under any
    /// pruning-placement policy.
    #[test]
    fn parallel_pruning_policies_match_reference(
        db in small_db(),
        minsupp in 1u32..6,
        policy in any_policy(),
        threads in prop_oneof![Just(2usize), Just(3), Just(7)],
    ) {
        let want = mine_reference(&db, minsupp).canonicalized();
        let got = ParallelIstaMiner::with_config(ParallelConfig {
            threads,
            policy,
            ..Default::default()
        })
        .mine(&db, minsupp)
        .canonicalized();
        prop_assert_eq!(got, want, "threads = {}, policy = {:?}", threads, policy);
    }

    /// The merge operator itself: splitting the transaction list at an
    /// arbitrary point (including empty halves), building one tree per
    /// half, and merging must reproduce the reference on the whole
    /// database: supp over D1 ∪ D2 = supp over D1 + supp over D2.
    #[test]
    fn merge_of_split_halves_matches_reference(
        db in small_db(),
        minsupp in 1u32..6,
        cut_seed in 0usize..16,
    ) {
        let txs = db.transactions();
        let cut = if txs.is_empty() { 0 } else { cut_seed % (txs.len() + 1) };
        let mut left = PrefixTree::new(db.num_items());
        for t in &txs[..cut] {
            left.add_transaction(t);
        }
        let mut right = PrefixTree::new(db.num_items());
        for t in &txs[cut..] {
            right.add_transaction(t);
        }
        left.merge(&right);
        left.validate_invariants();
        let want = canon(&mine_reference(&db, minsupp));
        prop_assert_eq!(canon_tree(&left, minsupp), want, "cut = {}", cut);
    }

    /// Merge after terminal-preserving pruning of both halves: pruning a
    /// shard tree against (upper-bound) remaining counts must never change
    /// the merged result.
    #[test]
    fn merge_of_pruned_halves_matches_reference(
        db in small_db(),
        minsupp in 1u32..6,
        cut_seed in 0usize..16,
    ) {
        let txs = db.transactions();
        let cut = if txs.is_empty() { 0 } else { cut_seed % (txs.len() + 1) };
        // global per-item supports are a sound upper bound on what any
        // itemset can still gain from the other shard
        let remaining = db.item_supports().to_vec();
        let mut left = PrefixTree::new(db.num_items());
        for t in &txs[..cut] {
            left.add_transaction(t);
            left.prune_keeping_terminals(&remaining, minsupp);
        }
        let mut right = PrefixTree::new(db.num_items());
        for t in &txs[cut..] {
            right.add_transaction(t);
            right.prune_keeping_terminals(&remaining, minsupp);
        }
        left.merge(&right);
        left.validate_invariants();
        let want = canon(&mine_reference(&db, minsupp));
        prop_assert_eq!(canon_tree(&left, minsupp), want, "cut = {}", cut);
    }
}

#[test]
fn empty_database_all_shard_counts() {
    let db = RecodedDatabase::from_dense(vec![], 4);
    for threads in SHARDS {
        let got = ParallelIstaMiner::with_threads(threads).mine(&db, 1);
        assert!(got.sets.is_empty(), "threads = {threads}");
    }
}

#[test]
fn all_empty_transactions_all_shard_counts() {
    // transactions exist but carry no items: the closed-set lattice is
    // empty, yet shard weights must still add up without panicking
    let db = RecodedDatabase::from_dense(vec![vec![], vec![], vec![]], 4);
    for threads in SHARDS {
        let got = ParallelIstaMiner::with_threads(threads).mine(&db, 1);
        assert!(got.sets.is_empty(), "threads = {threads}");
    }
}

#[test]
fn single_transaction_all_shard_counts() {
    let db = RecodedDatabase::from_dense(vec![vec![0, 2, 3]], 5);
    let want = mine_reference(&db, 1).canonicalized();
    for threads in SHARDS {
        let got = ParallelIstaMiner::with_threads(threads)
            .mine(&db, 1)
            .canonicalized();
        assert_eq!(got, want, "threads = {threads}");
    }
}

#[test]
fn merging_empty_shards_is_identity() {
    // empty shard on either side of the merge (a shard count larger than
    // the transaction count produces these)
    let db = RecodedDatabase::from_dense(vec![vec![0, 1], vec![1, 2]], 3);
    let mut full = PrefixTree::new(3);
    for t in db.transactions() {
        full.add_transaction(t);
    }
    let want = canon_tree(&full, 1);

    let mut left = PrefixTree::new(3);
    for t in db.transactions() {
        left.add_transaction(t);
    }
    left.merge(&PrefixTree::new(3));
    assert_eq!(canon_tree(&left, 1), want.clone());

    let mut empty = PrefixTree::new(3);
    empty.merge(&full);
    assert_eq!(canon_tree(&empty, 1), want);
}

//! Property tests for the path-compressed (Patricia) prefix tree.
//!
//! The Patricia layout (paper §3.3) must be a pure representation change:
//! every configuration — prune policy × minimum support × shard count —
//! has to report exactly the closed sets of the brute-force reference and
//! of the uncompressed `ista-plain` layout. On top of the equivalence
//! sweep, the suite pins order-independence of the stored repository
//! (split/merge churn from different insertion orders must converge to
//! the same conceptual node set) and the snapshot compatibility path: a
//! version-1 chain snapshot — synthesized byte-for-byte from the current
//! version-2 format by expanding segments into chains — must load into an
//! observably identical tree and survive corruption attempts.

use fim_core::reference::mine_reference;
use fim_core::{ClosedMiner, Item, MiningResult, RecodedDatabase};
use fim_ista::snapshot::{crc32, read_tree, write_tree, MAGIC};
use fim_ista::{IstaConfig, IstaMiner, ParallelIstaMiner, PrefixTree, PrunePolicy};
use proptest::collection::vec;
use proptest::prelude::*;

/// Shard counts of the acceptance sweep.
const SHARDS: [usize; 3] = [1, 2, 3];

/// Strategy: a database of up to 14 transactions over up to 9 items.
fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=9).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..14)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, num_items))
    })
}

/// Strategy: longer, overlapping transactions — the shape that actually
/// produces multi-item segments and split churn.
fn chainy_db() -> impl Strategy<Value = RecodedDatabase> {
    vec((0u32..12, 1u32..=12), 1..10).prop_map(|ranges| {
        let txs: Vec<Vec<Item>> = ranges
            .into_iter()
            .map(|(lo, len)| (lo..(lo + len).min(12)).collect())
            .collect();
        RecodedDatabase::from_dense(txs, 12)
    })
}

/// Strategy: every pruning-placement policy the miners support.
fn any_policy() -> impl Strategy<Value = PrunePolicy> {
    prop_oneof![
        Just(PrunePolicy::Never),
        Just(PrunePolicy::EveryN(1)),
        Just(PrunePolicy::EveryN(3)),
        Just(PrunePolicy::Growth(1.2)),
        Just(PrunePolicy::Growth(2.0)),
    ]
}

/// Canonical (items, support) view of a mining result, for comparison.
fn canon(r: &MiningResult) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = r
        .sets
        .iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

/// Canonical view of the whole stored repository (every conceptual node).
fn canon_dump(t: &PrefixTree) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = t
        .dump()
        .into_iter()
        .map(|(s, supp)| (s.as_slice().to_vec(), supp))
        .collect();
    v.sort();
    v
}

/// Expands a version-2 (Patricia) snapshot into version-1 (chain) bytes:
/// each node's segment becomes a unary chain of single-item v1 nodes. The
/// test uses this to synthesize genuine v1 files — the legacy writer no
/// longer exists — and to pin the v1 reader against the v2 semantics.
fn v2_to_v1(buf: &[u8]) -> Vec<u8> {
    let u32_at =
        |off: usize| u32::from_le_bytes(buf[off..off + 4].try_into().expect("4-byte slice"));
    assert_eq!(&buf[..4], &MAGIC);
    assert_eq!(u32_at(4), 2, "expander expects a v2 snapshot");
    let num_items = u32_at(8);
    let weight = u32_at(12);
    let node_count = u32_at(16) as usize;
    let seg_items = u32_at(20) as usize;
    let nodes_base = 24;
    let items_base = nodes_base + node_count * 24;
    assert_eq!(buf.len(), items_base + seg_items * 4 + 4, "v2 layout");
    let item_at = |idx: usize| u32_at(items_base + idx * 4);

    // first pass: new index of each v2 node's chain head (the root keeps
    // index 0; a chain occupies seg_len consecutive v1 slots)
    let mut head = vec![0u32; node_count];
    let mut next = 0u32;
    for (k, h) in head.iter_mut().enumerate() {
        *h = next;
        let seg_len = u32_at(nodes_base + k * 24 + 4);
        next += seg_len.max(1);
    }
    let total = next;
    let none = u32::MAX;
    let map = |idx: u32| {
        if idx == none {
            none
        } else {
            head[idx as usize]
        }
    };

    let mut body = Vec::new();
    let mut push = |v: u32| body.extend_from_slice(&v.to_le_bytes());
    push(1); // version
    push(num_items);
    push(weight);
    push(total);
    for (k, &chain_head) in head.iter().enumerate() {
        let at = nodes_base + k * 24;
        let (seg_off, seg_len, supp, raw, sibling, children) = (
            u32_at(at) as usize,
            u32_at(at + 4) as usize,
            u32_at(at + 8),
            u32_at(at + 12),
            u32_at(at + 16),
            u32_at(at + 20),
        );
        if seg_len == 0 {
            // the root: v1 stores the pseudo-item sentinel
            for v in [none, supp, raw, map(sibling), map(children)] {
                push(v);
            }
            continue;
        }
        for j in 0..seg_len {
            let last = j + 1 == seg_len;
            for v in [
                item_at(seg_off + j),
                supp,
                if last { raw } else { 0 },
                if j == 0 { map(sibling) } else { none },
                if last {
                    map(children)
                } else {
                    chain_head + j as u32 + 1
                },
            ] {
                push(v);
            }
        }
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Builds a Patricia tree directly from raw transactions.
fn build_tree(db: &RecodedDatabase) -> PrefixTree {
    let mut t = PrefixTree::new(db.num_items());
    for tx in db.transactions() {
        if !tx.is_empty() {
            t.add_transaction(tx);
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The acceptance sweep: Patricia == plain == reference for every
    /// prune policy, minimum support, and shard count 1/2/3.
    #[test]
    fn patricia_matches_plain_and_reference(
        db in small_db(),
        minsupp in 1u32..6,
        policy in any_policy(),
    ) {
        let want = mine_reference(&db, minsupp).canonicalized();
        let patricia = IstaMiner::with_config(IstaConfig {
            policy,
            ..IstaConfig::default()
        })
        .mine(&db, minsupp)
        .canonicalized();
        prop_assert_eq!(canon(&patricia), canon(&want), "patricia, policy={:?}", policy);
        let plain = IstaMiner::with_config(IstaConfig {
            policy,
            ..IstaConfig::without_patricia()
        })
        .mine(&db, minsupp)
        .canonicalized();
        prop_assert_eq!(canon(&plain), canon(&want), "plain, policy={:?}", policy);
        for threads in SHARDS {
            let sharded = ParallelIstaMiner::with_config(fim_ista::ParallelConfig {
                threads,
                policy,
                ..Default::default()
            })
            .mine(&db, minsupp)
            .canonicalized();
            prop_assert_eq!(
                canon(&sharded), canon(&want),
                "shards={}, policy={:?}", threads, policy
            );
        }
    }

    /// Same sweep on the segment-heavy shape (long overlapping ranges),
    /// which drives the split/merge machinery much harder than uniform
    /// random rows.
    #[test]
    fn patricia_matches_reference_on_chainy_data(
        db in chainy_db(),
        minsupp in 1u32..5,
        policy in any_policy(),
    ) {
        let want = mine_reference(&db, minsupp).canonicalized();
        let patricia = IstaMiner::with_config(IstaConfig {
            policy,
            ..IstaConfig::default()
        })
        .mine(&db, minsupp)
        .canonicalized();
        prop_assert_eq!(canon(&patricia), canon(&want), "policy={:?}", policy);
        let plain = IstaMiner::with_config(IstaConfig {
            policy,
            ..IstaConfig::without_patricia()
        })
        .mine(&db, minsupp)
        .canonicalized();
        prop_assert_eq!(canon(&plain), canon(&want), "plain, policy={:?}", policy);
    }

    /// The stored repository is a *set* of closed item sets, so processing
    /// the same transactions in a different order must converge to the
    /// same conceptual nodes with the same supports — even though the
    /// physical split/merge history is completely different. This pins
    /// the split machinery: a wrong split would leave divergent segments.
    #[test]
    fn insertion_order_is_immaterial_to_the_stored_repository(
        db in chainy_db(),
        seed in 0u64..u64::MAX,
    ) {
        let forward = build_tree(&db);
        forward.validate_invariants();
        let mut shuffled: Vec<&[Item]> =
            db.transactions().iter().map(AsRef::as_ref).collect();
        // cheap deterministic shuffle (Fisher–Yates with an LCG)
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut reordered = PrefixTree::new(db.num_items());
        for tx in shuffled {
            if !tx.is_empty() {
                reordered.add_transaction(tx);
            }
        }
        reordered.validate_invariants();
        prop_assert_eq!(canon_dump(&forward), canon_dump(&reordered));
    }

    /// v1 → v2 compatibility: a legacy chain snapshot (synthesized from
    /// the v2 bytes) loads into an observably identical tree, and both
    /// resume identically.
    #[test]
    fn v1_chain_snapshot_loads_identically(db in small_db(), extra in small_db()) {
        let mut t = build_tree(&db);
        let mut v2 = Vec::new();
        write_tree(&mut t, &mut v2).expect("write to Vec cannot fail");
        let v1 = v2_to_v1(&v2);
        let mut from_v1 = read_tree(&mut v1.as_slice()).expect("v1 load");
        from_v1.validate_invariants();
        let mut from_v2 = read_tree(&mut v2.as_slice()).expect("v2 load");
        prop_assert_eq!(canon_dump(&from_v1), canon_dump(&from_v2));
        prop_assert_eq!(
            from_v1.transactions_processed(),
            from_v2.transactions_processed()
        );
        // conceptual nodes agree although v1 loads uncompressed
        prop_assert_eq!(
            from_v1.memory_stats().seg_items,
            from_v2.memory_stats().seg_items
        );
        // resume both with fresh transactions over the same universe
        from_v1.grow_universe(extra.num_items());
        from_v2.grow_universe(extra.num_items());
        for tx in extra.transactions() {
            if tx.is_empty() {
                continue;
            }
            let tx: Vec<Item> = tx.iter().copied().filter(|&i| i < from_v1.num_items()).collect();
            if tx.is_empty() {
                continue;
            }
            from_v1.add_transaction(&tx);
            from_v2.add_transaction(&tx);
        }
        from_v1.validate_invariants();
        from_v2.validate_invariants();
        prop_assert_eq!(canon_dump(&from_v1), canon_dump(&from_v2));
    }

    /// Corrupting any single byte of a synthesized v1 snapshot must be
    /// rejected (CRC or structural validation), never panic or load.
    #[test]
    fn corrupted_v1_snapshot_is_rejected(db in small_db(), pos_seed in any::<u64>()) {
        let mut t = build_tree(&db);
        let mut v2 = Vec::new();
        write_tree(&mut t, &mut v2).expect("write to Vec cannot fail");
        let v1 = v2_to_v1(&v2);
        let pos = (pos_seed % v1.len() as u64) as usize;
        let mut bad = v1.clone();
        bad[pos] ^= 0x5A;
        prop_assert!(
            read_tree(&mut bad.as_slice()).is_err(),
            "flip at byte {} went undetected", pos
        );
        // and truncation at that byte as well
        prop_assert!(read_tree(&mut &v1[..pos]).is_err());
    }

    /// Snapshot round trip across pruning churn: prune mid-build, write,
    /// reload, and the reloaded tree must continue exactly like the
    /// original (v2 round-trip equivalence under the Patricia layout).
    #[test]
    fn pruned_tree_round_trips_through_v2(
        db in chainy_db(),
        minsupp in 1u32..4,
    ) {
        let txs: Vec<&[Item]> = db.transactions().iter().map(AsRef::as_ref).collect();
        let mid = txs.len() / 2;
        let mut remaining = vec![0u32; db.num_items() as usize];
        for tx in &txs[mid..] {
            for &i in tx.iter() {
                remaining[i as usize] += 1;
            }
        }
        let mut t = PrefixTree::new(db.num_items());
        for tx in &txs[..mid] {
            if !tx.is_empty() {
                t.add_transaction(tx);
            }
        }
        t.prune(&remaining, minsupp);
        t.validate_invariants();
        let mut buf = Vec::new();
        write_tree(&mut t, &mut buf).expect("write to Vec cannot fail");
        let mut reloaded = read_tree(&mut buf.as_slice()).expect("round trip");
        for tx in &txs[mid..] {
            if !tx.is_empty() {
                t.add_transaction(tx);
                reloaded.add_transaction(tx);
            }
        }
        reloaded.validate_invariants();
        prop_assert_eq!(canon_dump(&t), canon_dump(&reloaded));
    }
}

/// Deterministic split/merge unit cases that proptest shrinkage tends to
/// miss: exact segment boundaries around an alias split inside `isect`.
#[test]
fn alias_split_mid_segment_keeps_supports_exact() {
    // [0..6) stored as one segment, then [2..6) forces a split at depth 4
    // where the *source* of the traversal is the node being split
    let mut t = PrefixTree::new(6);
    t.add_transaction(&[0, 1, 2, 3, 4, 5]);
    t.add_transaction(&[2, 3, 4, 5]);
    t.validate_invariants();
    let db = RecodedDatabase::from_dense(vec![(0..6).collect(), (2..6).collect()], 6);
    for (set, supp) in t.dump() {
        assert_eq!(db.support(&set), supp, "{set:?}");
    }
    // shared prefix [5,4,3,2] is one node; suffix [1,0] another
    assert_eq!(t.node_count(), 2);
}

#[test]
fn interleaved_prefix_suffix_splits_converge() {
    // transactions engineered so every insertion ends in a different
    // relative position: inside a segment, at a boundary, and past a leaf
    let rows: Vec<Vec<Item>> = vec![
        (0..8).collect(),
        (0..4).collect(),
        (2..8).collect(),
        (2..4).collect(),
        (0..8).collect(),
        vec![0, 7],
    ];
    let db = RecodedDatabase::from_dense(rows, 8);
    let t = build_tree(&db);
    t.validate_invariants();
    for (set, supp) in t.dump() {
        assert_eq!(db.support(&set), supp, "{set:?}");
    }
    let want = mine_reference(&db, 1);
    let got = IstaMiner::default().mine(&db, 1).canonicalized();
    assert_eq!(canon(&got), canon(&want));
}

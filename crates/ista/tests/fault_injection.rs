//! Fault injection for the parallel miner's panic-isolation path.
//!
//! `fim_ista::parallel::test_hooks` arms a process-global one-shot panic
//! in a chosen shard; the reduction must catch it (`catch_unwind`), re-mine
//! the lost shard's transactions sequentially, report the incident through
//! `ParallelMineStats::shards_recovered`, and still produce output
//! identical to the sequential miner. Because the hook is process-global,
//! every test in this binary serializes on one mutex — no other test
//! binary mines in this process, so the hook cannot leak across suites.

use fim_core::reference::mine_reference;
use fim_core::{Budget, ClosedMiner, RecodedDatabase};
use fim_ista::parallel::test_hooks;
use fim_ista::{IstaMiner, ParallelIstaMiner};
use std::sync::Mutex;

static HOOK: Mutex<()> = Mutex::new(());

fn paper_db() -> RecodedDatabase {
    RecodedDatabase::from_dense(
        vec![
            vec![0, 1, 2],
            vec![0, 3, 4],
            vec![1, 2, 3],
            vec![0, 1, 2, 3],
            vec![1, 2],
            vec![0, 1, 3],
            vec![3, 4],
            vec![2, 3, 4],
        ],
        5,
    )
}

/// A wider database so 4-shard runs have non-trivial shards.
fn wide_db() -> RecodedDatabase {
    let mut txs: Vec<Vec<u32>> = Vec::new();
    for k in 0..20u32 {
        txs.push(vec![k % 7, (k + 2) % 7, (k * 3) % 7]);
        txs.push((0..7).filter(|i| (k + i) % 3 != 0).collect());
    }
    RecodedDatabase::from_dense(
        txs.into_iter()
            .map(|mut t| {
                t.sort_unstable();
                t.dedup();
                t
            })
            .collect(),
        7,
    )
}

#[test]
fn every_shard_panic_recovers_to_exact_sequential_result() {
    let _guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let db = paper_db();
    for shard in 0..3 {
        for minsupp in 1..=4 {
            test_hooks::arm_shard_panic(shard);
            let (result, stats) = ParallelIstaMiner::with_threads(3).mine_with_stats(&db, minsupp);
            test_hooks::disarm();
            let want = IstaMiner::default().mine(&db, minsupp).canonicalized();
            assert_eq!(want, mine_reference(&db, minsupp));
            assert_eq!(
                result.canonicalized(),
                want,
                "shard={shard} minsupp={minsupp}"
            );
            assert!(
                stats.shards_recovered >= 1,
                "shard={shard}: panic must be recovered, not lost"
            );
        }
    }
}

#[test]
fn recovery_on_wider_database_and_more_shards() {
    let _guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let db = wide_db();
    for shard in 0..4 {
        test_hooks::arm_shard_panic(shard);
        let (result, stats) = ParallelIstaMiner::with_threads(4).mine_with_stats(&db, 3);
        test_hooks::disarm();
        assert_eq!(
            result.canonicalized(),
            mine_reference(&db, 3),
            "shard={shard}"
        );
        assert!(stats.shards_recovered >= 1, "shard={shard}");
    }
}

#[test]
fn recovery_composes_with_a_governed_run() {
    let _guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let db = wide_db();
    test_hooks::arm_shard_panic(1);
    let (outcome, stats) = ParallelIstaMiner::with_threads(4).mine_governed_with_stats(
        &db,
        3,
        &Budget::unlimited().with_max_closed_sets(1_000_000),
    );
    test_hooks::disarm();
    assert!(!outcome.is_interrupted(), "generous budget must not trip");
    assert_eq!(
        outcome.into_result().canonicalized(),
        mine_reference(&db, 3)
    );
    assert!(stats.shards_recovered >= 1);
}

#[test]
fn unarmed_runs_do_not_recover_anything() {
    let _guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    test_hooks::disarm();
    let db = paper_db();
    let (result, stats) = ParallelIstaMiner::with_threads(3).mine_with_stats(&db, 2);
    assert_eq!(result.canonicalized(), mine_reference(&db, 2));
    assert_eq!(stats.shards_recovered, 0);
}

//! Fault injection and corruption handling for the out-of-core pipeline.
//!
//! The pipeline's scope guard must leave the spill directory clean on
//! *every* exit — a panic in the middle of a shard mine (injected through
//! `fim_ista::parallel::test_hooks`, the same process-global one-shot hook
//! the parallel miner's fault tests use), a budget trip, or a normal
//! return — and every reload of a spill snapshot must detect arbitrary
//! single-byte corruption or truncation as [`FimError::Corrupt`] naming
//! the offending file. Because the panic hook is process-global, the tests
//! that arm it serialize on one mutex.

use fim_core::reference::mine_reference;
use fim_core::{Budget, FimError, MineOutcome, RecodedDatabase, TripReason};
use fim_ista::parallel::test_hooks;
use fim_ista::{
    load_spill, spill_tree, OutOfCoreConfig, OutOfCoreMiner, OutOfCoreStats, PrefixTree,
};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static HOOK: Mutex<()> = Mutex::new(());

fn paper_db() -> RecodedDatabase {
    RecodedDatabase::from_dense(
        vec![
            vec![0, 1, 2],
            vec![0, 3, 4],
            vec![1, 2, 3],
            vec![0, 1, 2, 3],
            vec![1, 2],
            vec![0, 1, 3],
            vec![3, 4],
            vec![2, 3, 4],
        ],
        5,
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fim-oocore-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn dir_is_empty(dir: &Path) -> bool {
    fs::read_dir(dir).map_or(true, |d| d.count() == 0)
}

/// Runs the pipeline over the database's transactions with the given byte
/// budget (1 forces one-transaction shards on the paper database).
fn mine_db(
    db: &RecodedDatabase,
    minsupp: u32,
    mem_budget: u64,
    dir: &Path,
    budget: &Budget,
) -> (MineOutcome, OutOfCoreStats) {
    let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(mem_budget, dir));
    let txs = db.transactions();
    let mut i = 0usize;
    miner
        .mine_stream(
            db.num_items(),
            db.item_supports(),
            Some(txs.len() as u64),
            minsupp,
            budget,
            move |buf| {
                buf.clear();
                if i < txs.len() {
                    buf.extend_from_slice(&txs[i]);
                    i += 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            },
        )
        .expect("pipeline")
}

#[test]
fn shard_panic_leaves_the_spill_dir_clean_at_every_depth() {
    let _guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let db = paper_db();
    // shard 0 panics before the first spill exists, shard 2 with two
    // spills on disk, shard 7 with the directory at its fullest
    for shard in [0usize, 2, 7] {
        let dir = temp_dir(&format!("panic-{shard}"));
        test_hooks::arm_shard_panic(shard);
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            mine_db(&db, 2, 1, &dir, &Budget::unlimited())
        }));
        test_hooks::disarm();
        assert!(panicked.is_err(), "shard={shard}: armed panic must fire");
        assert!(
            dir_is_empty(&dir),
            "shard={shard}: unwinding must remove every partial spill"
        );
        // the directory is immediately reusable: a fresh run is exact
        let (outcome, stats) = mine_db(&db, 2, 1, &dir, &Budget::unlimited());
        assert_eq!(
            outcome.into_result().canonicalized(),
            mine_reference(&db, 2),
            "shard={shard}"
        );
        assert_eq!(stats.shards, 8);
        assert!(dir_is_empty(&dir), "shard={shard}: clean after the rerun");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn budget_trip_mid_pipeline_leaves_the_spill_dir_clean() {
    let _guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    test_hooks::disarm();
    let db = paper_db();
    let dir = temp_dir("trip");
    let budget = Budget::unlimited().with_max_nodes(3);
    let (outcome, _) = mine_db(&db, 1, 1, &dir, &budget);
    match outcome {
        MineOutcome::Interrupted { reason, .. } => assert_eq!(reason, TripReason::NodeBudget),
        other => panic!("expected a node-budget trip, got {other:?}"),
    }
    assert!(
        dir_is_empty(&dir),
        "partials must be removed after the trip"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_byte_flip_in_a_spill_is_detected_and_names_the_file() {
    let db = paper_db();
    let dir = temp_dir("flip");
    fs::create_dir_all(&dir).unwrap();
    let mut tree = PrefixTree::new(db.num_items());
    for t in db.transactions() {
        tree.add_transaction(t);
    }
    let path = dir.join("inter.spill");
    spill_tree(&mut tree, &path).expect("spill");
    let good = fs::read(&path).unwrap();
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        match load_spill(&path) {
            Err(e) => {
                assert!(matches!(e, FimError::Corrupt(_)), "byte {i}: {e}");
                assert!(
                    e.to_string().contains("inter.spill"),
                    "byte {i}: the error must name the file: {e}"
                );
            }
            Ok(_) => panic!("flip at byte {i} went undetected"),
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncation_at_every_length_is_detected_and_names_the_file() {
    let db = paper_db();
    let dir = temp_dir("trunc");
    fs::create_dir_all(&dir).unwrap();
    let mut tree = PrefixTree::new(db.num_items());
    for t in db.transactions() {
        tree.add_transaction(t);
    }
    let path = dir.join("short.spill");
    spill_tree(&mut tree, &path).expect("spill");
    let good = fs::read(&path).unwrap();
    for len in 0..good.len() {
        fs::write(&path, &good[..len]).unwrap();
        let e = load_spill(&path).expect_err("truncated spill must not load");
        assert!(matches!(e, FimError::Corrupt(_)), "len {len}: {e}");
        assert!(
            e.to_string().contains("short.spill"),
            "len {len}: the error must name the file: {e}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

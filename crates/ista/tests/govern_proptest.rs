//! Property tests for the resource-governance layer (budgets, interruption,
//! degradation) and for stream checkpoint/resume.
//!
//! The central claims being pinned:
//!
//! * An IsTa run interrupted after `k` transactions returns **exactly** the
//!   closed sets of those `k` transactions — item-elimination pruning with
//!   full-database remaining counts never removes a set frequent in any
//!   prefix (`supp_t + remaining_t < minsupp` bounds the support in every
//!   prefix below `minsupp`), so the partial tree reports the prefix answer.
//! * A stream persisted to a snapshot, reloaded, and fed the remaining
//!   transactions is indistinguishable from one that never stopped.
//! * Graceful degradation completes with exactly the answer at the raised
//!   effective threshold it reports.

use fim_core::reference::mine_reference;
use fim_core::{Budget, Item, MineOutcome, RecodedDatabase, TripReason};
use fim_ista::{IstaConfig, IstaMiner, IstaStream, PrunePolicy};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: raw transactions over up to 9 items (possibly empty rows;
/// `RecodedDatabase::from_dense` canonicalizes and drops the empty ones).
fn raw_txs() -> impl Strategy<Value = (Vec<Vec<Item>>, u32)> {
    (2u32..=9).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..14).prop_map(move |txs| (txs, num_items))
    })
}

fn dedup(mut t: Vec<Item>) -> Vec<Item> {
    t.sort_unstable();
    t.dedup();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Interrupting at a random transaction index yields exactly the
    /// result of mining the prefix alone, for every pruning policy.
    #[test]
    fn interruption_equals_mining_the_prefix(
        txs_items in raw_txs(),
        cut in 0usize..20,
        minsupp in 1u32..5,
        policy_idx in 0usize..3,
        compact in any::<bool>(),
    ) {
        let (txs, num_items) = txs_items;
        let policy =
            [PrunePolicy::Never, PrunePolicy::EveryN(1), PrunePolicy::Growth(1.2)][policy_idx];
        let db = RecodedDatabase::from_dense(txs, num_items);
        let k = cut % (db.transactions().len() + 1);
        // coalescing reorders transactions, so "prefix of the processed
        // sequence" only matches "prefix of the database" without it
        let miner = IstaMiner::with_config(IstaConfig {
            policy,
            coalesce: false,
            compact,
            ..IstaConfig::default()
        });
        let budget = Budget::unlimited().with_max_transactions(k as u64);
        let (outcome, _) = miner.mine_governed_with_stats(&db, minsupp, &budget);
        let prefix = RecodedDatabase::from_dense(
            db.transactions()[..k].iter().map(|t| t.to_vec()).collect(),
            num_items,
        );
        let want = mine_reference(&prefix, minsupp);
        match outcome {
            MineOutcome::Interrupted { partial, reason, progress } => {
                prop_assert_eq!(reason, TripReason::TransactionBudget);
                prop_assert_eq!(progress.processed, k as u64);
                prop_assert_eq!(partial.canonicalized(), want, "cut at {}", k);
            }
            MineOutcome::Complete { result, .. } => {
                // the transaction budget trips at the boundary, so a
                // governed run only completes when it covers the database
                prop_assert!(k >= db.transactions().len());
                prop_assert_eq!(result.canonicalized(), want);
            }
        }
    }

    /// Degradation mode never interrupts on a node budget: it completes
    /// with exactly the reference answer at the effective threshold it
    /// reports, and the requested threshold is preserved in the record.
    #[test]
    fn degradation_reports_exact_answer_at_raised_threshold(
        txs_items in raw_txs(),
        max_nodes in 1usize..12,
        minsupp in 1u32..4,
    ) {
        let (txs, num_items) = txs_items;
        let db = RecodedDatabase::from_dense(txs, num_items);
        let budget = Budget::unlimited().with_max_nodes(max_nodes).with_degradation();
        let (outcome, _) = IstaMiner::default().mine_governed_with_stats(&db, minsupp, &budget);
        match outcome {
            MineOutcome::Complete { result, degradation } => {
                let eff = match degradation {
                    Some(d) => {
                        prop_assert_eq!(d.requested_minsupp, minsupp);
                        prop_assert!(d.effective_minsupp > d.requested_minsupp);
                        prop_assert!(d.steps >= 1);
                        d.effective_minsupp
                    }
                    None => minsupp,
                };
                prop_assert_eq!(result.canonicalized(), mine_reference(&db, eff));
            }
            MineOutcome::Interrupted { reason, .. } => {
                prop_assert!(false, "degrade mode interrupted: {}", reason);
            }
        }
    }

    /// checkpoint → reload → continue is equivalent to an uninterrupted
    /// stream: same closed sets at every threshold, same transaction count,
    /// and the resumed tree still satisfies every structural invariant.
    #[test]
    fn snapshot_resume_equals_uninterrupted_stream(
        txs_items in raw_txs(),
        cut in 0usize..20,
    ) {
        let (txs, num_items) = txs_items;
        let txs: Vec<Vec<Item>> = txs.into_iter().map(dedup).collect();
        let k = cut % (txs.len() + 1);
        let mut uninterrupted = IstaStream::new(num_items);
        let mut before = IstaStream::new(num_items);
        for t in &txs[..k] {
            uninterrupted.push_sorted(t);
            before.push_sorted(t);
        }
        let mut buf = Vec::new();
        before.write_snapshot(&mut buf).expect("write snapshot");
        let mut resumed = IstaStream::read_snapshot(&mut buf.as_slice()).expect("read snapshot");
        for t in &txs[k..] {
            uninterrupted.push_sorted(t);
            resumed.push_sorted(t);
        }
        resumed.tree().validate_invariants();
        prop_assert_eq!(
            resumed.transactions_processed(),
            uninterrupted.transactions_processed()
        );
        for minsupp in 1..=4 {
            prop_assert_eq!(
                resumed.closed_sets(minsupp),
                uninterrupted.closed_sets(minsupp),
                "cut {} minsupp {}", k, minsupp
            );
        }
        // a second checkpoint of the resumed stream round-trips too
        let mut buf2 = Vec::new();
        resumed.write_snapshot(&mut buf2).expect("second write");
        let again = IstaStream::read_snapshot(&mut buf2.as_slice()).expect("second read");
        prop_assert_eq!(again.closed_sets(1), uninterrupted.closed_sets(1));
    }

    /// Flipping any single bit of a snapshot must never produce a valid
    /// stream (CRC or structural validation catches it).
    #[test]
    fn corrupted_snapshots_never_load(
        txs_items in raw_txs(),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let (txs, num_items) = txs_items;
        let mut stream = IstaStream::new(num_items);
        for t in &txs {
            stream.push(t);
        }
        let mut buf = Vec::new();
        stream.write_snapshot(&mut buf).expect("write snapshot");
        let pos = flip_pos % buf.len();
        buf[pos] ^= 1 << flip_bit;
        prop_assert!(
            IstaStream::read_snapshot(&mut buf.as_slice()).is_err(),
            "flip at byte {} bit {} went undetected", pos, flip_bit
        );
    }
}

//! Stress and shape tests for the IsTa prefix tree: very wide
//! transactions (deep paths), wide item universes, and adversarial
//! overlap patterns.

use fim_core::reference::mine_reference;
use fim_core::{ClosedMiner, ItemSet, RecodedDatabase};
use fim_ista::{IstaMiner, PrefixTree};

#[test]
fn very_wide_transactions() {
    // paths 3000 items deep exercise the recursive traversals
    let width = 3000u32;
    let txs: Vec<Vec<u32>> = vec![
        (0..width).collect(),
        (500..width + 500).collect(),
        (0..width).step_by(2).collect(),
    ];
    let db = RecodedDatabase::from_dense(txs, width + 500);
    let result = IstaMiner::default().mine(&db, 1).canonicalized();
    // closed sets: the 3 transactions plus pairwise/triple intersections
    assert_eq!(db.support(&result.sets[0].items), result.sets[0].support);
    for fs in &result.sets {
        assert_eq!(db.support(&fs.items), fs.support);
    }
    // t1 ∩ t2 = 500..3000, t1 ∩ t3 = t3, t2 ∩ t3 = evens in 500..3000
    let t13: ItemSet = (0..width).step_by(2).collect();
    assert_eq!(result.support_of(&t13), Some(2));
}

#[test]
fn identical_transactions_many_times() {
    let txs: Vec<Vec<u32>> = vec![(0..200).collect(); 50];
    let db = RecodedDatabase::from_dense(txs, 200);
    let result = IstaMiner::default().mine(&db, 25);
    assert_eq!(result.len(), 1);
    assert_eq!(result.sets[0].support, 50);
    assert_eq!(result.sets[0].items.len(), 200);
}

#[test]
fn staircase_overlap() {
    // t_k = {k, k+1, ..., k+9}: every pairwise intersection distinct
    let txs: Vec<Vec<u32>> = (0..40u32).map(|k| (k..k + 10).collect()).collect();
    let db = RecodedDatabase::from_dense(txs, 50);
    let want = mine_reference(&db, 2);
    let got = IstaMiner::default().mine(&db, 2).canonicalized();
    assert_eq!(got, want);
}

#[test]
fn nested_transactions_chain() {
    // t_k = {0..k}: closed sets are exactly the prefixes
    let txs: Vec<Vec<u32>> = (1..=30u32).map(|k| (0..k).collect()).collect();
    let db = RecodedDatabase::from_dense(txs, 30);
    let got = IstaMiner::default().mine(&db, 1).canonicalized();
    assert_eq!(got.len(), 30);
    for (k, fs) in got.sets.iter().enumerate() {
        assert_eq!(fs.items.len(), k + 1);
        assert_eq!(fs.support, (30 - k) as u32);
    }
}

#[test]
fn tree_prune_stability_under_random_interleave() {
    // pruning at different intervals must agree on a fixed irregular mix
    let txs: Vec<Vec<u32>> = vec![
        (0..64).collect(),
        (32..96).collect(),
        (0..96).step_by(3).collect(),
        (16..48).collect(),
        (0..8).chain(88..96).collect(),
        (0..96).step_by(5).collect(),
        (40..56).collect(),
        (0..96).step_by(7).collect(),
    ];
    let db = RecodedDatabase::from_dense(txs, 96);
    let mut results = Vec::new();
    for policy in [
        fim_ista::PrunePolicy::EveryN(1),
        fim_ista::PrunePolicy::EveryN(2),
        fim_ista::PrunePolicy::EveryN(3),
        fim_ista::PrunePolicy::Growth(1.5),
        fim_ista::PrunePolicy::Never,
    ] {
        let miner = IstaMiner::with_config(fim_ista::IstaConfig {
            policy,
            ..Default::default()
        });
        results.push(miner.mine(&db, 3).canonicalized());
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
    assert_eq!(results[0], mine_reference(&db, 3));
}

#[test]
fn tree_shrinks_after_prune() {
    let mut tree = PrefixTree::new(100);
    for k in 0..10u32 {
        let t: Vec<u32> = (k..k + 30).collect();
        tree.add_transaction(&t);
    }
    let before = tree.node_count();
    // pretend no item occurs again; at minsupp 11 nothing can survive
    tree.prune(&vec![0; 100], 11);
    tree.validate_invariants();
    assert_eq!(tree.node_count(), 0, "all nodes below support 11");
    assert!(before > 0);
}

#[test]
fn supports_exact_on_dense_block_data() {
    // block structure like the gene-expression stand-ins
    let mut txs = Vec::new();
    for k in 0..12u32 {
        let mut t: Vec<u32> = (0..40).filter(|i| (i + k) % 3 != 0).collect();
        t.extend(40 + k * 2..40 + k * 2 + 6);
        t.sort_unstable();
        t.dedup();
        txs.push(t);
    }
    let db = RecodedDatabase::from_dense(txs, 80);
    for minsupp in [1, 2, 4, 8] {
        let got = IstaMiner::default().mine(&db, minsupp).canonicalized();
        let want = mine_reference(&db, minsupp);
        assert_eq!(got, want, "minsupp {minsupp}");
    }
}

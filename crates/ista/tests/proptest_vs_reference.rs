//! Property tests: IsTa must agree with the brute-force reference miner on
//! random databases, with and without item-elimination pruning, at every
//! minimum support.

use fim_core::reference::mine_reference;
use fim_core::{ClosedMiner, RecodedDatabase};
use fim_ista::{IstaConfig, IstaMiner};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a database of up to 14 transactions over up to 9 items.
fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=9).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..14)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, num_items))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ista_matches_reference(db in small_db(), minsupp in 1u32..6) {
        let want = mine_reference(&db, minsupp);
        let got = IstaMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ista_without_pruning_matches_reference(db in small_db(), minsupp in 1u32..6) {
        let want = mine_reference(&db, minsupp);
        let miner = IstaMiner::with_config(IstaConfig::without_pruning());
        let got = miner.mine(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ista_aggressive_pruning_matches_reference(db in small_db(), minsupp in 1u32..6) {
        // prune after every single transaction — worst case for the
        // reduced-set bookkeeping of paper §3.2
        let miner = IstaMiner::with_config(IstaConfig::prune_every_transaction());
        let want = mine_reference(&db, minsupp);
        let got = miner.mine(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ista_dense_databases(db in (3u32..=7).prop_flat_map(|m| {
        vec(vec(0..m, (m as usize/2)..=m as usize), 1..10)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, m))
    }), minsupp in 1u32..4) {
        let want = mine_reference(&db, minsupp);
        let got = IstaMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want);
    }
}

//! Property tests for the out-of-core shard-spill pipeline.
//!
//! Two families, both pinned against the brute-force reference miner:
//!
//! * the whole [`OutOfCoreMiner::mine_stream`] pipeline across arbitrary
//!   byte budgets (from one-transaction shards to everything-resident)
//!   must reproduce the reference and leave the spill directory clean;
//! * **merge-order invariance** — slicing the transaction list into
//!   contiguous shards, building one terminal-pruned tree per shard,
//!   round-tripping every shard *and* every intermediate merge result
//!   through the v2 snapshot format on disk, and reducing the trees
//!   pairwise in an *arbitrary* order must report exactly the same closed
//!   sets as a sequential in-memory mine (DESIGN.md §17: the reduction is
//!   a fold over a commutative, associative merge).

use fim_core::reference::mine_reference;
use fim_core::{Budget, Item, MiningResult, RecodedDatabase};
use fim_ista::{load_spill, spill_tree, OutOfCoreConfig, OutOfCoreMiner, PrefixTree};
use proptest::collection::vec;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique spill directory per proptest case (cases of different tests run
/// concurrently in one process).
fn case_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("fim-oocore-prop-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Strategy: a database of up to 14 transactions over up to 9 items.
fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=9).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..14)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, num_items))
    })
}

/// Canonical (items, support) view of a mining result, for comparison.
fn canon(r: &MiningResult) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = r
        .sets
        .iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

/// Canonical view of a tree's report.
fn canon_tree(t: &PrefixTree, minsupp: u32) -> Vec<(Vec<Item>, u32)> {
    let mut v: Vec<(Vec<Item>, u32)> = t
        .report(minsupp)
        .into_iter()
        .map(|f| (f.items.as_slice().to_vec(), f.support))
        .collect();
    v.sort();
    v
}

/// Spills `tree` to a fresh file in `dir` and reloads it, so every tree
/// handed onward has survived the on-disk snapshot format.
fn round_trip(tree: &mut PrefixTree, dir: &Path, idx: usize) -> PrefixTree {
    let path = dir.join(format!("rt-{idx}.spill"));
    spill_tree(tree, &path).expect("spill");
    let back = load_spill(&path).expect("reload");
    let _ = fs::remove_file(&path);
    back
}

/// Reduces `trees` to one by repeatedly merging two members picked by a
/// seeded LCG — an arbitrary (not necessarily balanced or left-to-right)
/// pairwise reduction order — pruning each intermediate against the global
/// supports (a sound upper bound on what the other trees still hold) and
/// round-tripping it through disk.
fn reduce_in_seeded_order(
    mut trees: Vec<PrefixTree>,
    num_items: u32,
    supports: &[u32],
    minsupp: u32,
    dir: &Path,
    mut seed: u64,
) -> PrefixTree {
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    let mut idx = 0usize;
    while trees.len() > 1 {
        let right = trees.swap_remove(next() % trees.len());
        let mut left = trees.swap_remove(next() % trees.len());
        left.merge(&right);
        left.prune_keeping_terminals(supports, minsupp);
        left.validate_invariants();
        trees.push(round_trip(&mut left, dir, idx));
        idx += 1;
    }
    trees.pop().unwrap_or_else(|| PrefixTree::new(num_items))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The full pipeline across arbitrary byte budgets: identical to the
    /// reference, spill directory left clean.
    #[test]
    fn mine_stream_matches_reference_for_any_byte_budget(
        db in small_db(),
        minsupp in 1u32..6,
        mem_budget in 1u64..400,
    ) {
        let dir = case_dir("stream");
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(mem_budget, &dir));
        let txs = db.transactions();
        let mut i = 0usize;
        let (outcome, stats) = miner
            .mine_stream(
                db.num_items(),
                db.item_supports(),
                Some(txs.len() as u64),
                minsupp,
                &Budget::unlimited(),
                |buf| {
                    buf.clear();
                    if i < txs.len() {
                        buf.extend_from_slice(&txs[i]);
                        i += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                },
            )
            .expect("pipeline");
        prop_assert!(!outcome.is_interrupted());
        let got = outcome.into_result().canonicalized();
        let want = mine_reference(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want, "budget={} shards={}", mem_budget, stats.shards);
        let leftover = fs::read_dir(&dir).map_or(0, |d| d.count());
        prop_assert_eq!(leftover, 0, "spill dir not clean");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Merge-order invariance: any pairwise reduction order over disk
    /// round-tripped shard snapshots reports exactly what a sequential
    /// in-memory mine reports.
    #[test]
    fn any_pairwise_merge_order_matches_the_sequential_mine(
        db in small_db(),
        minsupp in 1u32..6,
        chunk in 1usize..5,
        order_seed in any::<u64>(),
    ) {
        let dir = case_dir("order");
        fs::create_dir_all(&dir).unwrap();
        let supports = db.item_supports();
        // one terminal-pruned tree per contiguous shard, each reloaded
        // from its on-disk snapshot before entering the reduction
        let mut trees = Vec::new();
        for (k, shard) in db.transactions().chunks(chunk).enumerate() {
            let mut t = PrefixTree::new(db.num_items());
            for tx in shard {
                t.add_transaction(tx);
            }
            t.prune_keeping_terminals(supports, minsupp);
            trees.push(round_trip(&mut t, &dir, 1000 + k));
        }
        let reduced = reduce_in_seeded_order(
            trees,
            db.num_items(),
            supports,
            minsupp,
            &dir,
            order_seed,
        );
        let want = canon(&mine_reference(&db, minsupp));
        prop_assert_eq!(
            canon_tree(&reduced, minsupp),
            want,
            "chunk={} seed={}",
            chunk,
            order_seed
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Property tests for the streaming API: at every prefix of a random
//! stream, the reported closed sets and all support queries must match the
//! brute-force reference over that prefix.

use fim_core::reference::mine_reference;
use fim_core::{ItemSet, RecodedDatabase};
use fim_ista::IstaStream;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stream_prefixes_match_reference(
        txs in vec(vec(0u32..7, 1..8usize), 1..10),
        minsupp in 1u32..4,
    ) {
        let mut stream = IstaStream::new(7);
        for k in 0..txs.len() {
            stream.push(&txs[k]);
            let db = RecodedDatabase::from_dense(txs[..=k].to_vec(), 7);
            let want = mine_reference(&db, minsupp);
            let got = stream.closed_sets(minsupp);
            prop_assert_eq!(got, want, "prefix {}", k + 1);
        }
    }

    #[test]
    fn stream_supports_match_scans(
        txs in vec(vec(0u32..6, 1..7usize), 1..8),
        probe_raw in vec(0u32..6, 0..4),
    ) {
        let probe = ItemSet::new(probe_raw);
        let mut stream = IstaStream::new(6);
        for k in 0..txs.len() {
            stream.push(&txs[k]);
            let db = RecodedDatabase::from_dense(txs[..=k].to_vec(), 6);
            prop_assert_eq!(stream.support_of(&probe), db.support(&probe));
        }
    }

    #[test]
    fn stream_equals_batch_at_end(
        txs in vec(vec(0u32..8, 1..8usize), 1..12),
        minsupp in 1u32..4,
    ) {
        use fim_core::ClosedMiner;
        let mut stream = IstaStream::new(8);
        for t in &txs {
            stream.push(t);
        }
        let db = RecodedDatabase::from_dense(txs, 8);
        let batch = fim_ista::IstaMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(stream.closed_sets(minsupp), batch);
    }
}

//! Out-of-core IsTa: mine databases larger than memory by slicing the
//! transaction stream into contiguous shards sized to a byte budget,
//! mining each shard sequentially, spilling every shard tree to disk as a
//! versioned snapshot, and merge-reducing the spilled trees pairwise from
//! disk.
//!
//! The soundness argument is the same additive support identity the
//! data-parallel miner rests on (see [`crate::parallel`]): shards are
//! disjoint contiguous transaction multisets, each shard tree starts from
//! a snapshot of the *global* item support counts and decrements only what
//! it consumed itself, so the per-shard viability bound stays safe, and
//! replaying one spilled tree's stored transactions into another computes
//! exactly the cross-shard intersections with correct summed supports.
//!
//! What is different from the parallel miner is the *resident-set shape*:
//! at no point does the pipeline hold more than
//!
//! * one shard's transaction slice (bounded by
//!   [`OutOfCoreConfig::mem_budget`] plus one transaction), **or**
//! * two spilled trees being merged (each pruned against near-final
//!   remaining counts before the replay touches them),
//!
//! plus one `u32` per item per outstanding spill for the remaining-count
//! vectors. Everything else lives in the spill directory as v2 snapshots
//! ([`crate::snapshot`]), fully CRC-validated on every reload — a corrupted
//! or truncated intermediate spill surfaces as [`FimError::Corrupt`] naming
//! the offending file, never as a silently wrong answer.
//!
//! Spill files are written atomically (temporary name, then rename) and
//! removed eagerly as soon as a merge has consumed them; a scope guard
//! removes every file the run created on *all* exits — success, budget
//! trip, error, or panic — so the spill directory is left clean.

use crate::miner::{IstaConfig, PrunePacer, PrunePolicy};
use crate::parallel::test_hooks;
use crate::snapshot;
use crate::tree::{PrefixTree, TreeMemoryStats};
use fim_core::fault::{self, points, RetryPolicy};
use fim_core::{
    checkpoint, Budget, FimError, Governor, Item, MineOutcome, MiningResult, Progress, TripReason,
};
use fim_obs::{Counter, Counters, Obs, ProgressSnapshot};
use std::collections::VecDeque;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Estimated resident bytes of one shard-buffered transaction: its items
/// plus allocator/`Vec` bookkeeping. Deliberately a little pessimistic so
/// the shard slice stays *under* the budget rather than over it.
const TX_OVERHEAD_BYTES: u64 = 32;

/// Tuning knobs for [`OutOfCoreMiner`].
#[derive(Clone, Debug)]
pub struct OutOfCoreConfig {
    /// Byte target for one shard's buffered transaction slice. The slicer
    /// closes a shard as soon as the estimated resident size of the
    /// buffered transactions reaches this value (every shard holds at
    /// least one transaction, so a tiny budget degrades to
    /// one-transaction shards, not an error).
    pub mem_budget: u64,
    /// Directory receiving the spill snapshots. Created if missing; the
    /// files the run creates are always removed before it returns.
    pub spill_dir: PathBuf,
    /// Per-shard and per-merge pruning placement policy (same semantics
    /// as the sequential miner's).
    pub policy: PrunePolicy,
    /// Coalesce each shard's (hopeless-item-filtered) transactions into
    /// `(items, weight)` pairs before insertion (same semantics as
    /// [`IstaConfig::coalesce`]).
    pub coalesce: bool,
    /// Compact shard/merge trees after pruning passes that freed slots
    /// (same semantics as [`IstaConfig::compact`]).
    pub compact: bool,
    /// Bounded retry for transient spill-write failures (the CLI's
    /// `--io-retries`). The default retries nothing.
    pub retry: RetryPolicy,
}

impl OutOfCoreConfig {
    /// Configuration with an explicit byte budget and spill directory and
    /// the sequential miner's default policy toggles.
    pub fn new(mem_budget: u64, spill_dir: impl Into<PathBuf>) -> Self {
        let seq = IstaConfig::default();
        OutOfCoreConfig {
            mem_budget,
            spill_dir: spill_dir.into(),
            policy: seq.policy,
            coalesce: seq.coalesce,
            compact: seq.compact,
            retry: RetryPolicy::default(),
        }
    }
}

/// Run report of one [`OutOfCoreMiner`] pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutOfCoreStats {
    /// Shards the stream was sliced into (1 means the whole database fit
    /// one slice and was mined purely in memory, with no spill at all).
    pub shards: u64,
    /// Snapshots written to the spill directory: every spilled shard tree
    /// plus every non-final merge result.
    pub spilled: u64,
    /// Total bytes of all spill snapshots written.
    pub spill_bytes: u64,
    /// Pairwise merge-reduce steps performed (`shards - 1` on a healthy
    /// multi-shard run).
    pub merge_passes: u64,
    /// Arena occupancy of the fully reduced tree, before reporting.
    pub memory: TreeMemoryStats,
    /// Hot-loop counters summed over every shard mine and every merge
    /// replay, with the spill bookkeeping ([`Counter::ShardsSpilled`],
    /// [`Counter::SpillBytes`], [`Counter::MergePasses`]) folded in.
    pub counters: Counters,
}

/// Writes `tree` to `path` as a v2 snapshot, atomically *and durably*: the
/// bytes go to a sibling `.tmp` file which is explicitly flushed (write
/// errors surface here instead of being swallowed by `BufWriter::drop`)
/// and `sync_all`ed before the rename over `path`, and the parent
/// directory is fsynced after it — so once this returns, the snapshot
/// survives power loss and `fs::metadata` sizes are trustworthy. Returns
/// the snapshot size in bytes.
///
/// Threads the `spill.write` / `spill.sync` / `spill.rename` fault points
/// ([`fim_core::fault`]); disarmed they cost one load each.
pub fn spill_tree(tree: &mut PrefixTree, path: &Path) -> Result<u64, FimError> {
    let tmp = tmp_path(path);
    let mut w = std::io::BufWriter::new(fs::File::create(&tmp)?);
    snapshot::write_tree(tree, &mut w)?;
    w.flush()?;
    let f = w.into_inner().map_err(|e| FimError::Io(e.into_error()))?;
    // an armed `partial` fault tears the flushed temporary in half and
    // lets the rename publish it — the CRC catches it on the next read
    fault::hit_write(points::SPILL_WRITE, || {
        let half = f.metadata().map(|m| m.len() / 2).unwrap_or(0);
        let _ = f.set_len(half);
    })?;
    fault::hit(points::SPILL_SYNC)?;
    f.sync_all()?;
    let bytes = f.metadata()?.len();
    drop(f);
    fault::hit(points::SPILL_RENAME)?;
    fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(bytes)
}

/// Fsyncs the directory containing `path`, making a just-renamed entry
/// durable.
pub fn sync_parent_dir(path: &Path) -> Result<(), FimError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::File::open(parent)?.sync_all()?;
        }
    }
    Ok(())
}

/// Reloads a spill snapshot, re-wrapping any [`FimError::Corrupt`] so the
/// message names the offending file. Threads the `merge.read` fault point.
pub fn load_spill(path: &Path) -> Result<PrefixTree, FimError> {
    fault::hit(points::MERGE_READ)?;
    let mut r = std::io::BufReader::new(fs::File::open(path)?);
    snapshot::read_tree(&mut r).map_err(|e| match e {
        FimError::Corrupt(msg) => FimError::Corrupt(format!("{}: {msg}", path.display())),
        other => other,
    })
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Scope guard over the files a pipeline run touches in the spill
/// directory. Temporary `.tmp` siblings are removed on *every* exit —
/// success, error return, budget trip, or panic. Completed spill files are
/// removed on drop unless the run is journaling to a resumable manifest
/// and did not reach [`complete`](SpillGuard::complete): a journaled run
/// that dies (crash, injected fault, `ENOSPC` degradation) must leave its
/// completed spills on disk for `--resume-spill`, while an unjournaled run
/// keeps the original always-clean contract.
struct SpillGuard {
    tmps: Vec<PathBuf>,
    finals: Vec<PathBuf>,
    keep_on_failure: bool,
    completed: bool,
}

impl SpillGuard {
    fn new(keep_on_failure: bool) -> Self {
        SpillGuard {
            tmps: Vec::new(),
            finals: Vec::new(),
            keep_on_failure,
            completed: false,
        }
    }

    /// Tracks the spill at `path` (and its temporary sibling) for cleanup.
    fn track(&mut self, path: &Path) {
        self.tmps.push(tmp_path(path));
        self.finals.push(path.to_path_buf());
    }

    /// Marks the run finished: every tracked file is removed on drop.
    fn complete(&mut self) {
        self.completed = true;
    }
}

impl Drop for SpillGuard {
    fn drop(&mut self) {
        for f in &self.tmps {
            let _ = fs::remove_file(f);
        }
        if self.completed || !self.keep_on_failure {
            for f in &self.finals {
                let _ = fs::remove_file(f);
            }
        }
    }
}

/// A half-open range `[start, end)` of stream transaction indices. Indices
/// count the *non-empty* recoded transactions of the stream in order, so
/// they are deterministic across runs over the same input.
pub type TxInterval = (u64, u64);

/// Sink for the completed-spill journal (the `MANIFEST` writer lives in
/// `fim-io`; the miner stays format-agnostic behind this trait).
///
/// [`record`](SpillJournal::record) is called exactly once per spill file,
/// *after* the file is durably on disk under its final name, with the
/// transaction intervals its tree covers. A merge re-spill's record
/// strictly interval-contains its two inputs' records, which is how the
/// reader tells live spills from consumed ones.
pub trait SpillJournal {
    /// Journals a durably completed spill covering `intervals`.
    fn record(&mut self, path: &Path, intervals: &[TxInterval]) -> Result<(), FimError>;
}

/// One verified spill file adopted from a previous run's manifest.
#[derive(Clone, Debug)]
pub struct AdoptedSpill {
    /// The spill snapshot, already CRC-verified by the caller.
    pub path: PathBuf,
    /// The stream transaction intervals its tree covers, sorted and
    /// disjoint.
    pub intervals: Vec<TxInterval>,
}

/// What `--resume-spill` recovered from a previous run's manifest: the
/// verified spills to adopt instead of re-mining, and where the spill-file
/// numbering should continue so resumed runs never collide with adopted
/// files.
#[derive(Clone, Debug, Default)]
pub struct ResumePlan {
    /// Verified spills, in manifest order. Their interval sets are
    /// pairwise disjoint (the manifest reader keeps only live records).
    pub adopted: Vec<AdoptedSpill>,
    /// First free `shard-NNNN.spill` index.
    pub next_shard_idx: u64,
    /// First free `merge-NNNN.spill` index.
    pub next_merge_idx: u64,
}

/// One outstanding spill: its snapshot on disk, the item occurrences *not
/// yet folded into it* — the global support snapshot minus everything the
/// covered transactions consumed (the merge-safety invariant of
/// [`crate::parallel`], kept in memory because it is one `u32` per item) —
/// and the stream intervals it covers, for journaling.
struct Spill {
    path: PathBuf,
    remaining: Vec<u32>,
    intervals: Vec<TxInterval>,
}

/// Cursor over the adopted spills' (disjoint, sorted) intervals: maps a
/// monotonically increasing transaction index to the spill slot covering
/// it, in O(1) amortised.
struct Coverage {
    iv: Vec<(u64, u64, usize)>,
    pos: usize,
}

impl Coverage {
    fn new(adopted: &[AdoptedSpill]) -> Self {
        let mut iv: Vec<(u64, u64, usize)> = adopted
            .iter()
            .enumerate()
            .flat_map(|(slot, a)| a.intervals.iter().map(move |&(s, e)| (s, e, slot)))
            .collect();
        iv.sort_unstable();
        Coverage { iv, pos: 0 }
    }

    /// The slot covering `idx`, if any. `idx` must not decrease between
    /// calls.
    fn slot(&mut self, idx: u64) -> Option<usize> {
        while self.pos < self.iv.len() && self.iv[self.pos].1 <= idx {
            self.pos += 1;
        }
        match self.iv.get(self.pos) {
            Some(&(s, _, slot)) if s <= idx => Some(slot),
            _ => None,
        }
    }
}

/// Extends `intervals` (sorted, in construction order) with `idx`,
/// growing the last interval when contiguous.
fn push_tx(intervals: &mut Vec<TxInterval>, idx: u64) {
    match intervals.last_mut() {
        Some(last) if last.1 == idx => last.1 = idx + 1,
        _ => intervals.push((idx, idx + 1)),
    }
}

/// The sorted union of two disjoint interval lists, coalescing adjacency.
fn union_intervals(a: &[TxInterval], b: &[TxInterval]) -> Vec<TxInterval> {
    let mut all: Vec<TxInterval> = a.iter().chain(b.iter()).copied().collect();
    all.sort_unstable();
    let mut out: Vec<TxInterval> = Vec::with_capacity(all.len());
    for (s, e) in all {
        match out.last_mut() {
            Some(last) if last.1 >= s => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// A loaded tree travelling through the merge reduction with its
/// remaining-count vector.
type TreeAndRemaining = (PrefixTree, Vec<u32>);

/// Out-of-core shard-spill-merge miner over a transaction *stream*.
///
/// The miner never sees the whole database: the caller feeds it recoded
/// transactions one at a time (see [`OutOfCoreMiner::mine_stream`]), and
/// the pipeline bounds its resident set as described in the module docs.
#[derive(Clone, Debug)]
pub struct OutOfCoreMiner {
    /// Pipeline configuration.
    pub config: OutOfCoreConfig,
}

impl OutOfCoreMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: OutOfCoreConfig) -> Self {
        OutOfCoreMiner { config }
    }

    /// Mines the closed frequent item sets of a streamed database.
    ///
    /// `next` is the transaction source: it fills its argument with the
    /// next recoded transaction (dense item codes, sorted, duplicate-free
    /// — e.g. via [`fim_core::StreamingRecode::encode_transaction`]) and
    /// returns `Ok(false)` when the stream is exhausted. Empty
    /// transactions are skipped. `global_supports` must be the item
    /// support counts over the *whole* stream (pass 1 of a two-pass
    /// reader), `total_transactions` the stream length if known (used
    /// only for progress reporting on interruption).
    ///
    /// The `budget` governs tree growth exactly as in the sequential and
    /// parallel miners: shard mining and merge replays checkpoint per
    /// transaction, and the first trip stops further stream consumption
    /// while the already-spilled shards are still reduced, so the partial
    /// result is exact for the processed transaction subset. Graceful
    /// degradation (`Budget::degrade`) is a sequential-miner feature and
    /// is ignored here, as in the parallel miner.
    pub fn mine_stream<F>(
        &self,
        num_items: u32,
        global_supports: &[u32],
        total_transactions: Option<u64>,
        minsupp: u32,
        budget: &Budget,
        next: F,
    ) -> Result<(MineOutcome, OutOfCoreStats), FimError>
    where
        F: FnMut(&mut Vec<Item>) -> Result<bool, FimError>,
    {
        self.mine_stream_with(
            num_items,
            global_supports,
            total_transactions,
            minsupp,
            budget,
            next,
            None,
            ResumePlan::default(),
            &mut Obs::new(),
        )
    }

    /// [`mine_stream`](Self::mine_stream) plus the crash-safety plumbing.
    ///
    /// With a `journal`, every durably completed spill file is recorded
    /// (path + covered transaction intervals) the moment it is safe on
    /// disk, and a failed run — crash, injected fault, `ENOSPC`
    /// degradation — leaves its completed spills in the spill directory
    /// instead of cleaning them, so the journal's reader can build a
    /// [`ResumePlan`] for the next run. A successful (or budget-tripped)
    /// run still leaves the directory clean.
    ///
    /// With a non-empty `resume` plan, the covered transactions of the
    /// adopted spills are *not* re-mined: the stream pass only replays
    /// their per-item decrements to reconstruct each adopted spill's
    /// remaining-count vector, uncovered transactions (holes from
    /// unverified or incomplete spills) are sliced into new shards, and
    /// the merge-reduce proceeds over adopted and new spills together.
    /// New spill files are numbered from the plan's `next_*` indices so
    /// they never collide with adopted files.
    ///
    /// Running out of spill-device space (`ENOSPC`, real or injected)
    /// does not fail the run: it trips [`TripReason::DiskFull`], stops
    /// consuming the stream, and folds every outstanding spill into the
    /// resident tree sequentially in memory — an exact partial over the
    /// processed prefix, with the journaled state left resumable.
    #[allow(clippy::too_many_arguments)]
    pub fn mine_stream_with<F>(
        &self,
        num_items: u32,
        global_supports: &[u32],
        total_transactions: Option<u64>,
        minsupp: u32,
        budget: &Budget,
        mut next: F,
        mut journal: Option<&mut dyn SpillJournal>,
        resume: ResumePlan,
        obs: &mut Obs,
    ) -> Result<(MineOutcome, OutOfCoreStats), FimError>
    where
        F: FnMut(&mut Vec<Item>) -> Result<bool, FimError>,
    {
        assert_eq!(
            global_supports.len(),
            num_items as usize,
            "global_supports must cover the item universe"
        );
        let cfg = &self.config;
        let minsupp = minsupp.max(1);
        fs::create_dir_all(&cfg.spill_dir)?;
        // startup cleanup: `.tmp` siblings left by a crashed run are never
        // live state (only renames publish), so they are removed, not read
        if let Ok(entries) = fs::read_dir(&cfg.spill_dir) {
            for entry in entries.flatten() {
                let p = entry.path();
                if p.extension().is_some_and(|e| e == "tmp") {
                    let _ = fs::remove_file(&p);
                }
            }
        }
        let journaling = journal.is_some();
        let mut guard = SpillGuard::new(journaling);
        let mut gov = (!budget.is_unlimited()).then(|| budget.start());
        let mut tripped: Option<TripReason> = None;
        let mut counters = Counters::new();
        let mut retries: u64 = 0;
        let mut stats = OutOfCoreStats::default();
        let resumed = resume.adopted.len() as u64;
        let mut coverage = Coverage::new(&resume.adopted);
        let mut spills: VecDeque<Spill> = resume
            .adopted
            .into_iter()
            .map(|a| {
                guard.track(&a.path);
                Spill {
                    path: a.path,
                    remaining: global_supports.to_vec(),
                    intervals: a.intervals,
                }
            })
            .collect();
        let mut next_shard_name = resume.next_shard_idx;
        let mut next_merge_name = resume.next_merge_idx;
        let mut resident: Option<TreeAndRemaining> = None;
        let mut buf: Vec<Item> = Vec::new();
        let mut source_done = false;
        let mut disk_full = false;
        let mut processed: u64 = 0;
        let mut tx_idx: u64 = 0;
        let mut peak_nodes: u64 = 0;
        // merge-replay work already done / the running estimate of one
        // merge pass's replay cost, both in stream-transaction units so
        // they compose with `processed` for weighted progress reporting
        let mut merge_done: u64 = 0;
        let mut faults_seen = fault::injected_count();
        for (slot, s) in spills.iter().enumerate() {
            obs.instant(
                "adopt",
                &[
                    ("slot", slot as u64),
                    ("intervals", s.intervals.len() as u64),
                ],
            );
        }
        // one estimated merge pass ≈ replaying one average shard slice
        macro_rules! merge_estimate {
            ($queue:expr) => {{
                let avg = processed / stats.shards.max(1);
                ($queue as u64).saturating_sub(1) * avg.max(1)
            }};
        }
        macro_rules! progress_tick {
            ($queue:expr) => {{
                let pending = merge_done + merge_estimate!($queue);
                obs.tick(&ProgressSnapshot {
                    processed: processed + merge_done,
                    total: total_transactions,
                    pending,
                    peak_nodes,
                    sets: 0,
                });
            }};
        }
        macro_rules! note_faults {
            () => {{
                let now = fault::injected_count();
                if now > faults_seen {
                    obs.instant("fault_injected", &[("count", now - faults_seen)]);
                    faults_seen = now;
                }
            }};
        }

        // Phase 1: stream pass. Transactions covered by an adopted spill
        // only replay their per-item decrements into that spill's
        // remaining counts; uncovered ones are sliced into shards sized to
        // the byte budget, mined, and spilled.
        obs.span_enter("stream");
        while !source_done && tripped.is_none() {
            let mut shard: Vec<Vec<Item>> = Vec::new();
            let mut intervals: Vec<TxInterval> = Vec::new();
            let mut bytes = 0u64;
            while bytes < cfg.mem_budget.max(1) {
                if !next(&mut buf)? {
                    source_done = true;
                    break;
                }
                if buf.is_empty() {
                    continue;
                }
                let idx = tx_idx;
                tx_idx += 1;
                if let Some(slot) = coverage.slot(idx) {
                    for &i in buf.iter() {
                        spills[slot].remaining[i as usize] -= 1;
                    }
                    processed += 1;
                    if let Some(g) = gov.as_mut() {
                        g.add_processed(1);
                    }
                    continue;
                }
                bytes += buf.len() as u64 * 4 + TX_OVERHEAD_BYTES;
                push_tx(&mut intervals, idx);
                shard.push(std::mem::take(&mut buf));
            }
            if shard.is_empty() {
                // a fully covered stretch, or the stream ended
                continue;
            }
            // §3.4 processing order holds *within* each shard; the closed
            // sets are invariant under the shard boundaries themselves.
            shard.sort_unstable_by(|a, b| fim_core::cmp_size_then_desc_lex(a, b));
            let shard_idx = stats.shards as usize;
            test_hooks::maybe_panic(shard_idx);
            let was_tripped = tripped.is_some();
            obs.span_enter("shard");
            let mined = mine_shard(
                shard,
                num_items,
                global_supports,
                minsupp,
                cfg,
                &mut gov,
                &mut tripped,
                &mut processed,
            );
            obs.span_exit();
            stats.shards += 1;
            peak_nodes = peak_nodes.max(mined.0.node_count() as u64);
            obs.gauge_arena_bytes(mined.0.memory_stats().approx_bytes as u64);
            if !was_tripped && tripped.is_some() {
                obs.instant("budget_trip", &[("shard", shard_idx as u64)]);
            }
            if source_done && spills.is_empty() {
                // the whole stream fit one slice: pure in-memory run
                resident = Some(mined);
                break;
            }
            let (mut tree, remaining) = mined;
            counters.merge(tree.counters());
            let path = cfg
                .spill_dir
                .join(format!("shard-{next_shard_name:04}.spill"));
            next_shard_name += 1;
            guard.track(&path);
            let retries_before = retries;
            obs.span_enter("spill");
            let spilled = fault::retry_io(cfg.retry, &mut retries, || spill_tree(&mut tree, &path));
            obs.span_exit();
            note_faults!();
            if retries > retries_before {
                obs.instant("retry", &[("attempts", retries - retries_before)]);
            }
            match spilled {
                Ok(b) => {
                    stats.spill_bytes += b;
                    stats.spilled += 1;
                    obs.instant("spill", &[("shard", shard_idx as u64), ("bytes", b)]);
                    obs.gauge_spill_bytes(stats.spill_bytes);
                }
                Err(FimError::Io(e)) if fault::is_enospc(&e) => {
                    // out of spill space: keep this shard's tree resident
                    // and degrade to the in-memory fold below
                    tripped.get_or_insert(TripReason::DiskFull);
                    disk_full = true;
                    obs.instant("disk_full", &[("shard", shard_idx as u64)]);
                    resident = Some((tree, remaining));
                    break;
                }
                Err(e) => return Err(e),
            }
            // a budget-tripped shard covers only an inserted prefix of its
            // slice, so it is never journaled as complete
            if tripped.is_none() {
                if let Some(j) = journal.as_mut() {
                    match j.record(&path, &intervals) {
                        Ok(()) => {}
                        Err(FimError::Io(e)) if fault::is_enospc(&e) => {
                            tripped.get_or_insert(TripReason::DiskFull);
                            disk_full = true;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            spills.push_back(Spill {
                path,
                remaining,
                intervals,
            });
            progress_tick!(spills.len());
        }
        obs.span_exit();

        // Phase 2: pairwise merge-reduce the spills from disk. Two trees
        // resident at a time; intermediate results go back to disk unless
        // they are the root of the reduction.
        obs.span_enter("merge");
        while !disk_full && spills.len() >= 2 {
            let a = spills.pop_front().expect("len checked");
            let b = spills.pop_front().expect("len checked");
            obs.span_enter("pass");
            let ta = load_spill(&a.path)?;
            let tb = load_spill(&b.path)?;
            if !journaling {
                // eager delete; journaled runs defer until the merge
                // result is durable so every live manifest record always
                // has its file on disk
                let _ = fs::remove_file(&a.path);
                let _ = fs::remove_file(&b.path);
            }
            let is_final = spills.is_empty();
            let covered = union_intervals(&a.intervals, &b.intervals);
            // replay the lighter side into the heavier one
            let (mut left, right) = if tb.transactions_processed() > ta.transactions_processed() {
                ((tb, b.remaining), (ta, a.remaining))
            } else {
                ((ta, a.remaining), (tb, b.remaining))
            };
            let was_tripped = tripped.is_some();
            merge_spilled(
                &mut left,
                right,
                minsupp,
                cfg,
                &mut gov,
                &mut tripped,
                is_final,
            );
            stats.merge_passes += 1;
            merge_done += merge_estimate!(2);
            peak_nodes = peak_nodes.max(left.0.node_count() as u64);
            obs.gauge_arena_bytes(left.0.memory_stats().approx_bytes as u64);
            obs.instant("merge_pass", &[("pass", stats.merge_passes)]);
            if !was_tripped && tripped.is_some() {
                obs.instant("budget_trip", &[("pass", stats.merge_passes)]);
            }
            progress_tick!(spills.len() + 1);
            if is_final {
                resident = Some(left);
                obs.span_exit();
                continue;
            }
            let (ref mut tree, _) = left;
            counters.merge(tree.counters());
            let path = cfg
                .spill_dir
                .join(format!("merge-{next_merge_name:04}.spill"));
            next_merge_name += 1;
            guard.track(&path);
            let retries_before = retries;
            let spilled = fault::retry_io(cfg.retry, &mut retries, || spill_tree(tree, &path));
            note_faults!();
            if retries > retries_before {
                obs.instant("retry", &[("attempts", retries - retries_before)]);
            }
            match spilled {
                Ok(b) => {
                    stats.spill_bytes += b;
                    stats.spilled += 1;
                    obs.instant("spill", &[("pass", stats.merge_passes), ("bytes", b)]);
                    obs.gauge_spill_bytes(stats.spill_bytes);
                }
                Err(FimError::Io(e)) if fault::is_enospc(&e) => {
                    // the merged tree stays resident; its (journaled)
                    // inputs stay on disk for resume
                    tripped.get_or_insert(TripReason::DiskFull);
                    disk_full = true;
                    obs.instant("disk_full", &[("pass", stats.merge_passes)]);
                    resident = Some(left);
                    obs.span_exit();
                    continue;
                }
                Err(e) => return Err(e),
            }
            let mut journaled = !journaling;
            if tripped.is_none() {
                if let Some(j) = journal.as_mut() {
                    match j.record(&path, &covered) {
                        Ok(()) => journaled = true,
                        Err(FimError::Io(e)) if fault::is_enospc(&e) => {
                            tripped.get_or_insert(TripReason::DiskFull);
                            disk_full = true;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            if journaling && journaled {
                // the merge result is durable *and* journaled: its inputs'
                // records are now interval-contained (dead), so the files
                // can finally go
                let _ = fs::remove_file(&a.path);
                let _ = fs::remove_file(&b.path);
            }
            spills.push_back(Spill {
                path,
                remaining: left.1,
                intervals: covered,
            });
            obs.span_exit();
        }

        // Degraded fold: the spill device is full, so every outstanding
        // spill is folded into the resident tree sequentially in memory —
        // nothing written, nothing deleted, journaled state left
        // resumable. The footprint stays one tree plus one reloaded spill.
        if disk_full {
            let mut acc = resident
                .take()
                .unwrap_or_else(|| (PrefixTree::new(num_items), global_supports.to_vec()));
            while let Some(s) = spills.pop_front() {
                let is_final = spills.is_empty();
                obs.span_enter("pass");
                let t = load_spill(&s.path)?;
                merge_spilled(
                    &mut acc,
                    (t, s.remaining),
                    minsupp,
                    cfg,
                    &mut gov,
                    &mut tripped,
                    is_final,
                );
                stats.merge_passes += 1;
                merge_done += merge_estimate!(2);
                peak_nodes = peak_nodes.max(acc.0.node_count() as u64);
                obs.instant("merge_pass", &[("pass", stats.merge_passes)]);
                obs.span_exit();
                progress_tick!(spills.len() + 1);
            }
            resident = Some(acc);
        }
        obs.span_exit();

        // Phase 3: report from the single surviving tree.
        let (mut tree, remaining) = match resident {
            Some(t) => t,
            None => match spills.pop_front() {
                // a lone spill with nothing to merge into it (a resumed
                // run whose stream was fully covered, or a trip right at a
                // shard boundary)
                Some(s) => {
                    let t = load_spill(&s.path)?;
                    if !journaling {
                        let _ = fs::remove_file(&s.path);
                    }
                    (t, s.remaining)
                }
                None => (PrefixTree::new(num_items), global_supports.to_vec()),
            },
        };
        obs.span_enter("report");
        if !matches!(cfg.policy, PrunePolicy::Never) {
            // terminal-reducing prune: this tree is only reported now
            tree.prune(&remaining, minsupp);
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
        counters.merge(tree.counters());
        counters.add(Counter::ShardsSpilled, stats.spilled);
        counters.add(Counter::SpillBytes, stats.spill_bytes);
        counters.add(Counter::MergePasses, stats.merge_passes);
        counters.add(Counter::FaultsInjected, fault::injected_count());
        counters.add(Counter::RetriesAttempted, retries);
        counters.add(Counter::ShardsResumed, resumed);
        stats.counters = counters;
        stats.memory = tree.memory_stats();
        obs.gauge_arena_bytes(stats.memory.approx_bytes as u64);
        obs.gauge_nodes(peak_nodes.max(tree.node_count() as u64));
        let result = MiningResult {
            sets: tree.report(minsupp),
        };
        obs.span_exit();
        let outcome = match tripped {
            Some(reason) => MineOutcome::Interrupted {
                partial: result,
                reason,
                progress: Progress {
                    processed,
                    total: total_transactions,
                },
            },
            None => MineOutcome::complete(result),
        };
        // a journaled run that ran out of disk leaves its completed spills
        // (and the caller leaves the manifest) for --resume-spill; every
        // other exit removes them
        if !(journaling && disk_full) {
            guard.complete();
        }
        drop(guard);
        Ok((outcome, stats))
    }
}

/// Mines one shard slice into its own tree — the sequential sibling of
/// [`crate::parallel`]'s shard miner, with the same merge-safety
/// discipline: globally hopeless items are filtered before insertion and
/// only the terminal-keeping prune runs, so the stored transactions stay
/// exact for the later replay.
#[allow(clippy::too_many_arguments)]
fn mine_shard(
    txs: Vec<Vec<Item>>,
    num_items: u32,
    global_supports: &[u32],
    minsupp: u32,
    cfg: &OutOfCoreConfig,
    gov: &mut Option<Governor>,
    tripped: &mut Option<TripReason>,
    processed: &mut u64,
) -> TreeAndRemaining {
    let mut tree = PrefixTree::new(num_items);
    let mut remaining: Vec<u32> = global_supports.to_vec();
    let mut pacer = PrunePacer::new(cfg.policy);
    let mut filtered: Vec<Vec<Item>> = Vec::with_capacity(txs.len());
    for t in txs {
        let mut f = Vec::with_capacity(t.len());
        for i in t {
            if global_supports[i as usize] >= minsupp {
                f.push(i);
            } else {
                remaining[i as usize] -= 1;
            }
        }
        filtered.push(f);
    }
    let weighted: Vec<(&[Item], u32)> = if cfg.coalesce {
        fim_core::coalesce(&filtered)
    } else {
        filtered.iter().map(|t| (t.as_slice(), 1)).collect()
    };
    for (t, w) in &weighted {
        for &i in t.iter() {
            remaining[i as usize] -= w;
        }
        tree.add_transaction_weighted(t, *w);
        *processed += u64::from(*w);
        if let Some(g) = gov.as_mut() {
            g.add_processed(u64::from(*w));
        }
        if let Some(reason) =
            checkpoint!(gov, tree.node_count(), tree.memory_stats().approx_bytes, 0)
        {
            // stop inserting; the tree stays merge-safe and represents
            // exactly the inserted prefix
            if tripped.is_none() {
                *tripped = Some(reason);
            }
            break;
        }
        if pacer.due(tree.node_count()) {
            tree.prune_keeping_terminals(&remaining, minsupp);
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
    }
    (tree, remaining)
}

/// Folds `right` into `left` — [`crate::parallel`]'s pruned merge replay
/// over reloaded spill trees. Remaining counts are decremented transaction
/// by transaction during the replay; `is_final` marks the root of the
/// reduction, whose result is only reported and may therefore use the
/// plain (terminal-reducing) prune.
fn merge_spilled(
    left: &mut TreeAndRemaining,
    right: TreeAndRemaining,
    minsupp: u32,
    cfg: &OutOfCoreConfig,
    gov: &mut Option<Governor>,
    tripped: &mut Option<TripReason>,
    is_final: bool,
) {
    let (tree, remaining) = left;
    let mut pacer = PrunePacer::new(cfg.policy);
    // prune against this side's own remaining counts before the replay
    // touches anything — the reloaded shard trees were pruned against
    // near-global (weak) counts only
    if !matches!(cfg.policy, PrunePolicy::Never) {
        if is_final {
            tree.prune(remaining, minsupp);
        } else {
            tree.prune_keeping_terminals(remaining, minsupp);
        }
        if cfg.compact {
            tree.compact_if_fragmented();
        }
    }
    pacer.pruned(tree.node_count());
    let replay: Result<(), TripReason> = tree.try_merge_with(&right.0, |tree, t, w| {
        for &i in t {
            remaining[i as usize] -= w;
        }
        if pacer.due(tree.node_count()) {
            if is_final {
                tree.prune(remaining, minsupp);
            } else {
                tree.prune_keeping_terminals(remaining, minsupp);
            }
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
        match checkpoint!(gov, tree.node_count(), tree.memory_stats().approx_bytes, 0) {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    });
    if let Err(reason) = replay {
        // the merged tree holds the replayed prefix exactly; the rest of
        // the donor is dropped — sound partial, same as the parallel miner
        if tripped.is_none() {
            *tripped = Some(reason);
        }
    }
    tree.absorb_counters(right.0.counters());
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;
    use fim_core::RecodedDatabase;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fim-oocore-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn mine_db(
        db: &RecodedDatabase,
        minsupp: u32,
        mem_budget: u64,
        dir: &Path,
    ) -> (MineOutcome, OutOfCoreStats) {
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(mem_budget, dir));
        let txs = db.transactions();
        let mut i = 0usize;
        miner
            .mine_stream(
                db.num_items(),
                db.item_supports(),
                Some(txs.len() as u64),
                minsupp,
                &Budget::unlimited(),
                move |buf| {
                    buf.clear();
                    if i < txs.len() {
                        buf.extend_from_slice(&txs[i]);
                        i += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                },
            )
            .expect("pipeline")
    }

    fn dir_is_empty(dir: &Path) -> bool {
        fs::read_dir(dir).map_or(true, |d| d.count() == 0)
    }

    #[test]
    fn matches_reference_across_budgets_and_minsupps() {
        let db = paper_db();
        let dir = temp_dir("ref");
        // budgets chosen to force 1, 2-3, and 8 shards on the paper db
        for mem_budget in [1u64, 100, 1 << 20] {
            for minsupp in 1..=8 {
                let want = mine_reference(&db, minsupp);
                let (outcome, stats) = mine_db(&db, minsupp, mem_budget, &dir);
                assert!(!outcome.is_interrupted());
                let got = outcome.into_result().canonicalized();
                assert_eq!(got, want, "budget={mem_budget} minsupp={minsupp}");
                if mem_budget == 1 {
                    assert_eq!(stats.shards, 8, "one transaction per shard");
                    assert_eq!(stats.merge_passes, stats.shards - 1);
                }
                if mem_budget == 1 << 20 {
                    assert_eq!(stats.shards, 1, "everything fits in memory");
                    assert_eq!(stats.spilled, 0, "single shard never spills");
                }
                assert!(dir_is_empty(&dir), "spill dir not clean");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_round_trip_reports_identically() {
        let db = paper_db();
        let dir = temp_dir("rt");
        fs::create_dir_all(&dir).unwrap();
        let mut tree = PrefixTree::new(db.num_items());
        for t in db.transactions() {
            tree.add_transaction(t);
        }
        let path = dir.join("t.spill");
        let bytes = spill_tree(&mut tree, &path).expect("spill");
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        let back = load_spill(&path).expect("load");
        assert_eq!(back.report(2), tree.report(2));
        assert!(!path.with_file_name("t.spill.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_spill_names_the_corrupt_file() {
        let db = paper_db();
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        let mut tree = PrefixTree::new(db.num_items());
        for t in db.transactions() {
            tree.add_transaction(t);
        }
        let path = dir.join("bad.spill");
        spill_tree(&mut tree, &path).expect("spill");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = load_spill(&path).unwrap_err();
        assert!(matches!(err, FimError::Corrupt(_)), "{err}");
        assert!(
            err.to_string().contains("bad.spill"),
            "error must name the file: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn node_budget_trips_with_sound_partial_and_clean_dir() {
        let db = paper_db();
        let dir = temp_dir("budget");
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(1, &dir));
        let txs = db.transactions();
        let mut i = 0usize;
        let budget = Budget::unlimited().with_max_nodes(2);
        let (outcome, _) = miner
            .mine_stream(
                db.num_items(),
                db.item_supports(),
                Some(txs.len() as u64),
                1,
                &budget,
                move |buf| {
                    buf.clear();
                    if i < txs.len() {
                        buf.extend_from_slice(&txs[i]);
                        i += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                },
            )
            .expect("pipeline");
        match outcome {
            MineOutcome::Interrupted {
                partial, reason, ..
            } => {
                assert_eq!(reason, TripReason::NodeBudget);
                for fs in &partial.sets {
                    assert!(
                        fs.support <= db.support(&fs.items),
                        "partial support of {:?} exceeds the full-database support",
                        fs.items
                    );
                }
            }
            other => panic!("expected interruption, got {other:?}"),
        }
        assert!(dir_is_empty(&dir), "spill dir not clean after trip");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_stream_mines_nothing() {
        let dir = temp_dir("empty");
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(64, &dir));
        let (outcome, stats) = miner
            .mine_stream(3, &[0, 0, 0], Some(0), 1, &Budget::unlimited(), |buf| {
                buf.clear();
                Ok(false)
            })
            .expect("pipeline");
        assert!(!outcome.is_interrupted());
        assert!(outcome.into_result().is_empty());
        assert_eq!(stats.shards, 0);
        assert!(dir_is_empty(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_expose_spill_counters() {
        let db = paper_db();
        let dir = temp_dir("stats");
        let (outcome, stats) = mine_db(&db, 2, 1, &dir);
        assert!(!outcome.is_interrupted());
        assert_eq!(stats.shards, 8);
        // 8 shard spills + 6 non-final merge spills
        assert_eq!(stats.spilled, 14);
        assert_eq!(stats.merge_passes, 7);
        assert!(stats.spill_bytes > 0);
        assert_eq!(stats.counters.get(Counter::ShardsSpilled), stats.spilled);
        assert_eq!(stats.counters.get(Counter::SpillBytes), stats.spill_bytes);
        assert_eq!(stats.counters.get(Counter::MergePasses), stats.merge_passes);
        let _ = fs::remove_dir_all(&dir);
    }

    /// In-memory journal recording `(file name, intervals)` per spill.
    #[derive(Default)]
    struct VecJournal {
        records: Vec<(String, Vec<TxInterval>)>,
    }

    impl SpillJournal for VecJournal {
        fn record(&mut self, path: &Path, intervals: &[TxInterval]) -> Result<(), FimError> {
            self.records.push((
                path.file_name().unwrap().to_string_lossy().into_owned(),
                intervals.to_vec(),
            ));
            Ok(())
        }
    }

    /// Filters journal records down to the live ones (not strictly
    /// interval-contained in another record) — a tiny stand-in for the
    /// manifest reader in fim-io.
    fn live(records: &[(String, Vec<TxInterval>)]) -> Vec<(String, Vec<TxInterval>)> {
        let contains = |outer: &[TxInterval], inner: &[TxInterval]| {
            inner
                .iter()
                .all(|&(s, e)| outer.iter().any(|&(os, oe)| os <= s && e <= oe))
        };
        records
            .iter()
            .filter(|(name, iv)| {
                !records
                    .iter()
                    .any(|(n2, iv2)| n2 != name && contains(iv2, iv))
            })
            .cloned()
            .collect()
    }

    fn mine_with(
        db: &RecodedDatabase,
        minsupp: u32,
        mem_budget: u64,
        dir: &Path,
        journal: Option<&mut dyn SpillJournal>,
        resume: ResumePlan,
    ) -> (MineOutcome, OutOfCoreStats) {
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(mem_budget, dir));
        let txs = db.transactions();
        let mut i = 0usize;
        miner
            .mine_stream_with(
                db.num_items(),
                db.item_supports(),
                Some(txs.len() as u64),
                minsupp,
                &Budget::unlimited(),
                move |buf| {
                    buf.clear();
                    if i < txs.len() {
                        buf.extend_from_slice(&txs[i]);
                        i += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                },
                journal,
                resume,
                &mut Obs::new(),
            )
            .expect("pipeline")
    }

    #[test]
    fn stale_tmp_files_are_removed_at_startup() {
        let db = paper_db();
        let dir = temp_dir("staletmp");
        fs::create_dir_all(&dir).unwrap();
        // a previous crashed run left a torn temporary behind
        let stale = dir.join("shard-0003.spill.tmp");
        fs::write(&stale, b"torn garbage from a dead process").unwrap();
        let (outcome, _) = mine_db(&db, 2, 1, &dir);
        assert!(!outcome.is_interrupted());
        assert_eq!(
            outcome.into_result().canonicalized(),
            mine_reference(&db, 2)
        );
        assert!(!stale.exists(), "stale .tmp must be cleaned at startup");
        assert!(dir_is_empty(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_records_every_spill_with_disjoint_base_intervals() {
        let db = paper_db();
        let dir = temp_dir("journal");
        let mut j = VecJournal::default();
        let (outcome, stats) = mine_with(&db, 2, 1, &dir, Some(&mut j), ResumePlan::default());
        assert!(!outcome.is_interrupted());
        // every spill journaled: 8 shards + 6 non-final merges
        assert_eq!(j.records.len() as u64, stats.spilled);
        // the shard records partition the 8 transactions
        let shard_txs: u64 = j
            .records
            .iter()
            .filter(|(n, _)| n.starts_with("shard-"))
            .flat_map(|(_, iv)| iv.iter())
            .map(|(s, e)| e - s)
            .sum();
        assert_eq!(shard_txs, 8);
        // liveness: the final merge is only reported, never spilled, so
        // containment filtering leaves exactly its two inputs, which
        // together cover the whole stream
        let alive = live(&j.records);
        assert_eq!(alive.len(), 2, "{alive:?}");
        let covered: Vec<TxInterval> = union_intervals(&alive[0].1, &alive[1].1);
        assert_eq!(covered, vec![(0, 8)]);
        // a completed journaled run still leaves the directory clean
        assert!(dir_is_empty(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_degrades_to_an_exact_partial_and_resume_completes_it() {
        let _g = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
        fault::disarm_all();
        let db = paper_db();
        let want = mine_reference(&db, 2);
        let dir = temp_dir("enospc");

        // First run: the 5th spill write hits ENOSPC. The run must not
        // error — it degrades to an Interrupted(DiskFull) exact partial —
        // and the journaled spills must stay on disk.
        fault::arm_str("spill.write:5:enospc").unwrap();
        let mut j = VecJournal::default();
        let (outcome, stats) = mine_with(&db, 2, 1, &dir, Some(&mut j), ResumePlan::default());
        fault::disarm_all();
        match outcome {
            MineOutcome::Interrupted {
                partial, reason, ..
            } => {
                assert_eq!(reason, TripReason::DiskFull);
                for fs in &partial.sets {
                    assert!(fs.support <= db.support(&fs.items), "unsound partial");
                }
            }
            other => panic!("expected DiskFull interruption, got {other:?}"),
        }
        assert_eq!(stats.counters.get(Counter::FaultsInjected), 1);
        let alive = live(&j.records);
        assert!(!alive.is_empty(), "completed spills must be journaled");
        for (name, _) in &alive {
            assert!(dir.join(name).exists(), "{name} must survive for resume");
        }

        // Second run: adopt the live spills. The covered transactions are
        // not re-mined (fewer new shards than a cold run) and the final
        // result is exact.
        let adopted: Vec<AdoptedSpill> = alive
            .iter()
            .map(|(name, iv)| AdoptedSpill {
                path: dir.join(name),
                intervals: iv.clone(),
            })
            .collect();
        let n_adopted = adopted.len() as u64;
        let max_shard = j
            .records
            .iter()
            .filter_map(|(n, _)| {
                n.strip_prefix("shard-")?
                    .strip_suffix(".spill")?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .map_or(0, |m| m + 1);
        let plan = ResumePlan {
            adopted,
            next_shard_idx: max_shard,
            next_merge_idx: 0,
        };
        let mut j2 = VecJournal::default();
        let (outcome2, stats2) = mine_with(&db, 2, 1, &dir, Some(&mut j2), plan);
        assert!(!outcome2.is_interrupted());
        assert_eq!(outcome2.into_result().canonicalized(), want);
        assert_eq!(stats2.counters.get(Counter::ShardsResumed), n_adopted);
        assert!(
            stats2.shards < 8,
            "adopted transactions must not be re-mined (mined {} shards)",
            stats2.shards
        );
        assert!(dir_is_empty(&dir), "completed resume leaves a clean dir");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_faults_are_absorbed_by_retries() {
        let _g = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
        fault::disarm_all();
        let db = paper_db();
        let dir = temp_dir("retry");
        fault::arm_str("spill.write:2:io").unwrap();
        let mut config = OutOfCoreConfig::new(1, &dir);
        config.retry = RetryPolicy {
            retries: 2,
            backoff_ms: 0,
        };
        let miner = OutOfCoreMiner::with_config(config);
        let txs = db.transactions();
        let mut i = 0usize;
        let (outcome, stats) = miner
            .mine_stream(
                db.num_items(),
                db.item_supports(),
                None,
                2,
                &Budget::unlimited(),
                move |buf| {
                    buf.clear();
                    if i < txs.len() {
                        buf.extend_from_slice(&txs[i]);
                        i += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                },
            )
            .expect("retry must absorb the transient fault");
        fault::disarm_all();
        assert!(!outcome.is_interrupted());
        assert_eq!(
            outcome.into_result().canonicalized(),
            mine_reference(&db, 2)
        );
        assert_eq!(stats.counters.get(Counter::RetriesAttempted), 1);
        assert!(dir_is_empty(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    /// The fault registry is process-global; tests that arm it serialize.
    static FAULTS: Mutex<()> = Mutex::new(());

    use std::sync::Mutex;

    #[test]
    fn policies_and_toggles_agree_with_reference() {
        let db = paper_db();
        let dir = temp_dir("pol");
        let policies = [
            PrunePolicy::Never,
            PrunePolicy::EveryN(1),
            PrunePolicy::Growth(1.1),
        ];
        for policy in policies {
            for coalesce in [false, true] {
                for minsupp in [1u32, 2, 3, 5] {
                    let want = mine_reference(&db, minsupp);
                    let mut config = OutOfCoreConfig::new(100, &dir);
                    config.policy = policy;
                    config.coalesce = coalesce;
                    let miner = OutOfCoreMiner::with_config(config);
                    let txs = db.transactions();
                    let mut i = 0usize;
                    let (outcome, _) = miner
                        .mine_stream(
                            db.num_items(),
                            db.item_supports(),
                            None,
                            minsupp,
                            &Budget::unlimited(),
                            move |buf| {
                                buf.clear();
                                if i < txs.len() {
                                    buf.extend_from_slice(&txs[i]);
                                    i += 1;
                                    Ok(true)
                                } else {
                                    Ok(false)
                                }
                            },
                        )
                        .expect("pipeline");
                    let got = outcome.into_result().canonicalized();
                    assert_eq!(
                        got, want,
                        "policy={policy:?} coalesce={coalesce} ms={minsupp}"
                    );
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

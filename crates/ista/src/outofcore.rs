//! Out-of-core IsTa: mine databases larger than memory by slicing the
//! transaction stream into contiguous shards sized to a byte budget,
//! mining each shard sequentially, spilling every shard tree to disk as a
//! versioned snapshot, and merge-reducing the spilled trees pairwise from
//! disk.
//!
//! The soundness argument is the same additive support identity the
//! data-parallel miner rests on (see [`crate::parallel`]): shards are
//! disjoint contiguous transaction multisets, each shard tree starts from
//! a snapshot of the *global* item support counts and decrements only what
//! it consumed itself, so the per-shard viability bound stays safe, and
//! replaying one spilled tree's stored transactions into another computes
//! exactly the cross-shard intersections with correct summed supports.
//!
//! What is different from the parallel miner is the *resident-set shape*:
//! at no point does the pipeline hold more than
//!
//! * one shard's transaction slice (bounded by
//!   [`OutOfCoreConfig::mem_budget`] plus one transaction), **or**
//! * two spilled trees being merged (each pruned against near-final
//!   remaining counts before the replay touches them),
//!
//! plus one `u32` per item per outstanding spill for the remaining-count
//! vectors. Everything else lives in the spill directory as v2 snapshots
//! ([`crate::snapshot`]), fully CRC-validated on every reload — a corrupted
//! or truncated intermediate spill surfaces as [`FimError::Corrupt`] naming
//! the offending file, never as a silently wrong answer.
//!
//! Spill files are written atomically (temporary name, then rename) and
//! removed eagerly as soon as a merge has consumed them; a scope guard
//! removes every file the run created on *all* exits — success, budget
//! trip, error, or panic — so the spill directory is left clean.

use crate::miner::{IstaConfig, PrunePacer, PrunePolicy};
use crate::parallel::test_hooks;
use crate::snapshot;
use crate::tree::{PrefixTree, TreeMemoryStats};
use fim_core::{
    checkpoint, Budget, FimError, Governor, Item, MineOutcome, MiningResult, Progress, TripReason,
};
use fim_obs::{Counter, Counters};
use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};

/// Estimated resident bytes of one shard-buffered transaction: its items
/// plus allocator/`Vec` bookkeeping. Deliberately a little pessimistic so
/// the shard slice stays *under* the budget rather than over it.
const TX_OVERHEAD_BYTES: u64 = 32;

/// Tuning knobs for [`OutOfCoreMiner`].
#[derive(Clone, Debug)]
pub struct OutOfCoreConfig {
    /// Byte target for one shard's buffered transaction slice. The slicer
    /// closes a shard as soon as the estimated resident size of the
    /// buffered transactions reaches this value (every shard holds at
    /// least one transaction, so a tiny budget degrades to
    /// one-transaction shards, not an error).
    pub mem_budget: u64,
    /// Directory receiving the spill snapshots. Created if missing; the
    /// files the run creates are always removed before it returns.
    pub spill_dir: PathBuf,
    /// Per-shard and per-merge pruning placement policy (same semantics
    /// as the sequential miner's).
    pub policy: PrunePolicy,
    /// Coalesce each shard's (hopeless-item-filtered) transactions into
    /// `(items, weight)` pairs before insertion (same semantics as
    /// [`IstaConfig::coalesce`]).
    pub coalesce: bool,
    /// Compact shard/merge trees after pruning passes that freed slots
    /// (same semantics as [`IstaConfig::compact`]).
    pub compact: bool,
}

impl OutOfCoreConfig {
    /// Configuration with an explicit byte budget and spill directory and
    /// the sequential miner's default policy toggles.
    pub fn new(mem_budget: u64, spill_dir: impl Into<PathBuf>) -> Self {
        let seq = IstaConfig::default();
        OutOfCoreConfig {
            mem_budget,
            spill_dir: spill_dir.into(),
            policy: seq.policy,
            coalesce: seq.coalesce,
            compact: seq.compact,
        }
    }
}

/// Run report of one [`OutOfCoreMiner`] pipeline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OutOfCoreStats {
    /// Shards the stream was sliced into (1 means the whole database fit
    /// one slice and was mined purely in memory, with no spill at all).
    pub shards: u64,
    /// Snapshots written to the spill directory: every spilled shard tree
    /// plus every non-final merge result.
    pub spilled: u64,
    /// Total bytes of all spill snapshots written.
    pub spill_bytes: u64,
    /// Pairwise merge-reduce steps performed (`shards - 1` on a healthy
    /// multi-shard run).
    pub merge_passes: u64,
    /// Arena occupancy of the fully reduced tree, before reporting.
    pub memory: TreeMemoryStats,
    /// Hot-loop counters summed over every shard mine and every merge
    /// replay, with the spill bookkeeping ([`Counter::ShardsSpilled`],
    /// [`Counter::SpillBytes`], [`Counter::MergePasses`]) folded in.
    pub counters: Counters,
}

/// Writes `tree` to `path` as a v2 snapshot, atomically: the bytes go to a
/// sibling `.tmp` file which is renamed over `path` only once fully
/// written. Returns the snapshot size in bytes.
pub fn spill_tree(tree: &mut PrefixTree, path: &Path) -> Result<u64, FimError> {
    let tmp = tmp_path(path);
    let mut w = std::io::BufWriter::new(fs::File::create(&tmp)?);
    snapshot::write_tree(tree, &mut w)?;
    w.into_inner().map_err(|e| FimError::Io(e.into_error()))?;
    let bytes = fs::metadata(&tmp)?.len();
    fs::rename(&tmp, path)?;
    Ok(bytes)
}

/// Reloads a spill snapshot, re-wrapping any [`FimError::Corrupt`] so the
/// message names the offending file.
pub fn load_spill(path: &Path) -> Result<PrefixTree, FimError> {
    let mut r = std::io::BufReader::new(fs::File::open(path)?);
    snapshot::read_tree(&mut r).map_err(|e| match e {
        FimError::Corrupt(msg) => FimError::Corrupt(format!("{}: {msg}", path.display())),
        other => other,
    })
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Scope guard over the files a pipeline run creates in the spill
/// directory: on drop — success, error return, budget trip, or panic —
/// every tracked path (spills and their `.tmp` siblings) is removed, so
/// the directory is never left holding partial state.
struct SpillGuard {
    files: Vec<PathBuf>,
}

impl SpillGuard {
    fn new() -> Self {
        SpillGuard { files: Vec::new() }
    }

    /// Tracks the spill at `path` (and its temporary sibling) for cleanup.
    fn track(&mut self, path: &Path) {
        self.files.push(tmp_path(path));
        self.files.push(path.to_path_buf());
    }
}

impl Drop for SpillGuard {
    fn drop(&mut self) {
        for f in &self.files {
            let _ = fs::remove_file(f);
        }
    }
}

/// One outstanding spill: its snapshot on disk plus the item occurrences
/// *not yet folded into it* — the global support snapshot minus everything
/// the covered transactions consumed (the merge-safety invariant of
/// [`crate::parallel`], kept in memory because it is one `u32` per item).
struct Spill {
    path: PathBuf,
    remaining: Vec<u32>,
}

/// A loaded tree travelling through the merge reduction with its
/// remaining-count vector.
type TreeAndRemaining = (PrefixTree, Vec<u32>);

/// Out-of-core shard-spill-merge miner over a transaction *stream*.
///
/// The miner never sees the whole database: the caller feeds it recoded
/// transactions one at a time (see [`OutOfCoreMiner::mine_stream`]), and
/// the pipeline bounds its resident set as described in the module docs.
#[derive(Clone, Debug)]
pub struct OutOfCoreMiner {
    /// Pipeline configuration.
    pub config: OutOfCoreConfig,
}

impl OutOfCoreMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: OutOfCoreConfig) -> Self {
        OutOfCoreMiner { config }
    }

    /// Mines the closed frequent item sets of a streamed database.
    ///
    /// `next` is the transaction source: it fills its argument with the
    /// next recoded transaction (dense item codes, sorted, duplicate-free
    /// — e.g. via [`fim_core::StreamingRecode::encode_transaction`]) and
    /// returns `Ok(false)` when the stream is exhausted. Empty
    /// transactions are skipped. `global_supports` must be the item
    /// support counts over the *whole* stream (pass 1 of a two-pass
    /// reader), `total_transactions` the stream length if known (used
    /// only for progress reporting on interruption).
    ///
    /// The `budget` governs tree growth exactly as in the sequential and
    /// parallel miners: shard mining and merge replays checkpoint per
    /// transaction, and the first trip stops further stream consumption
    /// while the already-spilled shards are still reduced, so the partial
    /// result is exact for the processed transaction subset. Graceful
    /// degradation (`Budget::degrade`) is a sequential-miner feature and
    /// is ignored here, as in the parallel miner.
    pub fn mine_stream<F>(
        &self,
        num_items: u32,
        global_supports: &[u32],
        total_transactions: Option<u64>,
        minsupp: u32,
        budget: &Budget,
        mut next: F,
    ) -> Result<(MineOutcome, OutOfCoreStats), FimError>
    where
        F: FnMut(&mut Vec<Item>) -> Result<bool, FimError>,
    {
        assert_eq!(
            global_supports.len(),
            num_items as usize,
            "global_supports must cover the item universe"
        );
        let cfg = &self.config;
        let minsupp = minsupp.max(1);
        fs::create_dir_all(&cfg.spill_dir)?;
        let mut guard = SpillGuard::new();
        let mut gov = (!budget.is_unlimited()).then(|| budget.start());
        let mut tripped: Option<TripReason> = None;
        let mut counters = Counters::new();
        let mut stats = OutOfCoreStats::default();
        let mut spills: VecDeque<Spill> = VecDeque::new();
        let mut resident: Option<TreeAndRemaining> = None;
        let mut buf: Vec<Item> = Vec::new();
        let mut source_done = false;
        let mut processed: u64 = 0;

        // Phase 1: slice the stream into shards, mine each, spill each.
        while !source_done && tripped.is_none() {
            let mut shard: Vec<Vec<Item>> = Vec::new();
            let mut bytes = 0u64;
            while bytes < cfg.mem_budget.max(1) {
                if !next(&mut buf)? {
                    source_done = true;
                    break;
                }
                if buf.is_empty() {
                    continue;
                }
                bytes += buf.len() as u64 * 4 + TX_OVERHEAD_BYTES;
                shard.push(std::mem::take(&mut buf));
            }
            if shard.is_empty() {
                break;
            }
            // §3.4 processing order holds *within* each shard; the closed
            // sets are invariant under the shard boundaries themselves.
            shard.sort_unstable_by(|a, b| fim_core::cmp_size_then_desc_lex(a, b));
            let shard_idx = stats.shards as usize;
            test_hooks::maybe_panic(shard_idx);
            let mined = mine_shard(
                shard,
                num_items,
                global_supports,
                minsupp,
                cfg,
                &mut gov,
                &mut tripped,
                &mut processed,
            );
            stats.shards += 1;
            if source_done && spills.is_empty() {
                // the whole stream fit one slice: pure in-memory run
                resident = Some(mined);
                break;
            }
            let (mut tree, remaining) = mined;
            counters.merge(tree.counters());
            let path = cfg.spill_dir.join(format!("shard-{shard_idx:04}.spill"));
            guard.track(&path);
            stats.spill_bytes += spill_tree(&mut tree, &path)?;
            stats.spilled += 1;
            spills.push_back(Spill { path, remaining });
        }

        // Phase 2: pairwise merge-reduce the spills from disk. Two trees
        // resident at a time; intermediate results go back to disk unless
        // they are the root of the reduction.
        let mut merge_idx = 0usize;
        while spills.len() >= 2 {
            let a = spills.pop_front().expect("len checked");
            let b = spills.pop_front().expect("len checked");
            let ta = load_spill(&a.path)?;
            let tb = load_spill(&b.path)?;
            let _ = fs::remove_file(&a.path);
            let _ = fs::remove_file(&b.path);
            let is_final = spills.is_empty();
            // replay the lighter side into the heavier one
            let (mut left, right) = if tb.transactions_processed() > ta.transactions_processed() {
                ((tb, b.remaining), (ta, a.remaining))
            } else {
                ((ta, a.remaining), (tb, b.remaining))
            };
            merge_spilled(
                &mut left,
                right,
                minsupp,
                cfg,
                &mut gov,
                &mut tripped,
                is_final,
            );
            stats.merge_passes += 1;
            if is_final {
                resident = Some(left);
            } else {
                let (ref mut tree, _) = left;
                counters.merge(tree.counters());
                let path = cfg.spill_dir.join(format!("merge-{merge_idx:04}.spill"));
                merge_idx += 1;
                guard.track(&path);
                stats.spill_bytes += spill_tree(tree, &path)?;
                stats.spilled += 1;
                spills.push_back(Spill {
                    path,
                    remaining: left.1,
                });
            }
        }

        // Phase 3: report from the single surviving tree.
        let (mut tree, remaining) = match resident {
            Some(t) => t,
            None => match spills.pop_front() {
                // a lone spill with nothing to merge into it (the stream
                // ended right at a shard boundary after a trip)
                Some(s) => {
                    let t = load_spill(&s.path)?;
                    let _ = fs::remove_file(&s.path);
                    (t, s.remaining)
                }
                None => (PrefixTree::new(num_items), global_supports.to_vec()),
            },
        };
        if !matches!(cfg.policy, PrunePolicy::Never) {
            // terminal-reducing prune: this tree is only reported now
            tree.prune(&remaining, minsupp);
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
        counters.merge(tree.counters());
        counters.add(Counter::ShardsSpilled, stats.spilled);
        counters.add(Counter::SpillBytes, stats.spill_bytes);
        counters.add(Counter::MergePasses, stats.merge_passes);
        stats.counters = counters;
        stats.memory = tree.memory_stats();
        let result = MiningResult {
            sets: tree.report(minsupp),
        };
        let outcome = match tripped {
            Some(reason) => MineOutcome::Interrupted {
                partial: result,
                reason,
                progress: Progress {
                    processed,
                    total: total_transactions,
                },
            },
            None => MineOutcome::complete(result),
        };
        drop(guard); // spill directory left clean on the success path too
        Ok((outcome, stats))
    }
}

/// Mines one shard slice into its own tree — the sequential sibling of
/// [`crate::parallel`]'s shard miner, with the same merge-safety
/// discipline: globally hopeless items are filtered before insertion and
/// only the terminal-keeping prune runs, so the stored transactions stay
/// exact for the later replay.
#[allow(clippy::too_many_arguments)]
fn mine_shard(
    txs: Vec<Vec<Item>>,
    num_items: u32,
    global_supports: &[u32],
    minsupp: u32,
    cfg: &OutOfCoreConfig,
    gov: &mut Option<Governor>,
    tripped: &mut Option<TripReason>,
    processed: &mut u64,
) -> TreeAndRemaining {
    let mut tree = PrefixTree::new(num_items);
    let mut remaining: Vec<u32> = global_supports.to_vec();
    let mut pacer = PrunePacer::new(cfg.policy);
    let mut filtered: Vec<Vec<Item>> = Vec::with_capacity(txs.len());
    for t in txs {
        let mut f = Vec::with_capacity(t.len());
        for i in t {
            if global_supports[i as usize] >= minsupp {
                f.push(i);
            } else {
                remaining[i as usize] -= 1;
            }
        }
        filtered.push(f);
    }
    let weighted: Vec<(&[Item], u32)> = if cfg.coalesce {
        fim_core::coalesce(&filtered)
    } else {
        filtered.iter().map(|t| (t.as_slice(), 1)).collect()
    };
    for (t, w) in &weighted {
        for &i in t.iter() {
            remaining[i as usize] -= w;
        }
        tree.add_transaction_weighted(t, *w);
        *processed += u64::from(*w);
        if let Some(g) = gov.as_mut() {
            g.add_processed(u64::from(*w));
        }
        if let Some(reason) =
            checkpoint!(gov, tree.node_count(), tree.memory_stats().approx_bytes, 0)
        {
            // stop inserting; the tree stays merge-safe and represents
            // exactly the inserted prefix
            if tripped.is_none() {
                *tripped = Some(reason);
            }
            break;
        }
        if pacer.due(tree.node_count()) {
            tree.prune_keeping_terminals(&remaining, minsupp);
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
    }
    (tree, remaining)
}

/// Folds `right` into `left` — [`crate::parallel`]'s pruned merge replay
/// over reloaded spill trees. Remaining counts are decremented transaction
/// by transaction during the replay; `is_final` marks the root of the
/// reduction, whose result is only reported and may therefore use the
/// plain (terminal-reducing) prune.
fn merge_spilled(
    left: &mut TreeAndRemaining,
    right: TreeAndRemaining,
    minsupp: u32,
    cfg: &OutOfCoreConfig,
    gov: &mut Option<Governor>,
    tripped: &mut Option<TripReason>,
    is_final: bool,
) {
    let (tree, remaining) = left;
    let mut pacer = PrunePacer::new(cfg.policy);
    // prune against this side's own remaining counts before the replay
    // touches anything — the reloaded shard trees were pruned against
    // near-global (weak) counts only
    if !matches!(cfg.policy, PrunePolicy::Never) {
        if is_final {
            tree.prune(remaining, minsupp);
        } else {
            tree.prune_keeping_terminals(remaining, minsupp);
        }
        if cfg.compact {
            tree.compact_if_fragmented();
        }
    }
    pacer.pruned(tree.node_count());
    let replay: Result<(), TripReason> = tree.try_merge_with(&right.0, |tree, t, w| {
        for &i in t {
            remaining[i as usize] -= w;
        }
        if pacer.due(tree.node_count()) {
            if is_final {
                tree.prune(remaining, minsupp);
            } else {
                tree.prune_keeping_terminals(remaining, minsupp);
            }
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
        match checkpoint!(gov, tree.node_count(), tree.memory_stats().approx_bytes, 0) {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    });
    if let Err(reason) = replay {
        // the merged tree holds the replayed prefix exactly; the rest of
        // the donor is dropped — sound partial, same as the parallel miner
        if tripped.is_none() {
            *tripped = Some(reason);
        }
    }
    tree.absorb_counters(right.0.counters());
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;
    use fim_core::RecodedDatabase;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fim-oocore-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn mine_db(
        db: &RecodedDatabase,
        minsupp: u32,
        mem_budget: u64,
        dir: &Path,
    ) -> (MineOutcome, OutOfCoreStats) {
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(mem_budget, dir));
        let txs = db.transactions();
        let mut i = 0usize;
        miner
            .mine_stream(
                db.num_items(),
                db.item_supports(),
                Some(txs.len() as u64),
                minsupp,
                &Budget::unlimited(),
                move |buf| {
                    buf.clear();
                    if i < txs.len() {
                        buf.extend_from_slice(&txs[i]);
                        i += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                },
            )
            .expect("pipeline")
    }

    fn dir_is_empty(dir: &Path) -> bool {
        fs::read_dir(dir).map_or(true, |d| d.count() == 0)
    }

    #[test]
    fn matches_reference_across_budgets_and_minsupps() {
        let db = paper_db();
        let dir = temp_dir("ref");
        // budgets chosen to force 1, 2-3, and 8 shards on the paper db
        for mem_budget in [1u64, 100, 1 << 20] {
            for minsupp in 1..=8 {
                let want = mine_reference(&db, minsupp);
                let (outcome, stats) = mine_db(&db, minsupp, mem_budget, &dir);
                assert!(!outcome.is_interrupted());
                let got = outcome.into_result().canonicalized();
                assert_eq!(got, want, "budget={mem_budget} minsupp={minsupp}");
                if mem_budget == 1 {
                    assert_eq!(stats.shards, 8, "one transaction per shard");
                    assert_eq!(stats.merge_passes, stats.shards - 1);
                }
                if mem_budget == 1 << 20 {
                    assert_eq!(stats.shards, 1, "everything fits in memory");
                    assert_eq!(stats.spilled, 0, "single shard never spills");
                }
                assert!(dir_is_empty(&dir), "spill dir not clean");
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_round_trip_reports_identically() {
        let db = paper_db();
        let dir = temp_dir("rt");
        fs::create_dir_all(&dir).unwrap();
        let mut tree = PrefixTree::new(db.num_items());
        for t in db.transactions() {
            tree.add_transaction(t);
        }
        let path = dir.join("t.spill");
        let bytes = spill_tree(&mut tree, &path).expect("spill");
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        let back = load_spill(&path).expect("load");
        assert_eq!(back.report(2), tree.report(2));
        assert!(!path.with_file_name("t.spill.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_spill_names_the_corrupt_file() {
        let db = paper_db();
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        let mut tree = PrefixTree::new(db.num_items());
        for t in db.transactions() {
            tree.add_transaction(t);
        }
        let path = dir.join("bad.spill");
        spill_tree(&mut tree, &path).expect("spill");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = load_spill(&path).unwrap_err();
        assert!(matches!(err, FimError::Corrupt(_)), "{err}");
        assert!(
            err.to_string().contains("bad.spill"),
            "error must name the file: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn node_budget_trips_with_sound_partial_and_clean_dir() {
        let db = paper_db();
        let dir = temp_dir("budget");
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(1, &dir));
        let txs = db.transactions();
        let mut i = 0usize;
        let budget = Budget::unlimited().with_max_nodes(2);
        let (outcome, _) = miner
            .mine_stream(
                db.num_items(),
                db.item_supports(),
                Some(txs.len() as u64),
                1,
                &budget,
                move |buf| {
                    buf.clear();
                    if i < txs.len() {
                        buf.extend_from_slice(&txs[i]);
                        i += 1;
                        Ok(true)
                    } else {
                        Ok(false)
                    }
                },
            )
            .expect("pipeline");
        match outcome {
            MineOutcome::Interrupted {
                partial, reason, ..
            } => {
                assert_eq!(reason, TripReason::NodeBudget);
                for fs in &partial.sets {
                    assert!(
                        fs.support <= db.support(&fs.items),
                        "partial support of {:?} exceeds the full-database support",
                        fs.items
                    );
                }
            }
            other => panic!("expected interruption, got {other:?}"),
        }
        assert!(dir_is_empty(&dir), "spill dir not clean after trip");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_stream_mines_nothing() {
        let dir = temp_dir("empty");
        let miner = OutOfCoreMiner::with_config(OutOfCoreConfig::new(64, &dir));
        let (outcome, stats) = miner
            .mine_stream(3, &[0, 0, 0], Some(0), 1, &Budget::unlimited(), |buf| {
                buf.clear();
                Ok(false)
            })
            .expect("pipeline");
        assert!(!outcome.is_interrupted());
        assert!(outcome.into_result().is_empty());
        assert_eq!(stats.shards, 0);
        assert!(dir_is_empty(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_expose_spill_counters() {
        let db = paper_db();
        let dir = temp_dir("stats");
        let (outcome, stats) = mine_db(&db, 2, 1, &dir);
        assert!(!outcome.is_interrupted());
        assert_eq!(stats.shards, 8);
        // 8 shard spills + 6 non-final merge spills
        assert_eq!(stats.spilled, 14);
        assert_eq!(stats.merge_passes, 7);
        assert!(stats.spill_bytes > 0);
        assert_eq!(stats.counters.get(Counter::ShardsSpilled), stats.spilled);
        assert_eq!(stats.counters.get(Counter::SpillBytes), stats.spill_bytes);
        assert_eq!(stats.counters.get(Counter::MergePasses), stats.merge_passes);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn policies_and_toggles_agree_with_reference() {
        let db = paper_db();
        let dir = temp_dir("pol");
        let policies = [
            PrunePolicy::Never,
            PrunePolicy::EveryN(1),
            PrunePolicy::Growth(1.1),
        ];
        for policy in policies {
            for coalesce in [false, true] {
                for minsupp in [1u32, 2, 3, 5] {
                    let want = mine_reference(&db, minsupp);
                    let mut config = OutOfCoreConfig::new(100, &dir);
                    config.policy = policy;
                    config.coalesce = coalesce;
                    let miner = OutOfCoreMiner::with_config(config);
                    let txs = db.transactions();
                    let mut i = 0usize;
                    let (outcome, _) = miner
                        .mine_stream(
                            db.num_items(),
                            db.item_supports(),
                            None,
                            minsupp,
                            &Budget::unlimited(),
                            move |buf| {
                                buf.clear();
                                if i < txs.len() {
                                    buf.extend_from_slice(&txs[i]);
                                    i += 1;
                                    Ok(true)
                                } else {
                                    Ok(false)
                                }
                            },
                        )
                        .expect("pipeline");
                    let got = outcome.into_result().canonicalized();
                    assert_eq!(
                        got, want,
                        "policy={policy:?} coalesce={coalesce} ms={minsupp}"
                    );
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

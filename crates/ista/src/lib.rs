//! # fim-ista
//!
//! The **IsTa** ("Intersecting Transactions") algorithm: mining closed
//! frequent item sets with the *cumulative intersection* scheme of
//! Borgelt et al. (EDBT 2011, §3.2–3.3).
//!
//! The algorithm maintains a repository of all closed item sets of the
//! already-processed transaction prefix, exploiting the recursion
//!
//! ```text
//! C(∅)       = ∅
//! C(T ∪ {t}) = C(T) ∪ {t} ∪ { I | ∃ s ∈ C(T) : I = s ∩ t }
//! ```
//!
//! The repository is a prefix tree ([`PrefixTree`]): each node carries one
//! item, and the item set represented by a node consists of its item plus
//! the items on the path to the root. Child items are smaller than their
//! parent's item and sibling lists are sorted descending, so every set is
//! stored along exactly one path (its items in descending order). Each new
//! transaction is first inserted as a plain path, then a single selective
//! depth-first traversal (`isect`, paper Fig. 2) simultaneously computes all
//! intersections with stored sets and merges them into the tree, using a
//! per-node `step` stamp and max-merge to keep every node's support exact.
//! Finally a recursive report (paper Fig. 4) emits exactly the nodes whose
//! support is at least the minimum support and strictly exceeds the support
//! of every child (the closedness condition).
//!
//! The optional *item elimination* pruning of paper §3.2 removes items that
//! can no longer reach minimum support from the tree mid-run, shrinking the
//! repository (see [`IstaConfig::prune`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod miner;
pub mod parallel;
pub mod snapshot;
pub mod stream;
pub mod tree;

pub use arena::{Node, NodeArena, NONE};
pub use miner::{IstaConfig, IstaMiner, MineStats, PrunePacer, PrunePolicy};
pub use parallel::{ParallelConfig, ParallelIstaMiner, ParallelMineStats};
pub use stream::IstaStream;
pub use tree::{PrefixTree, TreeMemoryStats};

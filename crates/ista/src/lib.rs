//! # fim-ista
//!
//! The **IsTa** ("Intersecting Transactions") algorithm: mining closed
//! frequent item sets with the *cumulative intersection* scheme of
//! Borgelt et al. (EDBT 2011, §3.2–3.3).
//!
//! The algorithm maintains a repository of all closed item sets of the
//! already-processed transaction prefix, exploiting the recursion
//!
//! ```text
//! C(∅)       = ∅
//! C(T ∪ {t}) = C(T) ∪ {t} ∪ { I | ∃ s ∈ C(T) : I = s ∩ t }
//! ```
//!
//! The repository is a prefix tree ([`PrefixTree`]): the item set
//! represented by a node consists of its items plus the items on the path
//! to the root. Child items are smaller than their parent's items and
//! sibling lists are sorted descending, so every set is stored along
//! exactly one path (its items in descending order). Each new transaction
//! is first inserted as a plain path, then a single selective depth-first
//! traversal (`isect`, paper Fig. 2) simultaneously computes all
//! intersections with stored sets and merges them into the tree, using a
//! per-node `step` stamp and max-merge to keep every node's support exact.
//! Finally a recursive report (paper Fig. 4) emits exactly the nodes whose
//! support is at least the minimum support and strictly exceeds the support
//! of every child (the closedness condition).
//!
//! Of the three repository implementations the paper compares, this crate
//! provides two: the default [`PrefixTree`] is the §3.3 **Patricia tree**
//! (path compression: each node stores a whole item *segment* in a shared
//! arena, collapsing unary chains), and [`plain::PlainPrefixTree`] is the
//! uncompressed one-item-per-node layout, kept registered as `ista-plain`
//! (CLI `--no-patricia`) for A/B comparison. Both produce canonically
//! identical output.
//!
//! The optional *item elimination* pruning of paper §3.2 removes items that
//! can no longer reach minimum support from the tree mid-run, shrinking the
//! repository (see [`IstaConfig::prune`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod miner;
pub mod outofcore;
pub mod parallel;
pub mod plain;
pub mod snapshot;
pub mod stream;
pub mod tree;

pub use arena::{Node, NodeArena, PatNode, SegArena, NONE};
pub use miner::{IstaConfig, IstaMiner, MineStats, PrunePacer, PrunePolicy};
pub use outofcore::{
    load_spill, spill_tree, sync_parent_dir, AdoptedSpill, OutOfCoreConfig, OutOfCoreMiner,
    OutOfCoreStats, ResumePlan, SpillJournal, TxInterval,
};
pub use parallel::{ParallelConfig, ParallelIstaMiner, ParallelMineStats};
pub use plain::PlainPrefixTree;
pub use stream::IstaStream;
pub use tree::{intersect_segment, intersect_segment_words, PrefixTree, TreeMemoryStats};

//! The [`IstaMiner`]: driving the prefix tree over a recoded database.

use crate::tree::PrefixTree;
use fim_core::{ClosedMiner, MiningResult, RecodedDatabase};

/// When to run the item-elimination pruning pass (paper §3.2).
///
/// A pruning pass walks the whole tree, so its placement is a trade-off:
/// on dense data (NCBI60-like) the unpruned tree explodes and pruning after
/// every transaction is essential; on sparse data (transposed-webview-like)
/// the tree grows slowly and per-transaction walks dominate the runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PrunePolicy {
    /// Never prune (ablation baseline).
    Never,
    /// Prune after every `n` transactions.
    EveryN(usize),
    /// Prune whenever the tree has grown by this factor since the last
    /// pass (amortizes the walk against the growth it removes). This is
    /// the default with factor 2.
    Growth(f64),
}

/// Tuning knobs for [`IstaMiner`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IstaConfig {
    /// Pruning placement policy.
    pub policy: PrunePolicy,
}

impl Default for IstaConfig {
    fn default() -> Self {
        IstaConfig {
            policy: PrunePolicy::Growth(2.0),
        }
    }
}

impl IstaConfig {
    /// Configuration with item elimination disabled (for ablations).
    pub fn without_pruning() -> Self {
        IstaConfig {
            policy: PrunePolicy::Never,
        }
    }

    /// Prune after every transaction (the most aggressive placement).
    pub fn prune_every_transaction() -> Self {
        IstaConfig {
            policy: PrunePolicy::EveryN(1),
        }
    }
}

/// The IsTa closed frequent item set miner (paper §3.2–3.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct IstaMiner {
    /// Algorithm configuration.
    pub config: IstaConfig,
}

impl IstaMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: IstaConfig) -> Self {
        IstaMiner { config }
    }
}

impl ClosedMiner for IstaMiner {
    fn name(&self) -> &'static str {
        "ista"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let mut tree = PrefixTree::new(db.num_items());
        let mut remaining: Vec<u32> = db.item_supports().to_vec();
        let mut last_prune_size = 256usize;
        for (k, t) in db.transactions().iter().enumerate() {
            for &i in t.iter() {
                remaining[i as usize] -= 1;
            }
            tree.add_transaction(t);
            let due = match self.config.policy {
                PrunePolicy::Never => false,
                PrunePolicy::EveryN(n) => n > 0 && (k + 1) % n == 0,
                PrunePolicy::Growth(factor) => {
                    tree.node_count() as f64 >= last_prune_size as f64 * factor
                }
            };
            if due {
                tree.prune(&remaining, minsupp);
                last_prune_size = tree.node_count().max(256);
            }
        }
        MiningResult {
            sets: tree.report(minsupp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;
    use fim_core::ItemSet;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_on_paper_example() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = IstaMiner::default().mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn all_prune_policies_agree() {
        let db = paper_db();
        let policies = [
            PrunePolicy::Never,
            PrunePolicy::EveryN(1),
            PrunePolicy::EveryN(3),
            PrunePolicy::Growth(1.1),
            PrunePolicy::Growth(2.0),
        ];
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            for policy in policies {
                let got = IstaMiner::with_config(IstaConfig { policy })
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "policy={policy:?} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 0);
        assert!(IstaMiner::default().mine(&db, 1).is_empty());
    }

    #[test]
    fn many_items_few_transactions_shape() {
        // the regime the algorithm is designed for: wide transactions
        let db = RecodedDatabase::from_dense(
            vec![
                (0..50).collect(),
                (10..60).collect(),
                (20..70).collect(),
                (0..30).chain(50..70).collect(),
            ],
            70,
        );
        let want = mine_reference(&db, 2);
        let got = IstaMiner::default().mine(&db, 2).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn supports_are_exact() {
        let db = paper_db();
        let got = IstaMiner::default().mine(&db, 1);
        for fs in &got.sets {
            assert_eq!(db.support(&fs.items), fs.support, "{:?}", fs.items);
        }
    }

    #[test]
    fn miner_name() {
        assert_eq!(IstaMiner::default().name(), "ista");
    }

    #[test]
    fn known_set_at_minsupp_three() {
        let db = paper_db();
        let got = IstaMiner::default().mine(&db, 3).canonicalized();
        assert_eq!(got.support_of(&ItemSet::from([1, 2])), Some(4)); // {b,c}
        assert_eq!(got.support_of(&ItemSet::from([3, 4])), Some(3)); // {d,e}
    }
}

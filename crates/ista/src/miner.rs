//! The [`IstaMiner`]: driving the prefix tree over a recoded database.

use crate::plain::PlainPrefixTree;
use crate::tree::{PrefixTree, TreeMemoryStats};
use fim_core::{
    apply_constraints_owned, checkpoint, prepare, Budget, ClosedMiner, ConstraintSet, Degradation,
    FoundSet, Governor, Item, MineOutcome, MiningResult, Progress, RecodedDatabase, Representation,
    TripReason,
};
use fim_obs::{Counter, Counters, Obs, ProgressSnapshot};

/// The tree operations the mining loop needs, implemented by both the
/// Patricia [`PrefixTree`] (default) and the uncompressed
/// [`PlainPrefixTree`] (`ista-plain`, CLI `--no-patricia`) so one loop
/// serves both layouts without dynamic dispatch.
trait MiningTree {
    fn create(num_items: u32) -> Self;
    fn set_bitset(&mut self, on: bool);
    fn add_transaction_weighted(&mut self, t: &[Item], weight: u32);
    fn node_count(&self) -> usize;
    fn memory_stats(&self) -> TreeMemoryStats;
    fn prune(&mut self, remaining: &[u32], minsupp: u32);
    fn compact_if_fragmented(&mut self) -> bool;
    fn report(&self, minsupp: u32) -> Vec<FoundSet>;
    fn counters(&self) -> Counters;
}

macro_rules! impl_mining_tree {
    ($ty:ty) => {
        impl MiningTree for $ty {
            fn create(num_items: u32) -> Self {
                <$ty>::new(num_items)
            }
            fn set_bitset(&mut self, on: bool) {
                <$ty>::set_bitset(self, on)
            }
            fn add_transaction_weighted(&mut self, t: &[Item], weight: u32) {
                <$ty>::add_transaction_weighted(self, t, weight)
            }
            fn node_count(&self) -> usize {
                <$ty>::node_count(self)
            }
            fn memory_stats(&self) -> TreeMemoryStats {
                <$ty>::memory_stats(self)
            }
            fn prune(&mut self, remaining: &[u32], minsupp: u32) {
                <$ty>::prune(self, remaining, minsupp)
            }
            fn compact_if_fragmented(&mut self) -> bool {
                <$ty>::compact_if_fragmented(self)
            }
            fn report(&self, minsupp: u32) -> Vec<FoundSet> {
                <$ty>::report(self, minsupp)
            }
            fn counters(&self) -> Counters {
                *<$ty>::counters(self)
            }
        }
    };
}

impl_mining_tree!(PrefixTree);
impl_mining_tree!(PlainPrefixTree);

/// Opens a span when an observability bundle is attached; a `None` bundle
/// costs one branch (same discipline as [`checkpoint!`]).
#[inline]
fn span_enter(obs: &mut Option<&mut Obs>, name: &'static str) {
    if let Some(o) = obs.as_deref_mut() {
        o.span_enter(name);
    }
}

/// Closes the current span when an observability bundle is attached.
#[inline]
fn span_exit(obs: &mut Option<&mut Obs>) {
    if let Some(o) = obs.as_deref_mut() {
        o.span_exit();
    }
}

/// When to run the item-elimination pruning pass (paper §3.2).
///
/// A pruning pass walks the whole tree, so its placement is a trade-off:
/// on dense data (NCBI60-like) the unpruned tree explodes and pruning after
/// every transaction is essential; on sparse data (transposed-webview-like)
/// the tree grows slowly and per-transaction walks dominate the runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PrunePolicy {
    /// Never prune (ablation baseline).
    Never,
    /// Prune after every `n` processed (weighted) transactions.
    EveryN(usize),
    /// Prune whenever the tree has grown by this factor since the last
    /// pass (amortizes the walk against the growth it removes). This is
    /// the default with factor 2.
    Growth(f64),
}

/// Prune-placement bookkeeping shared by the sequential miner, shard
/// mining, and merge replay: decides after each (replayed) transaction
/// whether a pruning pass is due, implementing the [`PrunePolicy`]
/// semantics in one place.
#[derive(Clone, Copy, Debug)]
pub struct PrunePacer {
    policy: PrunePolicy,
    processed: usize,
    last_prune_size: usize,
}

impl PrunePacer {
    /// A pacer implementing `policy`, starting from an empty tree.
    pub fn new(policy: PrunePolicy) -> Self {
        PrunePacer {
            policy,
            processed: 0,
            last_prune_size: 256,
        }
    }

    /// Call after a transaction lands; returns whether to prune now.
    pub fn due(&mut self, node_count: usize) -> bool {
        self.processed += 1;
        match self.policy {
            PrunePolicy::Never => false,
            PrunePolicy::EveryN(n) => n > 0 && self.processed.is_multiple_of(n),
            PrunePolicy::Growth(factor) => {
                node_count as f64 >= self.last_prune_size as f64 * factor
            }
        }
    }

    /// Call after a pruning pass with the post-prune tree size.
    pub fn pruned(&mut self, node_count: usize) {
        self.last_prune_size = node_count.max(256);
    }
}

/// Tuning knobs for [`IstaMiner`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IstaConfig {
    /// Pruning placement policy.
    pub policy: PrunePolicy,
    /// Merge identical transactions into `(items, weight)` pairs up front
    /// (see [`fim_core::coalesce`]) and process each distinct transaction
    /// with one weighted cumulative-intersection pass. Output-invariant;
    /// on dense data recoding collapses many rows, so this is the default.
    pub coalesce: bool,
    /// Compact the node arena into depth-first order after each pruning
    /// pass that freed slots ([`PrefixTree::compact`]), so the `isect`
    /// traversal walks nearly-sequential memory. Output-invariant.
    pub compact: bool,
    /// Use the path-compressed Patricia tree (paper §3.3); when `false`
    /// the miner runs on the uncompressed one-item-per-node
    /// [`PlainPrefixTree`] layout instead (ablation baseline, registered
    /// as `ista-plain`). Output-invariant.
    pub patricia: bool,
    /// Segment-scan kernel selection. [`Representation::Bitset`] switches
    /// the Patricia `isect` walk to packed-word membership probes (plus a
    /// whole-run word-AND for contiguous segments); `Gallop` has no IsTa
    /// kernel and runs the scalar epoch probe, as does the plain layout.
    /// Output-invariant (proptested against the scalar path).
    pub rep: Representation,
}

impl Default for IstaConfig {
    fn default() -> Self {
        IstaConfig {
            policy: PrunePolicy::Growth(2.0),
            coalesce: true,
            compact: true,
            patricia: true,
            rep: Representation::Scalar,
        }
    }
}

impl IstaConfig {
    /// Configuration with item elimination disabled (for ablations).
    pub fn without_pruning() -> Self {
        IstaConfig {
            policy: PrunePolicy::Never,
            ..Default::default()
        }
    }

    /// Prune after every transaction (the most aggressive placement).
    pub fn prune_every_transaction() -> Self {
        IstaConfig {
            policy: PrunePolicy::EveryN(1),
            ..Default::default()
        }
    }

    /// Configuration with transaction coalescing disabled (for ablations).
    pub fn without_coalescing() -> Self {
        IstaConfig {
            coalesce: false,
            ..Default::default()
        }
    }

    /// Configuration with arena compaction disabled (for ablations).
    pub fn without_compaction() -> Self {
        IstaConfig {
            compact: false,
            ..Default::default()
        }
    }

    /// Configuration mining on the uncompressed one-item-per-node tree
    /// instead of the Patricia layout (for A/B comparison).
    pub fn without_patricia() -> Self {
        IstaConfig {
            patricia: false,
            ..Default::default()
        }
    }

    /// Configuration with an explicit segment-scan kernel.
    pub fn with_rep(rep: Representation) -> Self {
        IstaConfig {
            rep,
            ..Default::default()
        }
    }

    /// Configuration using the bit-parallel segment kernel (registered as
    /// `ista-bitset`).
    pub fn bitset() -> Self {
        IstaConfig::with_rep(Representation::Bitset)
    }
}

/// Counters and final memory occupancy of one [`IstaMiner`] run, reported
/// by [`IstaMiner::mine_with_stats`] (surfaced by the CLI `--stats` flag
/// and the bench harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct MineStats {
    /// Transactions in the database (total weight processed).
    pub total_transactions: usize,
    /// Distinct transactions after coalescing (equals
    /// `total_transactions` when coalescing is off).
    pub distinct_transactions: usize,
    /// Item-elimination pruning passes executed.
    pub prune_passes: usize,
    /// Arena compactions executed.
    pub compactions: usize,
    /// Largest node count the tree reached after any transaction (physical
    /// nodes: with the Patricia layout a node holds a whole segment, so
    /// this is the number the path compression is meant to shrink).
    pub peak_nodes: usize,
    /// Arena occupancy after the last transaction, before reporting.
    pub memory: TreeMemoryStats,
    /// Hot-loop counters (segment scans, early exits, splits, allocations)
    /// accumulated by the tree while mining.
    pub counters: Counters,
}

/// The IsTa closed frequent item set miner (paper §3.2–3.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct IstaMiner {
    /// Algorithm configuration.
    pub config: IstaConfig,
}

impl IstaMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: IstaConfig) -> Self {
        IstaMiner { config }
    }

    /// Like [`ClosedMiner::mine`], but also reports run counters and the
    /// final tree memory occupancy.
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, MineStats) {
        let (outcome, stats) = self.run(db, minsupp, None, false, None);
        (outcome.into_result(), stats)
    }

    /// Like [`mine_with_stats`](Self::mine_with_stats) with an
    /// observability bundle attached: phase spans and heartbeat progress
    /// land in `obs`, counters in the returned [`MineStats`]. Observation
    /// never changes the mined output (proptested).
    pub fn mine_with_obs(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        obs: &mut Obs,
    ) -> (MiningResult, MineStats) {
        let (outcome, stats) = self.run(db, minsupp, None, false, Some(obs));
        (outcome.into_result(), stats)
    }

    /// Governed mining with run counters: like
    /// [`ClosedMiner::mine_governed`] with the [`MineStats`] of
    /// [`mine_with_stats`](Self::mine_with_stats) alongside. On a trip the
    /// stats describe the tree at the trip point.
    pub fn mine_governed_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        budget: &Budget,
    ) -> (MineOutcome, MineStats) {
        self.run(db, minsupp, Some(budget.start()), budget.degrade, None)
    }

    /// Like [`ClosedMiner::mine_constrained`], also returning the
    /// [`MineStats`] of the run.
    ///
    /// IsTa's constraint push is the **support-floor raise**: a min-area
    /// constraint implies a support lower bound
    /// ([`ConstraintSet::support_floor`]), and mining at that raised
    /// threshold lets every item-elimination pruning pass cut tree paths
    /// that could only complete into sub-floor (hence unsatisfying) sets.
    /// Size and include predicates, by contrast, must **not** prune tree
    /// nodes mid-run — a too-small or include-missing path still feeds the
    /// cumulative intersections of later transactions — so they gate only
    /// the final report (`constraint_prunes` counts the sets they drop).
    pub fn mine_constrained_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> (MiningResult, MineStats) {
        let eff = constraints.support_floor(db.num_items(), minsupp.max(1));
        if eff == u32::MAX {
            return (MiningResult::new(), MineStats::default());
        }
        let (result, mut stats) = self.mine_with_stats(db, eff);
        let before = result.sets.len();
        let result = apply_constraints_owned(result, constraints);
        stats.counters.add(
            Counter::ConstraintPrunes,
            (before - result.sets.len()) as u64,
        );
        (result, stats)
    }

    /// Governed mining with both run counters and an observability bundle.
    pub fn mine_governed_with_obs(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        budget: &Budget,
        obs: &mut Obs,
    ) -> (MineOutcome, MineStats) {
        self.run(db, minsupp, Some(budget.start()), budget.degrade, Some(obs))
    }

    /// The one mining loop behind both entry points. `gov` is `None` for
    /// ungoverned runs, whose per-transaction checkpoint is then a single
    /// pattern match (see [`checkpoint!`]).
    ///
    /// The partial result on interruption is *exact*: the tree after `k`
    /// (weighted) transactions holds the closed sets of that prefix, and
    /// item-elimination pruning never removes a set that is frequent in
    /// any prefix — a pruned set has `supp + remaining < minsupp` against
    /// the *full* database, which bounds its support in every prefix below
    /// `minsupp` too. So `report(minsupp)` on the interrupted tree equals
    /// mining the processed prefix alone.
    fn run(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        gov: Option<Governor>,
        degrade: bool,
        obs: Option<&mut Obs>,
    ) -> (MineOutcome, MineStats) {
        if self.config.patricia {
            self.run_impl::<PrefixTree>(db, minsupp, gov, degrade, obs)
        } else {
            self.run_impl::<PlainPrefixTree>(db, minsupp, gov, degrade, obs)
        }
    }

    /// The mining loop itself, monomorphized per tree layout.
    fn run_impl<T: MiningTree>(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        mut gov: Option<Governor>,
        degrade: bool,
        mut obs: Option<&mut Obs>,
    ) -> (MineOutcome, MineStats) {
        let requested = minsupp.max(1);
        let mut minsupp_eff = requested;
        let mut degradation: Option<Degradation> = None;
        span_enter(&mut obs, "coalesce");
        let txs: Vec<(&[Item], u32)> = if self.config.coalesce {
            prepare::coalesce(db.transactions())
        } else {
            db.transactions().iter().map(|t| (t.as_ref(), 1)).collect()
        };
        span_exit(&mut obs);
        let mut stats = MineStats {
            total_transactions: db.transactions().len(),
            distinct_transactions: txs.len(),
            ..MineStats::default()
        };
        let total_weight = db.transactions().len() as u64;
        let mut tree = T::create(db.num_items());
        tree.set_bitset(self.config.rep == Representation::Bitset);
        let mut remaining: Vec<u32> = db.item_supports().to_vec();
        let mut pacer = PrunePacer::new(self.config.policy);
        if let Some(reason) = checkpoint!(gov, 0, 0, 0) {
            // already expired/cancelled before the first transaction
            stats.memory = tree.memory_stats();
            stats.counters = tree.counters();
            let outcome = MineOutcome::Interrupted {
                partial: MiningResult::new(),
                reason,
                progress: Progress {
                    processed: 0,
                    total: Some(total_weight),
                },
            };
            return (outcome, stats);
        }
        span_enter(&mut obs, "transactions");
        let mut processed: u64 = 0;
        for (t, w) in &txs {
            for &i in t.iter() {
                remaining[i as usize] -= w;
            }
            tree.add_transaction_weighted(t, *w);
            stats.peak_nodes = stats.peak_nodes.max(tree.node_count());
            if let Some(g) = gov.as_mut() {
                g.add_processed(u64::from(*w));
            }
            processed += u64::from(*w);
            if let Some(o) = obs.as_deref_mut() {
                o.tick(&ProgressSnapshot {
                    processed,
                    total: Some(total_weight),
                    pending: 0,
                    peak_nodes: stats.peak_nodes as u64,
                    sets: tree.node_count() as u64,
                });
            }
            if let Some(reason) =
                checkpoint!(gov, tree.node_count(), tree.memory_stats().approx_bytes, 0)
            {
                if degrade && reason == TripReason::NodeBudget {
                    let g = gov.as_mut().expect("a tripped governor is present");
                    let cap = g.node_budget().unwrap_or(0);
                    let d = degradation.get_or_insert(Degradation {
                        requested_minsupp: requested,
                        effective_minsupp: minsupp_eff,
                        steps: 0,
                    });
                    // raise the threshold until the tree fits again; the
                    // reported sets become exactly the closed sets at the
                    // raised threshold (pruning keeps those supports exact)
                    while tree.node_count() > cap && minsupp_eff != u32::MAX {
                        minsupp_eff = minsupp_eff
                            .saturating_mul(2)
                            .max(minsupp_eff.saturating_add(1));
                        tree.prune(&remaining, minsupp_eff);
                        d.steps += 1;
                        stats.prune_passes += 1;
                    }
                    d.effective_minsupp = minsupp_eff;
                    if self.config.compact && tree.compact_if_fragmented() {
                        stats.compactions += 1;
                    }
                    pacer.pruned(tree.node_count());
                } else {
                    span_exit(&mut obs); // transactions
                    stats.memory = tree.memory_stats();
                    stats.counters = tree.counters();
                    span_enter(&mut obs, "report");
                    let partial = MiningResult {
                        sets: tree.report(minsupp_eff),
                    };
                    span_exit(&mut obs);
                    let processed = gov.as_ref().map_or(0, Governor::processed);
                    let outcome = MineOutcome::Interrupted {
                        partial,
                        reason,
                        progress: Progress {
                            processed,
                            total: Some(total_weight),
                        },
                    };
                    return (outcome, stats);
                }
            }
            if pacer.due(tree.node_count()) {
                span_enter(&mut obs, "prune");
                tree.prune(&remaining, minsupp_eff);
                span_exit(&mut obs);
                pacer.pruned(tree.node_count());
                stats.prune_passes += 1;
                if self.config.compact {
                    span_enter(&mut obs, "compact");
                    if tree.compact_if_fragmented() {
                        stats.compactions += 1;
                    }
                    span_exit(&mut obs);
                }
            }
        }
        span_exit(&mut obs); // transactions

        // one last compaction before reporting: `report` walks the whole
        // tree in DFS order, which is exactly the order compact lays out
        if self.config.compact {
            span_enter(&mut obs, "compact");
            if tree.compact_if_fragmented() {
                stats.compactions += 1;
            }
            span_exit(&mut obs);
        }
        stats.memory = tree.memory_stats();
        stats.counters = tree.counters();
        span_enter(&mut obs, "report");
        let result = MiningResult {
            sets: tree.report(minsupp_eff),
        };
        span_exit(&mut obs);
        if let Some(o) = obs {
            o.finish(&ProgressSnapshot {
                processed,
                total: Some(total_weight),
                pending: 0,
                peak_nodes: stats.peak_nodes as u64,
                sets: result.sets.len() as u64,
            });
        }
        let outcome = MineOutcome::Complete {
            result,
            degradation,
        };
        (outcome, stats)
    }
}

impl ClosedMiner for IstaMiner {
    fn name(&self) -> &'static str {
        if !self.config.patricia {
            "ista-plain"
        } else if self.config.rep == Representation::Bitset {
            "ista-bitset"
        } else {
            "ista"
        }
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        self.mine_with_stats(db, minsupp).0
    }

    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        self.mine_governed_with_stats(db, minsupp, budget).0
    }

    fn supports_constraints(&self) -> bool {
        true
    }

    fn mine_constrained(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> MiningResult {
        self.mine_constrained_with_stats(db, minsupp, constraints).0
    }

    fn mine_constrained_governed(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
        budget: &Budget,
    ) -> MineOutcome {
        let eff = constraints.support_floor(db.num_items(), minsupp.max(1));
        if eff == u32::MAX {
            return MineOutcome::complete(MiningResult::new());
        }
        // governed at the raised floor; an interrupted partial is the exact
        // constrained answer of the processed prefix (the same prefix
        // contract as the unconstrained governed run, filtered)
        self.mine_governed(db, eff, budget)
            .map_result(|r| apply_constraints_owned(r, constraints))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;
    use fim_core::ItemSet;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    /// A database with heavy row duplication, so coalescing actually
    /// collapses transactions.
    fn duplicated_db() -> RecodedDatabase {
        let mut rows: Vec<Vec<Item>> = Vec::new();
        for _ in 0..4 {
            rows.push(vec![0, 1, 2]);
            rows.push(vec![1, 2, 3]);
        }
        for _ in 0..3 {
            rows.push(vec![0, 2, 4]);
        }
        rows.push(vec![2, 3, 4]);
        RecodedDatabase::from_dense(rows, 5)
    }

    #[test]
    fn matches_reference_on_paper_example() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = IstaMiner::default().mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn all_prune_policies_agree() {
        let db = paper_db();
        let policies = [
            PrunePolicy::Never,
            PrunePolicy::EveryN(1),
            PrunePolicy::EveryN(3),
            PrunePolicy::Growth(1.1),
            PrunePolicy::Growth(2.0),
        ];
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            for policy in policies {
                for coalesce in [false, true] {
                    for compact in [false, true] {
                        for patricia in [false, true] {
                            for rep in [Representation::Scalar, Representation::Bitset] {
                                let got = IstaMiner::with_config(IstaConfig {
                                    policy,
                                    coalesce,
                                    compact,
                                    patricia,
                                    rep,
                                })
                                .mine(&db, minsupp)
                                .canonicalized();
                                assert_eq!(
                                    got, want,
                                    "policy={policy:?} coalesce={coalesce} compact={compact} \
                                     patricia={patricia} rep={rep} minsupp={minsupp}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn coalescing_is_output_invariant_on_duplicated_rows() {
        let db = duplicated_db();
        for minsupp in 1..=6 {
            let want = mine_reference(&db, minsupp);
            let on = IstaMiner::default().mine(&db, minsupp).canonicalized();
            let off = IstaMiner::with_config(IstaConfig::without_coalescing())
                .mine(&db, minsupp)
                .canonicalized();
            assert_eq!(on, want, "coalesced, minsupp={minsupp}");
            assert_eq!(off, want, "uncoalesced, minsupp={minsupp}");
        }
    }

    #[test]
    fn stats_report_coalescing_and_pruning() {
        let db = duplicated_db();
        let (result, stats) = IstaMiner::with_config(IstaConfig {
            policy: PrunePolicy::EveryN(2),
            coalesce: true,
            compact: true,
            patricia: true,
            rep: Representation::Scalar,
        })
        .mine_with_stats(&db, 4);
        assert!(!result.sets.is_empty());
        assert_eq!(stats.total_transactions, 12);
        assert_eq!(stats.distinct_transactions, 4);
        assert!(stats.prune_passes >= 1);
        assert!(stats.peak_nodes >= stats.memory.live_nodes - 1);
        assert!(stats.memory.live_nodes >= 1);
        assert!(stats.memory.approx_bytes > 0);
        // compaction leaves no fragmentation behind after the final prune
        // unless the last prune freed nothing; either way slots are bounded
        assert!(stats.memory.free_slots <= stats.memory.total_slots);
    }

    #[test]
    fn stats_without_coalescing_keep_all_rows_distinct() {
        let db = duplicated_db();
        let (_, stats) =
            IstaMiner::with_config(IstaConfig::without_coalescing()).mine_with_stats(&db, 1);
        assert_eq!(stats.distinct_transactions, stats.total_transactions);
        assert_eq!(stats.compactions, 0, "nothing pruned, nothing compacted");
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 0);
        assert!(IstaMiner::default().mine(&db, 1).is_empty());
    }

    #[test]
    fn many_items_few_transactions_shape() {
        // the regime the algorithm is designed for: wide transactions
        let db = RecodedDatabase::from_dense(
            vec![
                (0..50).collect(),
                (10..60).collect(),
                (20..70).collect(),
                (0..30).chain(50..70).collect(),
            ],
            70,
        );
        let want = mine_reference(&db, 2);
        let got = IstaMiner::default().mine(&db, 2).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn supports_are_exact() {
        let db = paper_db();
        let got = IstaMiner::default().mine(&db, 1);
        for fs in &got.sets {
            assert_eq!(db.support(&fs.items), fs.support, "{:?}", fs.items);
        }
    }

    #[test]
    fn miner_name() {
        assert_eq!(IstaMiner::default().name(), "ista");
        assert_eq!(
            IstaMiner::with_config(IstaConfig::without_patricia()).name(),
            "ista-plain"
        );
        assert_eq!(
            IstaMiner::with_config(IstaConfig::bitset()).name(),
            "ista-bitset"
        );
    }

    #[test]
    fn bitset_kernel_counts_words_anded() {
        let db = paper_db();
        let (_, scalar) = IstaMiner::default().mine_with_stats(&db, 1);
        let (_, bitset) = IstaMiner::with_config(IstaConfig::bitset()).mine_with_stats(&db, 1);
        use fim_obs::Counter;
        assert_eq!(scalar.counters.get(Counter::WordsAnded), 0);
        assert!(bitset.counters.get(Counter::WordsAnded) > 0);
    }

    #[test]
    fn patricia_compresses_long_chains() {
        // wide transactions build long unary chains: the uncompressed
        // layout pays one node per item, the Patricia layout one node per
        // branch — same output, far fewer (peak) nodes
        let db = RecodedDatabase::from_dense(
            vec![
                (0..50).collect(),
                (10..60).collect(),
                (20..70).collect(),
                (0..30).chain(50..70).collect(),
            ],
            70,
        );
        let (pat_result, pat) = IstaMiner::default().mine_with_stats(&db, 1);
        let (plain_result, plain) =
            IstaMiner::with_config(IstaConfig::without_patricia()).mine_with_stats(&db, 1);
        assert_eq!(
            pat_result.canonicalized(),
            plain_result.canonicalized(),
            "layouts must agree exactly"
        );
        assert!(
            pat.peak_nodes * 2 <= plain.peak_nodes,
            "expected ≥2× peak-node reduction, got {} vs {}",
            pat.peak_nodes,
            plain.peak_nodes
        );
        // conceptual node counts agree; the plain layout reports no
        // segment bytes
        assert_eq!(pat.memory.seg_items, plain.memory.seg_items);
        assert_eq!(plain.memory.seg_bytes, 0);
        assert!(pat.memory.seg_bytes > 0);
    }

    #[test]
    fn governed_unlimited_budget_is_complete_and_identical() {
        let db = paper_db();
        for minsupp in 1..=4 {
            let want = IstaMiner::default().mine(&db, minsupp).canonicalized();
            let outcome =
                IstaMiner::default().mine_governed(&db, minsupp, &fim_core::Budget::unlimited());
            assert!(!outcome.is_interrupted());
            assert_eq!(outcome.into_result().canonicalized(), want);
        }
    }

    #[test]
    fn transaction_budget_yields_exact_prefix_result() {
        let db = paper_db();
        let miner = IstaMiner::with_config(IstaConfig::without_coalescing());
        for k in 1..db.transactions().len() {
            let budget = fim_core::Budget::unlimited().with_max_transactions(k as u64);
            let (outcome, _) = miner.mine_governed_with_stats(&db, 2, &budget);
            let prefix = RecodedDatabase::from_dense(
                db.transactions()[..k].iter().map(|t| t.to_vec()).collect(),
                db.num_items(),
            );
            let want = mine_reference(&prefix, 2);
            match outcome {
                fim_core::MineOutcome::Interrupted {
                    partial,
                    reason,
                    progress,
                } => {
                    assert_eq!(reason, fim_core::TripReason::TransactionBudget);
                    assert_eq!(progress.processed, k as u64);
                    assert_eq!(progress.total, Some(8));
                    assert_eq!(partial.canonicalized(), want, "prefix {k}");
                }
                other => panic!("expected interruption at k={k}, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_token_interrupts_before_first_transaction() {
        let db = paper_db();
        let token = fim_core::CancelToken::new();
        token.cancel();
        let budget = fim_core::Budget::unlimited().with_cancel(token);
        let (outcome, _) = IstaMiner::default().mine_governed_with_stats(&db, 1, &budget);
        match outcome {
            fim_core::MineOutcome::Interrupted {
                partial,
                reason,
                progress,
            } => {
                assert!(partial.is_empty());
                assert_eq!(reason, fim_core::TripReason::Cancelled);
                assert_eq!(progress.processed, 0);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn node_budget_without_degradation_interrupts() {
        let db = paper_db();
        let budget = fim_core::Budget::unlimited().with_max_nodes(3);
        let (outcome, _) = IstaMiner::default().mine_governed_with_stats(&db, 1, &budget);
        match outcome {
            fim_core::MineOutcome::Interrupted { reason, .. } => {
                assert_eq!(reason, fim_core::TripReason::NodeBudget);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn node_budget_with_degradation_completes_at_raised_threshold() {
        let db = paper_db();
        let budget = fim_core::Budget::unlimited()
            .with_max_nodes(6)
            .with_degradation();
        let (outcome, stats) = IstaMiner::default().mine_governed_with_stats(&db, 1, &budget);
        match outcome {
            fim_core::MineOutcome::Complete {
                result,
                degradation: Some(d),
            } => {
                assert_eq!(d.requested_minsupp, 1);
                assert!(d.effective_minsupp > 1, "threshold must have been raised");
                assert!(d.steps >= 1);
                // the degraded result is exactly the answer at the raised
                // threshold
                let want = mine_reference(&db, d.effective_minsupp);
                assert_eq!(result.canonicalized(), want);
                assert!(stats.memory.live_nodes - 1 <= 6 || d.effective_minsupp == u32::MAX);
            }
            other => panic!("expected degraded completion, got {other:?}"),
        }
    }

    #[test]
    fn byte_budget_trips() {
        let db = paper_db();
        let budget = fim_core::Budget::unlimited().with_max_bytes(64);
        let (outcome, _) = IstaMiner::default().mine_governed_with_stats(&db, 1, &budget);
        match outcome {
            fim_core::MineOutcome::Interrupted { reason, .. } => {
                assert_eq!(reason, fim_core::TripReason::ByteBudget);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn known_set_at_minsupp_three() {
        let db = paper_db();
        let got = IstaMiner::default().mine(&db, 3).canonicalized();
        assert_eq!(got.support_of(&ItemSet::from([1, 2])), Some(4)); // {b,c}
        assert_eq!(got.support_of(&ItemSet::from([3, 4])), Some(3)); // {d,e}
    }
}

//! Versioned binary snapshots of the IsTa prefix tree.
//!
//! The cumulative scheme makes checkpoint/resume natural: the tree after
//! `k` transactions *is* the complete mining state — persisting it and
//! reloading it later continues the run with results identical to an
//! uninterrupted one. The format is deliberately simple and fully
//! validated on load (a truncated, bit-flipped, or hand-forged file comes
//! back as [`FimError::Corrupt`], never as a panic or a silently wrong
//! tree).
//!
//! Format version 2 (current) serializes the Patricia layout — the node
//! table followed by the shared segment item store:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"ISTA"
//!      4     4  format version (little-endian u32, currently 2)
//!      8     4  num_items   — item universe size
//!     12     4  weight      — total processed transaction weight
//!     16     4  node_count  — arena slots, pseudo-root included
//!     20     4  seg_items   — total items across all segments
//!     24  24·n  nodes       — (seg_off, seg_len, supp, raw, sibling,
//!                             children) each
//!          4·s  items       — the segment store, one u32 per item
//!           4  crc32        — IEEE CRC-32 of bytes 4 .. end-4
//! ```
//!
//! Version 1 (the pre-Patricia chain layout: a 16-byte header and
//! `(item, supp, raw, sibling, children)` nodes) is still read — each v1
//! node loads as a length-1 segment, after which ordinary insertion and
//! merging recompress paths incrementally — but no longer written.
//!
//! The writer compacts the tree first, so the snapshot holds exactly the
//! live nodes and a garbage-free item store (compaction is
//! output-invariant; see [`PrefixTree::compact`]). Per-node `step` stamps
//! are transient epoch state and are not persisted; they restart at zero
//! after a reload, which does not affect any reported set or support.

use crate::arena::{PatNode, SegArena, NONE};
use crate::tree::PrefixTree;
use fim_core::FimError;
use std::io::{Read, Write};

/// Magic bytes opening every snapshot.
pub const MAGIC: [u8; 4] = *b"ISTA";

/// Current snapshot format version.
pub const VERSION: u32 = 2;

/// Oldest format version [`read_tree`] still accepts.
pub const MIN_VERSION: u32 = 1;

const V1_NODE_FIELDS: usize = 5;
const V2_NODE_FIELDS: usize = 6;

/// Writes `tree` as a versioned snapshot. Compacts the tree first (an
/// output-invariant relocation), so the caller sees no behavioural change
/// beyond the defragmentation.
pub fn write_tree(tree: &mut PrefixTree, w: &mut dyn Write) -> Result<(), FimError> {
    tree.compact();
    let arena = tree.arena();
    let slots = arena.slots();
    let items = arena.items_slice();
    let mut body: Vec<u8> =
        Vec::with_capacity(20 + slots.len() * V2_NODE_FIELDS * 4 + items.len() * 4);
    push_u32(&mut body, VERSION);
    push_u32(&mut body, tree.num_items());
    push_u32(&mut body, tree.transactions_processed());
    push_u32(&mut body, slots.len() as u32);
    push_u32(&mut body, items.len() as u32);
    for n in slots {
        push_u32(&mut body, n.seg_off);
        push_u32(&mut body, n.seg_len);
        push_u32(&mut body, n.supp);
        push_u32(&mut body, n.raw);
        push_u32(&mut body, n.sibling);
        push_u32(&mut body, n.children);
    }
    for &i in items {
        push_u32(&mut body, i);
    }
    w.write_all(&MAGIC)?;
    w.write_all(&body)?;
    w.write_all(&crc32(&body).to_le_bytes())?;
    Ok(())
}

/// Reads and fully validates a snapshot written by [`write_tree`] — the
/// current version 2 or the legacy version 1 chain layout.
pub fn read_tree(r: &mut dyn Read) -> Result<PrefixTree, FimError> {
    let mut magic = [0u8; 4];
    read_exact(r, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(FimError::Corrupt(format!(
            "bad magic {magic:02x?}, expected {MAGIC:02x?}"
        )));
    }
    let mut version_bytes = [0u8; 4];
    read_exact(r, &mut version_bytes, "version")?;
    match u32::from_le_bytes(version_bytes) {
        1 => read_v1(r, version_bytes),
        2 => read_v2(r, version_bytes),
        v => Err(FimError::Corrupt(format!(
            "unsupported snapshot version {v} (this build reads {MIN_VERSION}..={VERSION})"
        ))),
    }
}

fn read_v2(r: &mut dyn Read, version_bytes: [u8; 4]) -> Result<PrefixTree, FimError> {
    let mut header = [0u8; 16];
    read_exact(r, &mut header, "header")?;
    let num_items = u32_at(&header, 0);
    let weight = u32_at(&header, 4);
    let node_count = u32_at(&header, 8);
    let seg_items = u32_at(&header, 12);
    if node_count == 0 || node_count == NONE {
        return Err(FimError::Corrupt(format!("bad node count {node_count}")));
    }
    let Some(body_len) = (node_count as usize)
        .checked_mul(V2_NODE_FIELDS * 4)
        .and_then(|n| n.checked_add(seg_items as usize * 4))
        .filter(|len| *len <= u32::MAX as usize)
    else {
        return Err(FimError::Corrupt(format!(
            "node count {node_count} / segment size {seg_items} overflow the format"
        )));
    };
    let mut table = vec![0u8; body_len];
    read_exact(r, &mut table, "node and segment tables")?;
    check_crc(r, &[&version_bytes, &header, &table])?;
    let nodes_end = node_count as usize * V2_NODE_FIELDS * 4;
    let mut arena = SegArena::new();
    for (k, slot) in table[..nodes_end]
        .chunks_exact(V2_NODE_FIELDS * 4)
        .enumerate()
    {
        let node = PatNode {
            seg_off: u32_at(slot, 0),
            seg_len: u32_at(slot, 4),
            supp: u32_at(slot, 8),
            step: 0,
            raw: u32_at(slot, 12),
            sibling: u32_at(slot, 16),
            children: u32_at(slot, 20),
        };
        if u64::from(node.seg_off) + u64::from(node.seg_len) > u64::from(seg_items) {
            return Err(FimError::Corrupt(format!(
                "segment of node {k} out of bounds of the item store"
            )));
        }
        arena.load_node(node);
    }
    for item in table[nodes_end..].chunks_exact(4) {
        arena.load_item(u32_at(item, 0));
    }
    PrefixTree::from_raw_parts(arena, 0, weight, num_items).map_err(FimError::Corrupt)
}

/// Legacy reader: a v1 chain node becomes a length-1 segment. The tree is
/// usable immediately; subsequent insertion and pruning recompress paths
/// through the ordinary split/merge machinery.
fn read_v1(r: &mut dyn Read, version_bytes: [u8; 4]) -> Result<PrefixTree, FimError> {
    let mut header = [0u8; 12];
    read_exact(r, &mut header, "header")?;
    let num_items = u32_at(&header, 0);
    let weight = u32_at(&header, 4);
    let node_count = u32_at(&header, 8);
    if node_count == 0 || node_count == NONE {
        return Err(FimError::Corrupt(format!("bad node count {node_count}")));
    }
    let Some(body_len) = (node_count as usize)
        .checked_mul(V1_NODE_FIELDS * 4)
        .filter(|len| *len <= u32::MAX as usize)
    else {
        return Err(FimError::Corrupt(format!(
            "node count {node_count} overflows the format"
        )));
    };
    let mut nodes = vec![0u8; body_len];
    read_exact(r, &mut nodes, "node table")?;
    check_crc(r, &[&version_bytes, &header, &nodes])?;
    let mut arena = SegArena::new();
    for (k, slot) in nodes.chunks_exact(V1_NODE_FIELDS * 4).enumerate() {
        let item = u32_at(slot, 0);
        let node = PatNode {
            seg_off: 0,
            seg_len: 0,
            supp: u32_at(slot, 4),
            step: 0,
            raw: u32_at(slot, 8),
            sibling: u32_at(slot, 12),
            children: u32_at(slot, 16),
        };
        if k == 0 {
            // the v1 pseudo-root stores the sentinel pseudo-item
            if item != NONE {
                return Err(FimError::Corrupt(format!(
                    "v1 root holds item {item}, expected the pseudo-item"
                )));
            }
            arena.load_node(node);
        } else {
            arena.load_node(PatNode {
                seg_off: arena.items_len() as u32,
                seg_len: 1,
                ..node
            });
            arena.load_item(item);
        }
    }
    PrefixTree::from_raw_parts(arena, 0, weight, num_items).map_err(FimError::Corrupt)
}

fn check_crc(r: &mut dyn Read, hashed: &[&[u8]]) -> Result<(), FimError> {
    let mut crc_bytes = [0u8; 4];
    read_exact(r, &mut crc_bytes, "crc")?;
    let mut hasher = Crc32::new();
    for part in hashed {
        hasher.update(part);
    }
    let actual = hasher.finish();
    let expected = u32::from_le_bytes(crc_bytes);
    if actual != expected {
        return Err(FimError::Corrupt(format!(
            "crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(())
}

fn read_exact(r: &mut dyn Read, buf: &mut [u8], what: &str) -> Result<(), FimError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FimError::Corrupt(format!("truncated snapshot while reading {what}"))
        } else {
            FimError::Io(e)
        }
    })
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn u32_at(buf: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4-byte slice"))
}

/// Incremental IEEE CRC-32 (polynomial `0xEDB88320`), computed bitwise —
/// snapshot I/O is far from any hot path, so a lookup table is not worth
/// its footprint.
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(!0)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u32::from(b);
            for _ in 0..8 {
                let lsb = self.0 & 1;
                self.0 >>= 1;
                if lsb != 0 {
                    self.0 ^= 0xEDB8_8320;
                }
            }
        }
    }

    fn finish(&self) -> u32 {
        !self.0
    }
}

/// One-shot CRC-32 of `bytes` — the checksum the snapshot format embeds,
/// exported so wrapping formats (the named-catalog checkpoint in `fim-io`)
/// can protect their own headers with the same primitive.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::{Item, ItemSet};

    fn sample_tree() -> PrefixTree {
        let mut t = PrefixTree::new(5);
        for tx in [
            &[0u32, 2, 4][..],
            &[1, 3, 4],
            &[0, 1, 2, 3],
            &[0, 2, 4],
            &[1, 2],
        ] {
            t.add_transaction(tx);
        }
        t
    }

    fn snapshot(tree: &mut PrefixTree) -> Vec<u8> {
        let mut buf = Vec::new();
        write_tree(tree, &mut buf).expect("write to Vec cannot fail");
        buf
    }

    #[test]
    fn crc32_known_answer() {
        // the classic check value of the IEEE polynomial
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let mut t = sample_tree();
        let buf = snapshot(&mut t);
        let r = read_tree(&mut buf.as_slice()).expect("round trip");
        r.validate_invariants();
        assert_eq!(r.num_items(), t.num_items());
        assert_eq!(r.transactions_processed(), t.transactions_processed());
        assert_eq!(r.node_count(), t.node_count());
        assert_eq!(r.memory_stats().seg_items, t.memory_stats().seg_items);
        assert_eq!(r.report(1), t.report(1));
        assert_eq!(r.report(2), t.report(2));
        assert_eq!(r.dump(), t.dump());
        let mut ws = r.weighted_transactions();
        let mut want = t.weighted_transactions();
        ws.sort();
        want.sort();
        assert_eq!(ws, want);
    }

    #[test]
    fn resumed_tree_continues_identically() {
        let more: &[&[Item]] = &[&[1, 2, 3], &[0, 4], &[0, 1, 2, 3, 4]];
        let mut t = sample_tree();
        let buf = snapshot(&mut t);
        let mut resumed = read_tree(&mut buf.as_slice()).expect("round trip");
        for tx in more {
            t.add_transaction(tx);
            resumed.add_transaction(tx);
        }
        resumed.validate_invariants();
        assert_eq!(resumed.report(1), t.report(1));
        assert_eq!(
            resumed.lookup(&ItemSet::from([0, 2, 4])),
            t.lookup(&ItemSet::from([0, 2, 4]))
        );
    }

    #[test]
    fn fragmented_tree_is_compacted_into_the_snapshot() {
        let mut t = sample_tree();
        t.prune(&[0, 0, 0, 0, 0], 3); // scatter slots through the free list
        t.validate_invariants();
        let report_before = t.report(3);
        let buf = snapshot(&mut t);
        let r = read_tree(&mut buf.as_slice()).expect("round trip");
        r.validate_invariants();
        assert_eq!(r.report(3), report_before);
        assert_eq!(r.memory_stats().free_slots, 0);
    }

    #[test]
    fn empty_tree_round_trips() {
        let mut t = PrefixTree::new(3);
        let buf = snapshot(&mut t);
        let r = read_tree(&mut buf.as_slice()).expect("round trip");
        assert_eq!(r.node_count(), 0);
        assert_eq!(r.num_items(), 3);
        assert!(r.report(1).is_empty());
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut t = sample_tree();
        let mut buf = snapshot(&mut t);
        buf[0] = b'X';
        let err = read_tree(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, FimError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn unsupported_version_is_corrupt() {
        let mut t = sample_tree();
        let mut buf = snapshot(&mut t);
        buf[4] = 99;
        let err = read_tree(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_anywhere_is_corrupt_not_panic() {
        let mut t = sample_tree();
        let buf = snapshot(&mut t);
        for len in 0..buf.len() {
            let err = read_tree(&mut &buf[..len]).unwrap_err();
            assert!(
                matches!(err, FimError::Corrupt(_)),
                "truncation at {len}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let mut t = sample_tree();
        let buf = snapshot(&mut t);
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x01;
            assert!(
                read_tree(&mut bad.as_slice()).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn forged_crc_cannot_smuggle_bad_structure() {
        // rewrite a node's sibling link to point at itself, then fix the
        // CRC so only the structural validation can catch it
        let mut t = sample_tree();
        let mut buf = snapshot(&mut t);
        let first_node = 24 + V2_NODE_FIELDS * 4; // slot 1, after the root
        let sibling_off = first_node + 16;
        buf[sibling_off..sibling_off + 4].copy_from_slice(&1u32.to_le_bytes());
        let body_end = buf.len() - 4;
        let fixed = crc32(&buf[4..body_end]);
        let crc_off = body_end;
        buf[crc_off..crc_off + 4].copy_from_slice(&fixed.to_le_bytes());
        let err = read_tree(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, FimError::Corrupt(_)), "{err}");
    }

    #[test]
    fn forged_crc_cannot_smuggle_out_of_bounds_segment() {
        // point the root's first child at a segment beyond the item store
        let mut t = sample_tree();
        let mut buf = snapshot(&mut t);
        let first_node = 24 + V2_NODE_FIELDS * 4;
        buf[first_node..first_node + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let body_end = buf.len() - 4;
        let fixed = crc32(&buf[4..body_end]);
        buf[body_end..body_end + 4].copy_from_slice(&fixed.to_le_bytes());
        let err = read_tree(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bounds"), "{err}");
    }

    #[test]
    fn zero_node_count_is_corrupt() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        let mut body = Vec::new();
        push_u32(&mut body, VERSION);
        push_u32(&mut body, 3); // num_items
        push_u32(&mut body, 0); // weight
        push_u32(&mut body, 0); // node_count: must be >= 1 for the root
        push_u32(&mut body, 0); // seg_items
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        let err = read_tree(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("node count"), "{err}");
    }

    /// Hand-assembles a version-1 snapshot (the pre-Patricia chain
    /// layout) of the two-transaction database {0,2}, {2}: a root with
    /// one child chain 2 → 0.
    fn v1_snapshot() -> Vec<u8> {
        let mut body = Vec::new();
        push_u32(&mut body, 1); // version
        push_u32(&mut body, 3); // num_items
        push_u32(&mut body, 2); // weight
        push_u32(&mut body, 3); // node_count
        for node in [
            // (item, supp, raw, sibling, children)
            [NONE, 2, 0, NONE, 1], // pseudo-root
            [2, 2, 1, NONE, 2],    // {2} supp 2, terminal of tx {2}
            [0, 1, 1, NONE, NONE], // {2,0} supp 1, terminal of tx {0,2}
        ] {
            for v in node {
                push_u32(&mut body, v);
            }
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&body);
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        buf
    }

    #[test]
    fn v1_snapshot_still_loads() {
        let buf = v1_snapshot();
        let t = read_tree(&mut buf.as_slice()).expect("v1 load");
        t.validate_invariants();
        assert_eq!(t.num_items(), 3);
        assert_eq!(t.transactions_processed(), 2);
        assert_eq!(t.lookup(&ItemSet::from([2])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([0, 2])), Some(1));
        // v1 chains load as length-1 segments: 2 physical = 2 conceptual
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.memory_stats().seg_items, 2);
        let mut ws = t.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![0, 2], 1), (vec![2], 1)]);
    }

    #[test]
    fn v1_reload_resumes_and_rewrites_as_v2() {
        let buf = v1_snapshot();
        let mut resumed = read_tree(&mut buf.as_slice()).expect("v1 load");
        // the same database built natively, for comparison
        let mut native = PrefixTree::new(3);
        native.add_transaction(&[0, 2]);
        native.add_transaction(&[2]);
        for tree in [&mut resumed, &mut native] {
            tree.add_transaction(&[0, 1, 2]);
            tree.add_transaction(&[1, 2]);
        }
        resumed.validate_invariants();
        assert_eq!(resumed.report(1), native.report(1));
        // re-snapshotting writes the current version
        let rewritten = snapshot(&mut resumed);
        assert_eq!(u32::from_le_bytes(rewritten[4..8].try_into().unwrap()), 2);
        let back = read_tree(&mut rewritten.as_slice()).expect("v2 round trip");
        assert_eq!(back.report(1), native.report(1));
    }

    #[test]
    fn v1_truncation_and_flips_are_detected() {
        let buf = v1_snapshot();
        for len in 0..buf.len() {
            assert!(
                read_tree(&mut &buf[..len]).is_err(),
                "v1 truncation at {len} went undetected"
            );
        }
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x01;
            assert!(
                read_tree(&mut bad.as_slice()).is_err(),
                "v1 flip at byte {pos} went undetected"
            );
        }
    }
}

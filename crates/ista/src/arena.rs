//! Index-based node arenas for the IsTa prefix trees.
//!
//! The paper's C implementation links nodes with raw pointers (Fig. 1);
//! here nodes live in one `Vec` and link through `u32` indices, which keeps
//! the structure compact, cache-friendly, and free of `unsafe`. Freed nodes
//! are kept on an intrusive free list threaded through the `sibling` field
//! so pruning can recycle them.
//!
//! Two arenas live here: [`NodeArena`] backs the uncompressed
//! [`PlainPrefixTree`](crate::plain::PlainPrefixTree) (one item per node,
//! 20 bytes), and [`SegArena`] backs the path-compressed Patricia
//! [`PrefixTree`](crate::tree::PrefixTree), whose nodes store an item
//! *segment* — a `(offset, length)` slice into one shared item vector — so
//! unary chains collapse into single nodes (paper §3.3's Patricia variant).

use fim_core::Item;
use fim_obs::{Counter, Counters};

/// Sentinel index meaning "no node".
pub const NONE: u32 = u32::MAX;

/// One prefix tree node (paper Fig. 1).
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// The item associated with this node (the largest item of the set it
    /// represents is at the top of its path; this node holds the *last*,
    /// i.e. smallest-so-far item of the represented set).
    pub item: Item,
    /// Support of the represented item set within the processed prefix.
    pub supp: u32,
    /// Most recent update step (index of the transaction whose processing
    /// last touched this node); the incremental-update flag of the paper.
    pub step: u32,
    /// Total weight of raw transactions whose (possibly pruning-reduced)
    /// item set is exactly the set this node represents. Terminal counts
    /// let a tree be replayed into another one with correct additive
    /// support semantics (see [`PrefixTree::merge`]); the sum of `raw`
    /// over all nodes (plus the root's, which absorbs transactions pruned
    /// to the empty set) equals the processed transaction weight.
    ///
    /// [`PrefixTree::merge`]: crate::tree::PrefixTree::merge
    pub raw: u32,
    /// Next node in the sibling list (descending item order), or [`NONE`].
    pub sibling: u32,
    /// Head of the child list (all child items < `item`), or [`NONE`].
    pub children: u32,
}

/// Growable arena of [`Node`]s with index links and a free list.
#[derive(Clone, Debug, Default)]
pub struct NodeArena {
    nodes: Vec<Node>,
    free_head: u32,
    live: usize,
    counters: Counters,
}

impl NodeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        NodeArena {
            nodes: Vec::new(),
            free_head: NONE,
            live: 0,
            counters: Counters::new(),
        }
    }

    /// Creates an arena with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        NodeArena {
            nodes: Vec::with_capacity(cap),
            free_head: NONE,
            live: 0,
            counters: Counters::new(),
        }
    }

    /// Allocates a node, reusing a freed slot when available.
    pub fn alloc(&mut self, node: Node) -> u32 {
        self.counters.bump(Counter::NodeAllocs);
        self.live += 1;
        if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].sibling;
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NONE, "node arena exhausted");
            self.nodes.push(node);
            idx
        }
    }

    /// Returns a node slot to the free list.
    ///
    /// The caller must ensure no live links point to `idx`.
    pub fn free(&mut self, idx: u32) {
        debug_assert!(self.live > 0);
        self.live -= 1;
        let n = &mut self.nodes[idx as usize];
        n.sibling = self.free_head;
        n.children = NONE;
        self.free_head = idx;
    }

    /// Number of live (allocated, not freed) nodes.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity_used(&self) -> usize {
        self.nodes.len()
    }

    /// Number of slots currently parked on the free list.
    pub fn free_count(&self) -> usize {
        self.nodes.len() - self.live
    }

    /// Hot-loop counters accumulated by this arena (allocations plus the
    /// traversal counts the owning tree pushes in).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable counter access for the owning tree's traversal loops.
    #[inline]
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Relocates the live nodes reachable from `root` into depth-first
    /// order — each node directly followed by its subtree, then by its next
    /// sibling — truncating freed slots and emptying the free list. Returns
    /// the new index of `root` (always `0`).
    ///
    /// After heavy pruning churn the free list scatters live nodes across
    /// the slot vector, so the `isect`/`report` traversals (which walk
    /// exactly this depth-first order) stride unpredictably through memory;
    /// compaction restores a nearly-sequential walk and returns the freed
    /// tail to the allocator. All `sibling`/`children` links are remapped;
    /// every other field is preserved bit-for-bit.
    ///
    /// The caller must ensure every live node is reachable from `root`
    /// (checked in debug builds).
    pub fn compact(&mut self, root: u32) -> u32 {
        debug_assert!(root != NONE);
        // Pass 1: assign new indices in depth-first visitation order. The
        // explicit stack mirrors the recursion of `isect`: a frame is a
        // node whose subtree-then-right-siblings remain to be numbered.
        let mut order: Vec<u32> = Vec::with_capacity(self.live);
        let mut remap: Vec<u32> = vec![NONE; self.nodes.len()];
        let mut stack: Vec<u32> = vec![root];
        while let Some(mut node) = stack.pop() {
            while node != NONE {
                remap[node as usize] = order.len() as u32;
                order.push(node);
                let n = &self.nodes[node as usize];
                if n.sibling != NONE {
                    stack.push(n.sibling);
                }
                node = n.children;
            }
        }
        debug_assert_eq!(order.len(), self.live, "unreachable live nodes");
        // Pass 2: emit the nodes in their new order with remapped links.
        let mut nodes: Vec<Node> = Vec::with_capacity(order.len());
        for &old in &order {
            let mut n = self.nodes[old as usize];
            if n.sibling != NONE {
                n.sibling = remap[n.sibling as usize];
            }
            if n.children != NONE {
                n.children = remap[n.children as usize];
            }
            nodes.push(n);
        }
        self.nodes = nodes;
        self.free_head = NONE;
        remap[root as usize]
    }

    /// All slots in index order, live and free-listed alike (free slots are
    /// distinguishable only through the free list, so callers should
    /// [`compact`](Self::compact) first when they need live nodes only —
    /// the snapshot writer does).
    pub fn slots(&self) -> &[Node] {
        &self.nodes
    }

    /// Immutable node access.
    #[inline]
    pub fn get(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    /// Mutable node access.
    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> &mut Node {
        &mut self.nodes[idx as usize]
    }
}

/// One path-compressed prefix tree node: a strictly descending item
/// *segment* (slice into the arena's shared item store) plus the same
/// bookkeeping as [`Node`]. The segment represents a unary chain of the
/// uncompressed tree whose conceptual nodes all share one `supp` and one
/// `step` (the tree splits a node before any update that would touch only
/// a proper prefix of its segment, so the invariant is maintained
/// eagerly); `raw` belongs to the *deepest* conceptual node — the set
/// "path plus full segment".
#[derive(Clone, Copy, Debug)]
pub struct PatNode {
    /// Offset of the segment in the arena's item store.
    pub seg_off: u32,
    /// Number of items in the segment (0 only for the pseudo-root).
    pub seg_len: u32,
    /// Support of the represented item set(s) within the processed prefix.
    pub supp: u32,
    /// Most recent update step (see [`Node::step`]), uniform over the
    /// segment's conceptual nodes.
    pub step: u32,
    /// Terminal weight of the deepest conceptual node (see [`Node::raw`]).
    pub raw: u32,
    /// Next node in the sibling list (descending first item), or [`NONE`].
    pub sibling: u32,
    /// Head of the child list (first items < the segment's last item), or
    /// [`NONE`].
    pub children: u32,
}

/// Growable arena of [`PatNode`]s with index links, a free list, and the
/// shared segment item store.
///
/// Segment storage is append-only between [`compact`](Self::compact)ions:
/// freeing a node or rewriting its segment to a subsequence leaves garbage
/// items behind ([`garbage_items`](Self::garbage_items)); compaction
/// relocates both the nodes (depth-first) and the live segment bytes.
#[derive(Clone, Debug)]
pub struct SegArena {
    nodes: Vec<PatNode>,
    free_head: u32,
    live: usize,
    items: Vec<Item>,
    live_items: usize,
    counters: Counters,
}

impl Default for SegArena {
    fn default() -> Self {
        SegArena::new()
    }
}

impl SegArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SegArena {
            nodes: Vec::new(),
            free_head: NONE,
            live: 0,
            items: Vec::new(),
            live_items: 0,
            counters: Counters::new(),
        }
    }

    /// Allocates a node whose segment region is described by the node
    /// itself (used for the pseudo-root and by [`split`](Self::split),
    /// which reuses the split node's existing item region). Does not touch
    /// the item store.
    pub fn alloc_node(&mut self, node: PatNode) -> u32 {
        self.counters.bump(Counter::NodeAllocs);
        self.live += 1;
        if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].sibling;
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NONE, "node arena exhausted");
            self.nodes.push(node);
            idx
        }
    }

    /// Allocates a node holding a copy of the strictly descending segment
    /// `seg` (appended to the item store).
    pub fn alloc_seg(
        &mut self,
        seg: &[Item],
        supp: u32,
        step: u32,
        raw: u32,
        sibling: u32,
        children: u32,
    ) -> u32 {
        debug_assert!(seg.windows(2).all(|w| w[0] > w[1]));
        let seg_off = self.items.len() as u32;
        self.items.extend_from_slice(seg);
        self.live_items += seg.len();
        self.alloc_node(PatNode {
            seg_off,
            seg_len: seg.len() as u32,
            supp,
            step,
            raw,
            sibling,
            children,
        })
    }

    /// Returns a node slot to the free list; its segment items become
    /// garbage (reclaimed by [`compact`](Self::compact)).
    ///
    /// The caller must ensure no live links point to `idx`.
    pub fn free(&mut self, idx: u32) {
        debug_assert!(self.live > 0);
        self.live -= 1;
        let n = &mut self.nodes[idx as usize];
        self.live_items -= n.seg_len as usize;
        n.seg_len = 0;
        n.sibling = self.free_head;
        n.children = NONE;
        self.free_head = idx;
    }

    /// Splits node `idx` after the first `k` segment items (`0 < k <
    /// seg_len`): the *head* keeps the slot — every incoming sibling or
    /// child link stays valid — and its first `k` items, with `raw` 0 and
    /// the *tail* as only child; the new tail node holds the remaining
    /// items, the head's former `raw`, and the head's former children.
    /// Both halves keep `supp` and `step` (uniform over the segment), and
    /// no item is copied: head and tail describe disjoint halves of the
    /// original item region. Returns the tail index.
    pub fn split(&mut self, idx: u32, k: u32) -> u32 {
        self.counters.bump(Counter::Splits);
        let n = self.nodes[idx as usize];
        debug_assert!(k > 0 && k < n.seg_len);
        let tail = self.alloc_node(PatNode {
            seg_off: n.seg_off + k,
            seg_len: n.seg_len - k,
            supp: n.supp,
            step: n.step,
            raw: n.raw,
            sibling: NONE,
            children: n.children,
        });
        let h = &mut self.nodes[idx as usize];
        h.seg_len = k;
        h.raw = 0;
        h.children = tail;
        tail
    }

    /// Rewrites the node's segment to `kept` — a non-empty subsequence of
    /// the current segment (pruning eliminated the other items). The
    /// shrinkage becomes garbage.
    pub fn rewrite_seg(&mut self, idx: u32, kept: &[Item]) {
        let n = self.nodes[idx as usize];
        let off = n.seg_off as usize;
        let old = n.seg_len as usize;
        debug_assert!(!kept.is_empty() && kept.len() <= old);
        self.items[off..off + kept.len()].copy_from_slice(kept);
        self.nodes[idx as usize].seg_len = kept.len() as u32;
        self.live_items -= old - kept.len();
    }

    /// The node's segment (strictly descending item codes).
    #[inline]
    pub fn seg(&self, idx: u32) -> &[Item] {
        let n = &self.nodes[idx as usize];
        &self.items[n.seg_off as usize..(n.seg_off + n.seg_len) as usize]
    }

    /// The `j`-th item of the node's segment.
    #[inline]
    pub fn item_at(&self, idx: u32, j: usize) -> Item {
        self.items[self.nodes[idx as usize].seg_off as usize + j]
    }

    /// First (largest) item of the node's segment. Must not be called on
    /// the zero-length pseudo-root.
    #[inline]
    pub fn first_item(&self, idx: u32) -> Item {
        debug_assert!(self.nodes[idx as usize].seg_len > 0);
        self.items[self.nodes[idx as usize].seg_off as usize]
    }

    /// Last (smallest) item of the node's segment, or `Item::MAX` for the
    /// zero-length pseudo-root (every item fits below it).
    #[inline]
    pub fn last_item(&self, idx: u32) -> Item {
        let n = &self.nodes[idx as usize];
        if n.seg_len == 0 {
            Item::MAX
        } else {
            self.items[(n.seg_off + n.seg_len - 1) as usize]
        }
    }

    /// Number of live (allocated, not freed) nodes.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity_used(&self) -> usize {
        self.nodes.len()
    }

    /// Number of slots currently parked on the free list.
    pub fn free_count(&self) -> usize {
        self.nodes.len() - self.live
    }

    /// Items referenced by live segments (= conceptual node count,
    /// excluding the pseudo-root).
    pub fn live_items(&self) -> usize {
        self.live_items
    }

    /// Size of the segment item store, live and garbage alike.
    pub fn items_len(&self) -> usize {
        self.items.len()
    }

    /// Garbage items left behind by [`free`](Self::free) and
    /// [`rewrite_seg`](Self::rewrite_seg).
    pub fn garbage_items(&self) -> usize {
        self.items.len() - self.live_items
    }

    /// Hot-loop counters accumulated by this arena (allocations, splits,
    /// plus the segment-scan counts `isect` pushes in). Survives
    /// [`compact`](Self::compact); snapshot loads start from zero.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable counter access for the owning tree's traversal loops.
    #[inline]
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Adds another arena's counters into this one (shard-merge
    /// aggregation: replayed work lands here, the donor's own history is
    /// absorbed explicitly).
    pub fn absorb_counters(&mut self, other: &Counters) {
        self.counters.merge(other);
    }

    /// Relocates the live nodes reachable from `root` into depth-first
    /// order (see [`NodeArena::compact`]) *and* rebuilds the item store,
    /// copying each live node's segment into the same depth-first order —
    /// so both the node walk and the segment reads of `isect`/`report`
    /// stride nearly-sequential memory, and garbage items are dropped.
    /// Returns the new index of `root` (always `0`).
    pub fn compact(&mut self, root: u32) -> u32 {
        debug_assert!(root != NONE);
        let mut order: Vec<u32> = Vec::with_capacity(self.live);
        let mut remap: Vec<u32> = vec![NONE; self.nodes.len()];
        let mut stack: Vec<u32> = vec![root];
        while let Some(mut node) = stack.pop() {
            while node != NONE {
                remap[node as usize] = order.len() as u32;
                order.push(node);
                let n = &self.nodes[node as usize];
                if n.sibling != NONE {
                    stack.push(n.sibling);
                }
                node = n.children;
            }
        }
        debug_assert_eq!(order.len(), self.live, "unreachable live nodes");
        let mut nodes: Vec<PatNode> = Vec::with_capacity(order.len());
        let mut items: Vec<Item> = Vec::with_capacity(self.live_items);
        for &old in &order {
            let mut n = self.nodes[old as usize];
            let off = n.seg_off as usize;
            let len = n.seg_len as usize;
            n.seg_off = items.len() as u32;
            items.extend_from_slice(&self.items[off..off + len]);
            if n.sibling != NONE {
                n.sibling = remap[n.sibling as usize];
            }
            if n.children != NONE {
                n.children = remap[n.children as usize];
            }
            nodes.push(n);
        }
        self.nodes = nodes;
        self.items = items;
        self.live_items = self.items.len();
        self.free_head = NONE;
        remap[root as usize]
    }

    /// All node slots in index order (snapshot writer; callers must
    /// [`compact`](Self::compact) first so every slot is live).
    pub fn slots(&self) -> &[PatNode] {
        &self.nodes
    }

    /// The whole item store in index order (snapshot writer; compact
    /// first so it holds exactly the live segments, in node order).
    pub fn items_slice(&self) -> &[Item] {
        &self.items
    }

    /// Appends a node slot verbatim (snapshot loader). The arena only
    /// keeps its counters consistent; structural validity is the
    /// caller's job (`PrefixTree::from_raw_parts` validates fully).
    pub fn load_node(&mut self, node: PatNode) -> u32 {
        let idx = self.nodes.len() as u32;
        assert!(idx < NONE, "node arena exhausted");
        self.live += 1;
        self.live_items += node.seg_len as usize;
        self.nodes.push(node);
        idx
    }

    /// Appends one item to the segment store (snapshot loader).
    pub fn load_item(&mut self, item: Item) {
        self.items.push(item);
    }

    /// Immutable node access.
    #[inline]
    pub fn get(&self, idx: u32) -> &PatNode {
        &self.nodes[idx as usize]
    }

    /// Mutable node access.
    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> &mut PatNode {
        &mut self.nodes[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(item: Item) -> Node {
        Node {
            item,
            supp: 0,
            step: 0,
            raw: 0,
            sibling: NONE,
            children: NONE,
        }
    }

    #[test]
    fn alloc_returns_sequential_indices() {
        let mut a = NodeArena::new();
        assert_eq!(a.alloc(leaf(1)), 0);
        assert_eq!(a.alloc(leaf(2)), 1);
        assert_eq!(a.live_count(), 2);
        assert_eq!(a.capacity_used(), 2);
        assert_eq!(a.get(1).item, 2);
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut a = NodeArena::new();
        let x = a.alloc(leaf(1));
        let y = a.alloc(leaf(2));
        a.free(x);
        assert_eq!(a.live_count(), 1);
        let z = a.alloc(leaf(3));
        assert_eq!(z, x, "freed slot should be reused");
        assert_eq!(a.capacity_used(), 2);
        assert_eq!(a.get(z).item, 3);
        assert_eq!(a.get(y).item, 2);
    }

    #[test]
    fn free_order_is_lifo() {
        let mut a = NodeArena::new();
        let x = a.alloc(leaf(1));
        let y = a.alloc(leaf(2));
        a.free(x);
        a.free(y);
        assert_eq!(a.alloc(leaf(9)), y);
        assert_eq!(a.alloc(leaf(9)), x);
    }

    #[test]
    fn mutation_through_get_mut() {
        let mut a = NodeArena::new();
        let x = a.alloc(leaf(7));
        a.get_mut(x).supp = 42;
        assert_eq!(a.get(x).supp, 42);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let a = NodeArena::with_capacity(64);
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.capacity_used(), 0);
    }

    #[test]
    fn compact_reorders_depth_first_and_truncates() {
        // build root → (b → (c), a) with scattered slots: alloc extra nodes
        // and free them so live nodes land on non-contiguous indices
        let mut a = NodeArena::new();
        let junk1 = a.alloc(leaf(90));
        let root = a.alloc(leaf(99));
        let junk2 = a.alloc(leaf(91));
        let nb = a.alloc(leaf(2));
        let junk3 = a.alloc(leaf(92));
        let na = a.alloc(leaf(1));
        let nc = a.alloc(leaf(0));
        a.get_mut(root).children = nb;
        a.get_mut(nb).sibling = na;
        a.get_mut(nb).children = nc;
        a.free(junk1);
        a.free(junk2);
        a.free(junk3);
        assert_eq!(a.live_count(), 4);
        assert_eq!(a.capacity_used(), 7);
        assert_eq!(a.free_count(), 3);

        let new_root = a.compact(root);
        assert_eq!(new_root, 0);
        assert_eq!(a.live_count(), 4);
        assert_eq!(a.capacity_used(), 4, "freed slots truncated");
        assert_eq!(a.free_count(), 0);
        // depth-first order: root, b, c (b's child), a (b's sibling)
        assert_eq!(a.get(0).item, 99);
        assert_eq!(a.get(1).item, 2);
        assert_eq!(a.get(2).item, 0);
        assert_eq!(a.get(3).item, 1);
        // links remapped consistently
        assert_eq!(a.get(0).children, 1);
        assert_eq!(a.get(1).children, 2);
        assert_eq!(a.get(1).sibling, 3);
        assert_eq!(a.get(3).sibling, NONE);
    }

    #[test]
    fn compact_allocates_fresh_slots_afterwards() {
        let mut a = NodeArena::new();
        let root = a.alloc(leaf(9));
        let x = a.alloc(leaf(5));
        a.get_mut(root).children = x;
        let y = a.alloc(leaf(3));
        a.free(y);
        let root = a.compact(root);
        // the free list is gone: the next alloc extends the vector
        let z = a.alloc(leaf(7));
        assert_eq!(z, 2);
        assert_eq!(a.get(z).item, 7);
        assert_eq!(a.get(root).item, 9);
    }

    #[test]
    fn compact_single_node() {
        let mut a = NodeArena::new();
        let root = a.alloc(leaf(42));
        assert_eq!(a.compact(root), 0);
        assert_eq!(a.capacity_used(), 1);
        assert_eq!(a.get(0).item, 42);
    }

    fn pat_root(a: &mut SegArena) -> u32 {
        a.alloc_node(PatNode {
            seg_off: 0,
            seg_len: 0,
            supp: 0,
            step: 0,
            raw: 0,
            sibling: NONE,
            children: NONE,
        })
    }

    #[test]
    fn seg_split_shares_the_item_region() {
        let mut a = SegArena::new();
        let root = pat_root(&mut a);
        let n = a.alloc_seg(&[9, 7, 5], 3, 2, 1, NONE, NONE);
        a.get_mut(root).children = n;
        let items_before = a.items_len();
        let tail = a.split(n, 1);
        // no item copied, accounting unchanged
        assert_eq!(a.items_len(), items_before);
        assert_eq!(a.live_items(), 3);
        assert_eq!(a.seg(n), &[9]);
        assert_eq!(a.seg(tail), &[7, 5]);
        // the head keeps the slot; raw and children move to the tail
        assert_eq!(a.get(n).raw, 0);
        assert_eq!(a.get(n).children, tail);
        assert_eq!(a.get(tail).raw, 1);
        assert_eq!(a.get(tail).children, NONE);
        // supp and step are uniform over the former segment
        assert_eq!((a.get(n).supp, a.get(n).step), (3, 2));
        assert_eq!((a.get(tail).supp, a.get(tail).step), (3, 2));
        assert_eq!(a.first_item(tail), 7);
        assert_eq!(a.last_item(tail), 5);
        assert_eq!(a.last_item(root), Item::MAX);
    }

    #[test]
    fn seg_rewrite_and_free_track_garbage() {
        let mut a = SegArena::new();
        let root = pat_root(&mut a);
        let n = a.alloc_seg(&[8, 6, 4, 2], 1, 0, 0, NONE, NONE);
        a.get_mut(root).children = n;
        assert_eq!(a.garbage_items(), 0);
        a.rewrite_seg(n, &[8, 4]);
        assert_eq!(a.seg(n), &[8, 4]);
        assert_eq!(a.live_items(), 2);
        assert_eq!(a.garbage_items(), 2);
        let m = a.alloc_seg(&[3], 1, 0, 0, NONE, NONE);
        a.get_mut(n).children = m;
        a.get_mut(n).children = NONE;
        a.free(m);
        assert_eq!(a.live_items(), 2);
        assert_eq!(a.garbage_items(), 3);
        // compaction drops the garbage and relocates the live segment
        let root = a.compact(root);
        assert_eq!(root, 0);
        assert_eq!(a.items_len(), 2);
        assert_eq!(a.garbage_items(), 0);
        assert_eq!(a.seg(a.get(root).children), &[8, 4]);
    }

    #[test]
    fn seg_compact_orders_nodes_and_items_depth_first() {
        let mut a = SegArena::new();
        let root = pat_root(&mut a);
        let b = a.alloc_seg(&[5, 3], 2, 0, 1, NONE, NONE);
        let c = a.alloc_seg(&[1], 1, 0, 1, NONE, NONE);
        let d = a.alloc_seg(&[4], 1, 0, 1, NONE, NONE);
        a.get_mut(root).children = b;
        a.get_mut(b).sibling = d;
        a.get_mut(b).children = c;
        let junk = a.alloc_seg(&[9], 0, 0, 0, NONE, NONE);
        a.free(junk);
        let root = a.compact(root);
        assert_eq!(root, 0);
        assert_eq!(a.capacity_used(), 4);
        assert_eq!(a.free_count(), 0);
        // depth-first: root, b, c (child), d (sibling); items follow suit
        assert_eq!(a.seg(1), &[5, 3]);
        assert_eq!(a.seg(2), &[1]);
        assert_eq!(a.seg(3), &[4]);
        assert_eq!(a.items_slice(), &[5, 3, 1, 4]);
        assert_eq!(a.get(0).children, 1);
        assert_eq!(a.get(1).children, 2);
        assert_eq!(a.get(1).sibling, 3);
    }
}

//! Index-based node arena for the IsTa prefix tree.
//!
//! The paper's C implementation links nodes with raw pointers (Fig. 1);
//! here nodes live in one `Vec` and link through `u32` indices, which keeps
//! the structure compact (20 bytes per node), cache-friendly, and free of
//! `unsafe`. Freed nodes are kept on an intrusive free list threaded through
//! the `sibling` field so pruning can recycle them.

use fim_core::Item;

/// Sentinel index meaning "no node".
pub const NONE: u32 = u32::MAX;

/// One prefix tree node (paper Fig. 1).
#[derive(Clone, Copy, Debug)]
pub struct Node {
    /// The item associated with this node (the largest item of the set it
    /// represents is at the top of its path; this node holds the *last*,
    /// i.e. smallest-so-far item of the represented set).
    pub item: Item,
    /// Support of the represented item set within the processed prefix.
    pub supp: u32,
    /// Most recent update step (index of the transaction whose processing
    /// last touched this node); the incremental-update flag of the paper.
    pub step: u32,
    /// Total weight of raw transactions whose (possibly pruning-reduced)
    /// item set is exactly the set this node represents. Terminal counts
    /// let a tree be replayed into another one with correct additive
    /// support semantics (see [`PrefixTree::merge`]); the sum of `raw`
    /// over all nodes (plus the root's, which absorbs transactions pruned
    /// to the empty set) equals the processed transaction weight.
    ///
    /// [`PrefixTree::merge`]: crate::tree::PrefixTree::merge
    pub raw: u32,
    /// Next node in the sibling list (descending item order), or [`NONE`].
    pub sibling: u32,
    /// Head of the child list (all child items < `item`), or [`NONE`].
    pub children: u32,
}

/// Growable arena of [`Node`]s with index links and a free list.
#[derive(Clone, Debug, Default)]
pub struct NodeArena {
    nodes: Vec<Node>,
    free_head: u32,
    live: usize,
}

impl NodeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        NodeArena {
            nodes: Vec::new(),
            free_head: NONE,
            live: 0,
        }
    }

    /// Creates an arena with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        NodeArena {
            nodes: Vec::with_capacity(cap),
            free_head: NONE,
            live: 0,
        }
    }

    /// Allocates a node, reusing a freed slot when available.
    pub fn alloc(&mut self, node: Node) -> u32 {
        self.live += 1;
        if self.free_head != NONE {
            let idx = self.free_head;
            self.free_head = self.nodes[idx as usize].sibling;
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < NONE, "node arena exhausted");
            self.nodes.push(node);
            idx
        }
    }

    /// Returns a node slot to the free list.
    ///
    /// The caller must ensure no live links point to `idx`.
    pub fn free(&mut self, idx: u32) {
        debug_assert!(self.live > 0);
        self.live -= 1;
        let n = &mut self.nodes[idx as usize];
        n.sibling = self.free_head;
        n.children = NONE;
        self.free_head = idx;
    }

    /// Number of live (allocated, not freed) nodes.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + free-listed).
    pub fn capacity_used(&self) -> usize {
        self.nodes.len()
    }

    /// Number of slots currently parked on the free list.
    pub fn free_count(&self) -> usize {
        self.nodes.len() - self.live
    }

    /// Relocates the live nodes reachable from `root` into depth-first
    /// order — each node directly followed by its subtree, then by its next
    /// sibling — truncating freed slots and emptying the free list. Returns
    /// the new index of `root` (always `0`).
    ///
    /// After heavy pruning churn the free list scatters live nodes across
    /// the slot vector, so the `isect`/`report` traversals (which walk
    /// exactly this depth-first order) stride unpredictably through memory;
    /// compaction restores a nearly-sequential walk and returns the freed
    /// tail to the allocator. All `sibling`/`children` links are remapped;
    /// every other field is preserved bit-for-bit.
    ///
    /// The caller must ensure every live node is reachable from `root`
    /// (checked in debug builds).
    pub fn compact(&mut self, root: u32) -> u32 {
        debug_assert!(root != NONE);
        // Pass 1: assign new indices in depth-first visitation order. The
        // explicit stack mirrors the recursion of `isect`: a frame is a
        // node whose subtree-then-right-siblings remain to be numbered.
        let mut order: Vec<u32> = Vec::with_capacity(self.live);
        let mut remap: Vec<u32> = vec![NONE; self.nodes.len()];
        let mut stack: Vec<u32> = vec![root];
        while let Some(mut node) = stack.pop() {
            while node != NONE {
                remap[node as usize] = order.len() as u32;
                order.push(node);
                let n = &self.nodes[node as usize];
                if n.sibling != NONE {
                    stack.push(n.sibling);
                }
                node = n.children;
            }
        }
        debug_assert_eq!(order.len(), self.live, "unreachable live nodes");
        // Pass 2: emit the nodes in their new order with remapped links.
        let mut nodes: Vec<Node> = Vec::with_capacity(order.len());
        for &old in &order {
            let mut n = self.nodes[old as usize];
            if n.sibling != NONE {
                n.sibling = remap[n.sibling as usize];
            }
            if n.children != NONE {
                n.children = remap[n.children as usize];
            }
            nodes.push(n);
        }
        self.nodes = nodes;
        self.free_head = NONE;
        remap[root as usize]
    }

    /// All slots in index order, live and free-listed alike (free slots are
    /// distinguishable only through the free list, so callers should
    /// [`compact`](Self::compact) first when they need live nodes only —
    /// the snapshot writer does).
    pub fn slots(&self) -> &[Node] {
        &self.nodes
    }

    /// Immutable node access.
    #[inline]
    pub fn get(&self, idx: u32) -> &Node {
        &self.nodes[idx as usize]
    }

    /// Mutable node access.
    #[inline]
    pub fn get_mut(&mut self, idx: u32) -> &mut Node {
        &mut self.nodes[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(item: Item) -> Node {
        Node {
            item,
            supp: 0,
            step: 0,
            raw: 0,
            sibling: NONE,
            children: NONE,
        }
    }

    #[test]
    fn alloc_returns_sequential_indices() {
        let mut a = NodeArena::new();
        assert_eq!(a.alloc(leaf(1)), 0);
        assert_eq!(a.alloc(leaf(2)), 1);
        assert_eq!(a.live_count(), 2);
        assert_eq!(a.capacity_used(), 2);
        assert_eq!(a.get(1).item, 2);
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut a = NodeArena::new();
        let x = a.alloc(leaf(1));
        let y = a.alloc(leaf(2));
        a.free(x);
        assert_eq!(a.live_count(), 1);
        let z = a.alloc(leaf(3));
        assert_eq!(z, x, "freed slot should be reused");
        assert_eq!(a.capacity_used(), 2);
        assert_eq!(a.get(z).item, 3);
        assert_eq!(a.get(y).item, 2);
    }

    #[test]
    fn free_order_is_lifo() {
        let mut a = NodeArena::new();
        let x = a.alloc(leaf(1));
        let y = a.alloc(leaf(2));
        a.free(x);
        a.free(y);
        assert_eq!(a.alloc(leaf(9)), y);
        assert_eq!(a.alloc(leaf(9)), x);
    }

    #[test]
    fn mutation_through_get_mut() {
        let mut a = NodeArena::new();
        let x = a.alloc(leaf(7));
        a.get_mut(x).supp = 42;
        assert_eq!(a.get(x).supp, 42);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let a = NodeArena::with_capacity(64);
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.capacity_used(), 0);
    }

    #[test]
    fn compact_reorders_depth_first_and_truncates() {
        // build root → (b → (c), a) with scattered slots: alloc extra nodes
        // and free them so live nodes land on non-contiguous indices
        let mut a = NodeArena::new();
        let junk1 = a.alloc(leaf(90));
        let root = a.alloc(leaf(99));
        let junk2 = a.alloc(leaf(91));
        let nb = a.alloc(leaf(2));
        let junk3 = a.alloc(leaf(92));
        let na = a.alloc(leaf(1));
        let nc = a.alloc(leaf(0));
        a.get_mut(root).children = nb;
        a.get_mut(nb).sibling = na;
        a.get_mut(nb).children = nc;
        a.free(junk1);
        a.free(junk2);
        a.free(junk3);
        assert_eq!(a.live_count(), 4);
        assert_eq!(a.capacity_used(), 7);
        assert_eq!(a.free_count(), 3);

        let new_root = a.compact(root);
        assert_eq!(new_root, 0);
        assert_eq!(a.live_count(), 4);
        assert_eq!(a.capacity_used(), 4, "freed slots truncated");
        assert_eq!(a.free_count(), 0);
        // depth-first order: root, b, c (b's child), a (b's sibling)
        assert_eq!(a.get(0).item, 99);
        assert_eq!(a.get(1).item, 2);
        assert_eq!(a.get(2).item, 0);
        assert_eq!(a.get(3).item, 1);
        // links remapped consistently
        assert_eq!(a.get(0).children, 1);
        assert_eq!(a.get(1).children, 2);
        assert_eq!(a.get(1).sibling, 3);
        assert_eq!(a.get(3).sibling, NONE);
    }

    #[test]
    fn compact_allocates_fresh_slots_afterwards() {
        let mut a = NodeArena::new();
        let root = a.alloc(leaf(9));
        let x = a.alloc(leaf(5));
        a.get_mut(root).children = x;
        let y = a.alloc(leaf(3));
        a.free(y);
        let root = a.compact(root);
        // the free list is gone: the next alloc extends the vector
        let z = a.alloc(leaf(7));
        assert_eq!(z, 2);
        assert_eq!(a.get(z).item, 7);
        assert_eq!(a.get(root).item, 9);
    }

    #[test]
    fn compact_single_node() {
        let mut a = NodeArena::new();
        let root = a.alloc(leaf(42));
        assert_eq!(a.compact(root), 0);
        assert_eq!(a.capacity_used(), 1);
        assert_eq!(a.get(0).item, 42);
    }
}

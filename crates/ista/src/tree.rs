//! The IsTa prefix tree: insertion, the `isect` traversal (paper Fig. 2),
//! reporting (paper Fig. 4), and item-elimination pruning (paper §3.2).

use crate::arena::{Node, NodeArena, NONE};
use fim_core::{FoundSet, Item, ItemSet};

/// A position in the tree where a sibling list can be read or spliced:
/// either the `children` field of a node or the `sibling` field of a node.
/// This is the arena equivalent of the C implementation's `NODE **ins`.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// The `children` field of the given node.
    Child(u32),
    /// The `sibling` field of the given node.
    Sib(u32),
}

#[inline]
fn slot_get(a: &NodeArena, s: Slot) -> u32 {
    match s {
        Slot::Child(n) => a.get(n).children,
        Slot::Sib(n) => a.get(n).sibling,
    }
}

#[inline]
fn slot_set(a: &mut NodeArena, s: Slot, v: u32) {
    match s {
        Slot::Child(n) => a.get_mut(n).children = v,
        Slot::Sib(n) => a.get_mut(n).sibling = v,
    }
}

/// The cumulative-intersection prefix tree (paper §3.3).
///
/// Invariants (checked by [`PrefixTree::validate_invariants`]):
///
/// * every sibling list is strictly descending in item code,
/// * every child's item code is strictly smaller than its parent's,
/// * after processing `k` transactions, each node's `supp` equals the exact
///   support of the item set it represents within those `k` transactions
///   (as long as pruning has not removed evidence for globally infrequent
///   sets — pruned-tree supports are only exact for sets that can still
///   reach the minimum support; see §3.2 of the paper).
#[derive(Clone, Debug)]
pub struct PrefixTree {
    arena: NodeArena,
    root: u32,
    step: u32,
    trans: Vec<bool>,
}

impl PrefixTree {
    /// Creates an empty tree over an item universe of `num_items` codes.
    pub fn new(num_items: u32) -> Self {
        let mut arena = NodeArena::new();
        let root = arena.alloc(Node {
            item: Item::MAX, // pseudo-item above every real item
            supp: 0,
            step: 0,
            sibling: NONE,
            children: NONE,
        });
        PrefixTree {
            arena,
            root,
            step: 0,
            trans: vec![false; num_items as usize],
        }
    }

    /// Number of transactions processed so far.
    pub fn transactions_processed(&self) -> u32 {
        self.step
    }

    /// Number of live tree nodes (excluding the root).
    pub fn node_count(&self) -> usize {
        self.arena.live_count() - 1
    }

    /// Processes one transaction: inserts it as a path, then intersects it
    /// with every stored set in a single `isect` traversal.
    ///
    /// `t` must be strictly ascending and non-empty; item codes must be
    /// below the `num_items` the tree was created with.
    pub fn add_transaction(&mut self, t: &[Item]) {
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]));
        if t.is_empty() {
            return;
        }
        self.step += 1;
        self.insert_path(t);
        for &i in t {
            self.trans[i as usize] = true;
        }
        let imin = t[0];
        let head = self.arena.get(self.root).children;
        let ins = Slot::Child(self.root);
        let PrefixTree {
            arena, trans, step, ..
        } = self;
        isect(arena, head, ins, trans, imin, *step);
        for &i in t {
            self.trans[i as usize] = false;
        }
        self.arena.get_mut(self.root).supp = self.step;
    }

    /// Inserts the path for transaction `t` (items consumed in descending
    /// order); nodes created on the way start with support 0 and are
    /// counted by the subsequent `isect` self-intersection.
    fn insert_path(&mut self, t: &[Item]) {
        let mut parent = self.root;
        for &item in t.iter().rev() {
            let mut ins = Slot::Child(parent);
            loop {
                let d = slot_get(&self.arena, ins);
                if d != NONE && self.arena.get(d).item > item {
                    ins = Slot::Sib(d);
                } else {
                    break;
                }
            }
            let d = slot_get(&self.arena, ins);
            if d != NONE && self.arena.get(d).item == item {
                parent = d;
            } else {
                let new = self.arena.alloc(Node {
                    item,
                    supp: 0,
                    step: 0,
                    sibling: d,
                    children: NONE,
                });
                slot_set(&mut self.arena, ins, new);
                parent = new;
            }
        }
    }

    /// Item-elimination pruning (paper §3.2): removes every item `i` from
    /// every stored set whose node support plus `remaining[i]` (occurrences
    /// of `i` in the yet-unprocessed transactions) cannot reach `minsupp`.
    /// Subtrees of removed nodes are merged into their parent's child list
    /// (max-merging supports on collisions), so reduced sets stay available
    /// as intersection sources.
    pub fn prune(&mut self, remaining: &[u32], minsupp: u32) {
        let head = self.arena.get(self.root).children;
        let new_head = prune_list(&mut self.arena, head, remaining, minsupp);
        self.arena.get_mut(self.root).children = new_head;
    }

    /// Reports all closed item sets with support ≥ `minsupp` (paper Fig. 4):
    /// a node is emitted iff its support reaches `minsupp` and strictly
    /// exceeds the support of every child.
    pub fn report(&self, minsupp: u32) -> Vec<FoundSet> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        let mut c = self.arena.get(self.root).children;
        while c != NONE {
            report_rec(&self.arena, c, minsupp, &mut path, &mut out);
            c = self.arena.get(c).sibling;
        }
        out
    }

    /// Checks the structural invariants; panics with a description on
    /// violation. Used by tests and debug assertions.
    pub fn validate_invariants(&self) {
        let mut visited = 0usize;
        validate_rec(
            &self.arena,
            self.arena.get(self.root).children,
            Item::MAX,
            self.step,
            &mut visited,
        );
        assert_eq!(
            visited + 1,
            self.arena.live_count(),
            "node count mismatch (cycle or leak)"
        );
    }

    /// The maximum support over all stored sets that contain `items` —
    /// which equals the exact support of `items` in the processed prefix
    /// whenever `items` occurs at all, because the closure of `items` is
    /// stored with that support (paper §2.3). Returns `None` when no
    /// stored set contains `items`.
    pub fn max_support_of_superset(&self, items: &ItemSet) -> Option<u32> {
        if items.is_empty() {
            return (self.step > 0).then_some(self.step);
        }
        let desc: Vec<Item> = items.iter().rev().collect();
        superset_rec(&self.arena, self.arena.get(self.root).children, &desc)
    }

    /// Lists every stored node as `(item set, support)` in depth-first
    /// order — the tree contents, used by the Fig. 3 experiment runner and
    /// by tests that inspect interior (non-closed) nodes.
    pub fn dump(&self) -> Vec<(ItemSet, u32)> {
        fn rec(a: &NodeArena, mut node: u32, path: &mut Vec<Item>, out: &mut Vec<(ItemSet, u32)>) {
            while node != NONE {
                let n = a.get(node);
                path.push(n.item);
                let mut items = path.clone();
                items.reverse();
                out.push((ItemSet::from_sorted(items), n.supp));
                rec(a, n.children, path, out);
                path.pop();
                node = n.sibling;
            }
        }
        let mut out = Vec::new();
        rec(
            &self.arena,
            self.arena.get(self.root).children,
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// Exact support lookup for an item set, by walking its descending path.
    /// Returns `None` if the set is not (or no longer) stored.
    pub fn lookup(&self, items: &ItemSet) -> Option<u32> {
        let mut node = self.root;
        for item in items.iter().rev() {
            let mut c = self.arena.get(node).children;
            loop {
                if c == NONE {
                    return None;
                }
                let n = self.arena.get(c);
                match n.item.cmp(&item) {
                    std::cmp::Ordering::Greater => c = n.sibling,
                    std::cmp::Ordering::Equal => break,
                    std::cmp::Ordering::Less => return None,
                }
            }
            node = c;
        }
        Some(self.arena.get(node).supp)
    }
}

/// The intersection traversal (paper Fig. 2).
///
/// Walks the sibling list starting at `node`; `ins` tracks the position in
/// the tree representing the intersection of the processed path prefix with
/// the current transaction (`trans` flag array, minimum item `imin`).
fn isect(a: &mut NodeArena, mut node: u32, mut ins: Slot, trans: &[bool], imin: Item, step: u32) {
    while node != NONE {
        let i = a.get(node).item;
        if trans[i as usize] {
            // the item is in the intersection: find/create the node for it
            loop {
                let d = slot_get(a, ins);
                if d != NONE && a.get(d).item > i {
                    ins = Slot::Sib(d);
                } else {
                    break;
                }
            }
            let d = slot_get(a, ins);
            let target;
            if d != NONE && a.get(d).item == i {
                // discount first so that the aliased case (d == node, i.e.
                // a revisit of an already-updated intersection node) is a
                // no-op, exactly as in the C original where d and node may
                // be the same object
                if a.get(d).step >= step {
                    a.get_mut(d).supp -= 1;
                }
                let node_supp = a.get(node).supp;
                let dn = a.get_mut(d);
                if dn.supp < node_supp {
                    dn.supp = node_supp;
                }
                dn.supp += 1;
                dn.step = step;
                target = d;
            } else {
                let node_supp = a.get(node).supp;
                let new = a.alloc(Node {
                    item: i,
                    supp: node_supp + 1,
                    step,
                    sibling: d,
                    children: NONE,
                });
                slot_set(a, ins, new);
                target = new;
            }
            if i <= imin {
                return; // no smaller item can be in the transaction
            }
            let child = a.get(node).children;
            isect(a, child, Slot::Child(target), trans, imin, step);
        } else {
            if i <= imin {
                return; // later siblings only carry smaller items
            }
            let child = a.get(node).children;
            isect(a, child, ins, trans, imin, step);
        }
        node = a.get(node).sibling;
    }
}

/// Finds the maximum support of any path extending through `needed`
/// (descending item codes) within the sibling list at `node`.
fn superset_rec(a: &NodeArena, mut node: u32, needed: &[Item]) -> Option<u32> {
    debug_assert!(!needed.is_empty());
    let target = needed[0];
    let mut best: Option<u32> = None;
    while node != NONE {
        let n = a.get(node);
        if n.item < target {
            // sibling lists are descending: nothing further can contain it
            break;
        }
        let candidate = if n.item == target {
            if needed.len() == 1 {
                // the node's path contains every needed item; descendants
                // only extend the set and cannot have larger support
                Some(n.supp)
            } else {
                superset_rec(a, n.children, &needed[1..])
            }
        } else {
            // n.item > target: the target may sit deeper in this subtree
            superset_rec(a, n.children, needed)
        };
        if let Some(c) = candidate {
            best = Some(best.map_or(c, |b: u32| b.max(c)));
        }
        node = n.sibling;
    }
    best
}

fn report_rec(
    a: &NodeArena,
    node: u32,
    minsupp: u32,
    path: &mut Vec<Item>,
    out: &mut Vec<FoundSet>,
) {
    path.push(a.get(node).item);
    let mut max_child = 0u32;
    let mut c = a.get(node).children;
    while c != NONE {
        let cs = a.get(c).supp;
        if cs > max_child {
            max_child = cs;
        }
        report_rec(a, c, minsupp, path, out);
        c = a.get(c).sibling;
    }
    let supp = a.get(node).supp;
    if supp >= minsupp && supp > max_child {
        let mut items = path.clone();
        items.reverse(); // path is descending; ItemSet wants ascending
        out.push(FoundSet::new(ItemSet::from_sorted(items), supp));
    }
    path.pop();
}

fn validate_rec(a: &NodeArena, mut node: u32, parent_item: Item, step: u32, visited: &mut usize) {
    let mut prev_item = Item::MAX;
    while node != NONE {
        *visited += 1;
        assert!(*visited < a.capacity_used() + 1, "cycle detected");
        let n = a.get(node);
        assert!(n.item < parent_item, "child item must be below parent item");
        assert!(
            prev_item == Item::MAX || n.item < prev_item,
            "sibling list must be strictly descending"
        );
        assert!(n.supp <= step, "support cannot exceed processed prefix");
        prev_item = n.item;
        validate_rec(a, n.children, n.item, step, visited);
        node = n.sibling;
    }
}

/// Rebuilds a sibling list, dropping items that cannot reach `minsupp` and
/// splicing their (already pruned) children into the list.
fn prune_list(a: &mut NodeArena, head: u32, remaining: &[u32], minsupp: u32) -> u32 {
    let mut new_head = NONE;
    let mut cur = head;
    while cur != NONE {
        let next = a.get(cur).sibling;
        a.get_mut(cur).sibling = NONE;
        let ch = a.get(cur).children;
        let pruned_ch = prune_list(a, ch, remaining, minsupp);
        a.get_mut(cur).children = pruned_ch;
        let n = a.get(cur);
        let keep = n.supp + remaining[n.item as usize] >= minsupp;
        if keep {
            new_head = merge_node(a, new_head, cur);
        } else {
            let mut c = pruned_ch;
            a.get_mut(cur).children = NONE;
            while c != NONE {
                let cnext = a.get(c).sibling;
                a.get_mut(c).sibling = NONE;
                new_head = merge_node(a, new_head, c);
                c = cnext;
            }
            a.free(cur);
        }
        cur = next;
    }
    new_head
}

/// Inserts node `x` (with its subtree) into the descending sibling list
/// `head`; on an item collision the supports are max-merged and the
/// children lists merged recursively. Returns the new head.
fn merge_node(a: &mut NodeArena, head: u32, x: u32) -> u32 {
    let xi = a.get(x).item;
    if head == NONE || a.get(head).item < xi {
        a.get_mut(x).sibling = head;
        return x;
    }
    if a.get(head).item == xi {
        merge_into(a, head, x);
        return head;
    }
    let mut prev = head;
    loop {
        let nxt = a.get(prev).sibling;
        if nxt == NONE || a.get(nxt).item < xi {
            a.get_mut(x).sibling = nxt;
            a.get_mut(prev).sibling = x;
            return head;
        }
        if a.get(nxt).item == xi {
            merge_into(a, nxt, x);
            return head;
        }
        prev = nxt;
    }
}

/// Merges node `x` into `dst` (same item): max support, merged children.
fn merge_into(a: &mut NodeArena, dst: u32, x: u32) {
    debug_assert_eq!(a.get(dst).item, a.get(x).item);
    let xs = a.get(x).supp;
    if a.get(dst).supp < xs {
        a.get_mut(dst).supp = xs;
    }
    let mut c = a.get(x).children;
    a.get_mut(x).children = NONE;
    while c != NONE {
        let cnext = a.get(c).sibling;
        a.get_mut(c).sibling = NONE;
        let merged = merge_node(a, a.get(dst).children, c);
        a.get_mut(dst).children = merged;
        c = cnext;
    }
    a.free(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a tree from ascending-sorted transactions.
    fn build(num_items: u32, txs: &[&[Item]]) -> PrefixTree {
        let mut t = PrefixTree::new(num_items);
        for tx in txs {
            t.add_transaction(tx);
        }
        t.validate_invariants();
        t
    }

    #[test]
    fn figure3_trace() {
        // Paper Fig. 3: transactions {e,c,a}, {e,d,b}, {d,c,b,a}
        // with item codes a=0 b=1 c=2 d=3 e=4.
        let mut t = PrefixTree::new(5);

        t.add_transaction(&[0, 2, 4]); // {e,c,a}
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([0, 2, 4])), Some(1));
        assert_eq!(t.node_count(), 3);

        t.add_transaction(&[1, 3, 4]); // {e,d,b}
        t.validate_invariants();
        // Fig. 3 step 2: e:2, d:1, b:1 (new path), c:1, a:1 untouched
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([3, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([1, 3, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1));
        assert_eq!(t.node_count(), 5);

        t.add_transaction(&[0, 1, 2, 3]); // {d,c,b,a}
        t.validate_invariants();
        // Fig. 3 step 3.3 final supports:
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(2)); // {e}
        assert_eq!(t.lookup(&ItemSet::from([3, 4])), Some(1)); // {e,d}
        assert_eq!(t.lookup(&ItemSet::from([1, 3, 4])), Some(1)); // {e,d,b}
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1)); // {e,c}
        assert_eq!(t.lookup(&ItemSet::from([0, 2, 4])), Some(1)); // {e,c,a}
        assert_eq!(t.lookup(&ItemSet::from([3])), Some(2)); // {d}
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2)); // {d,b}
        assert_eq!(t.lookup(&ItemSet::from([2, 3])), Some(1)); // {d,c}
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), Some(1)); // {d,c,b}
        assert_eq!(t.lookup(&ItemSet::from([0, 1, 2, 3])), Some(1)); // full
        assert_eq!(t.lookup(&ItemSet::from([2])), Some(2)); // {c}
        assert_eq!(t.lookup(&ItemSet::from([0, 2])), Some(2)); // {c,a}
        // exactly the 12 nodes of Fig. 3.3
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.transactions_processed(), 3);
    }

    #[test]
    fn repeated_transactions_accumulate() {
        let t = build(3, &[&[0, 1], &[0, 1], &[0, 1]]);
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), Some(3));
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn every_node_support_is_exact() {
        // random-ish fixed database; verify every stored set's support by
        // rescanning the transactions
        let txs: Vec<Vec<Item>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 2, 3],
            vec![0, 2, 3, 5],
            vec![1, 5],
            vec![0, 1, 2, 3, 5],
            vec![2, 4],
            vec![0, 4, 5],
        ];
        let mut t = PrefixTree::new(6);
        for tx in &txs {
            t.add_transaction(tx);
        }
        t.validate_invariants();
        // enumerate all stored sets via report at minsupp 1 — every reported
        // support must equal the scan support
        for fs in t.report(1) {
            let scan = txs
                .iter()
                .filter(|tx| fim_core::itemset::is_subset(fs.items.as_slice(), tx))
                .count() as u32;
            assert_eq!(fs.support, scan, "support of {:?}", fs.items);
        }
    }

    #[test]
    fn report_filters_non_closed_prefix_nodes() {
        // {e,d} is an interior path node of {e,d,b} with equal support and
        // must not be reported
        let t = build(5, &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3]]);
        let r = t.report(1);
        let sets: Vec<&ItemSet> = r.iter().map(|f| &f.items).collect();
        assert!(!sets.contains(&&ItemSet::from([3, 4])), "{{e,d}} not closed");
        assert!(sets.contains(&&ItemSet::from([1, 3, 4])), "{{e,d,b}} closed");
        assert!(sets.contains(&&ItemSet::from([4])), "{{e}} closed supp 2");
    }

    #[test]
    fn report_respects_minsupp() {
        let t = build(5, &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3]]);
        let r = t.report(2);
        assert!(r.iter().all(|f| f.support >= 2));
        let sets: Vec<&ItemSet> = r.iter().map(|f| &f.items).collect();
        // the only closed sets with support >= 2: {e}, {d,b}, {c,a}
        // ({d} and {c} are not closed: their closures are {d,b} and {c,a})
        assert!(sets.contains(&&ItemSet::from([4])));
        assert!(sets.contains(&&ItemSet::from([1, 3])));
        assert!(sets.contains(&&ItemSet::from([0, 2])));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn lookup_missing_set() {
        let t = build(5, &[&[0, 2, 4]]);
        assert_eq!(t.lookup(&ItemSet::from([1])), None);
        assert_eq!(t.lookup(&ItemSet::from([0, 4])), None); // not a path
        assert_eq!(t.lookup(&ItemSet::empty()), Some(1)); // root = prefix len
    }

    #[test]
    fn prune_removes_hopeless_items() {
        // items: 0 appears twice overall, 1 four times; minsupp 4
        let mut t = PrefixTree::new(2);
        t.add_transaction(&[0, 1]);
        t.add_transaction(&[0, 1]);
        // remaining transactions: {1}, {1} → remaining[0]=0, remaining[1]=2
        t.prune(&[0, 2], 4);
        t.validate_invariants();
        // item 0 cannot reach support 4 → node(s) containing 0 dropped
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), None);
        assert_eq!(t.lookup(&ItemSet::from([1])), Some(2));
        t.add_transaction(&[1]);
        t.add_transaction(&[1]);
        let r = t.report(4);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].items, ItemSet::from([1]));
        assert_eq!(r[0].support, 4);
    }

    #[test]
    fn prune_merges_subtrees() {
        // build paths 3→1 and 3→2→1, then eliminate item 2:
        // node {3,2} (child 2 under 3) must merge its child 1 with the
        // existing child 1 under 3
        let mut t = PrefixTree::new(4);
        t.add_transaction(&[1, 3]);
        t.add_transaction(&[1, 2, 3]);
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), Some(1));
        // pretend item 2 never occurs again and minsupp is 2
        t.prune(&[10, 10, 0, 10], 2);
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), None);
        // the reduced set {3,1} keeps max supp 2
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2));
    }

    #[test]
    fn empty_transaction_is_ignored() {
        let mut t = PrefixTree::new(3);
        t.add_transaction(&[]);
        assert_eq!(t.transactions_processed(), 0);
        assert_eq!(t.node_count(), 0);
        assert!(t.report(1).is_empty());
    }

    #[test]
    fn single_item_universe() {
        let t = build(1, &[&[0], &[0]]);
        let r = t.report(1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].support, 2);
    }

    #[test]
    fn interleaved_disjoint_transactions() {
        let t = build(4, &[&[0, 1], &[2, 3], &[0, 1], &[2, 3]]);
        let r = t.report(2);
        assert_eq!(r.len(), 2);
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([2, 3])), Some(2));
    }
}

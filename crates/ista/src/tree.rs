//! The path-compressed (Patricia) IsTa prefix tree: insertion, the
//! segment-aware `isect` traversal (paper Fig. 2 over whole segments),
//! reporting (paper Fig. 4), and item-elimination pruning (paper §3.2).
//!
//! This is the paper's §3.3 Patricia variant — the implementation the
//! authors report as the most memory- and time-efficient on sparse data.
//! Each node holds a strictly descending item *segment* (a slice into the
//! [`SegArena`]'s shared item store) instead of a single item, so unary
//! chains collapse into one node. The uncompressed reference layout lives
//! in [`crate::plain`] (`ista-plain`, CLI `--no-patricia`) and the two are
//! proptested to report identical closed sets.
//!
//! The core invariant that makes segment-at-a-time updates sound: all
//! conceptual (per-item) nodes within one segment share the same `supp`
//! and the same `step`, and the terminal count `raw` belongs to the
//! deepest conceptual node. Any update that would touch only a proper
//! prefix of a segment *splits* the node first (both halves keep `supp`
//! and `step`), so the invariant is maintained eagerly.

use crate::arena::{PatNode, SegArena, NONE};
use fim_core::{FoundSet, Item, ItemSet};
use fim_obs::{Counter, Counters};

/// Snapshot of a [`PrefixTree`]'s arena occupancy, for memory accounting
/// in benchmarks and the CLI `--stats` report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TreeMemoryStats {
    /// Live nodes, including the pseudo-root.
    pub live_nodes: usize,
    /// Total arena slots (live + free-listed).
    pub total_slots: usize,
    /// Slots parked on the free list (reclaimable by [`PrefixTree::compact`]).
    pub free_slots: usize,
    /// Items referenced by live segments — the *conceptual* node count
    /// (excluding the pseudo-root); `seg_items / (live_nodes - 1)` is the
    /// average segment length, the path-compression ratio.
    pub seg_items: usize,
    /// Bytes held by the segment item store, live and garbage alike
    /// (0 for the uncompressed plain tree).
    pub seg_bytes: usize,
    /// Approximate resident bytes: slot storage plus segment storage plus
    /// the per-item membership-stamp array.
    pub approx_bytes: usize,
}

impl TreeMemoryStats {
    /// This snapshot as the fim-metrics/1 `tree` section, with the given
    /// peak node count (pass the arena high-water when no peak was
    /// tracked). One conversion point keeps the CLI metrics documents and
    /// the BENCH_* files rendering identical field sets.
    pub fn to_metrics(self, peak_nodes: usize) -> fim_obs::TreeMetrics {
        fim_obs::TreeMetrics {
            peak_nodes: peak_nodes as u64,
            live_nodes: self.live_nodes as u64,
            total_slots: self.total_slots as u64,
            free_slots: self.free_slots as u64,
            seg_items: self.seg_items as u64,
            seg_bytes: self.seg_bytes as u64,
            approx_bytes: self.approx_bytes as u64,
        }
    }
}

/// A position in the tree where a sibling list can be read or spliced:
/// either the `children` field of a node or the `sibling` field of a node.
/// This is the arena equivalent of the C implementation's `NODE **ins`.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// The `children` field of the given node.
    Child(u32),
    /// The `sibling` field of the given node.
    Sib(u32),
}

#[inline]
fn slot_get(a: &SegArena, s: Slot) -> u32 {
    match s {
        Slot::Child(n) => a.get(n).children,
        Slot::Sib(n) => a.get(n).sibling,
    }
}

#[inline]
fn slot_set(a: &mut SegArena, s: Slot, v: u32) {
    match s {
        Slot::Child(n) => a.get_mut(n).children = v,
        Slot::Sib(n) => a.get_mut(n).sibling = v,
    }
}

/// The descending-merge segment intersection kernel: appends to `out` the
/// items of the strictly descending segment `seg` that are members of the
/// current transaction (epoch-stamped: item `i` is in the transaction iff
/// `trans[i] == step`). The scan stops at the first item `<= imin` — the
/// transaction's minimum item; nothing below it can be a member, and
/// nothing below it in the tree needs visiting (PR 2's early-stop idea
/// applied per segment). Returns whether the scan stopped early, i.e. the
/// traversal must not descend below this segment.
#[inline]
pub fn intersect_segment(
    seg: &[Item],
    trans: &[u32],
    step: u32,
    imin: Item,
    out: &mut Vec<Item>,
) -> bool {
    for &i in seg {
        if trans[i as usize] == step {
            out.push(i);
            if i <= imin {
                return true;
            }
        } else if i <= imin {
            return true;
        }
    }
    false
}

/// Word-probe variant of [`intersect_segment`]: the transaction is a packed
/// bitset (`words[i/64]` bit `i%64`), so membership is one shift-and-mask,
/// and a segment that is a *contiguous* descending run is intersected whole
/// — the transaction words covering the run's range are masked (word-AND
/// against the range mask) and their surviving bits iterated from the top
/// via `leading_zeros` — instead of one probe per item. Output and
/// early-stop behaviour are bit-for-bit identical to [`intersect_segment`].
///
/// Returns `(stopped, words_anded)` where `words_anded` counts the words
/// the contiguous fast path masked (the per-item probes touch one word each
/// but perform no AND).
#[inline]
pub fn intersect_segment_words(
    seg: &[Item],
    words: &[u64],
    imin: Item,
    out: &mut Vec<Item>,
) -> (bool, u64) {
    let len = seg.len();
    if len == 0 {
        return (false, 0);
    }
    let (hi, lo) = (seg[0], seg[len - 1]);
    if (hi - lo) as usize + 1 == len {
        // Contiguous descending run [lo..=hi]. The scalar walk processes
        // items from `hi` down to the first item `<= imin` inclusive (every
        // integer in the range is present, so that boundary is
        // `min(hi, imin)`), or the whole run when `lo > imin`.
        let stopped = lo <= imin;
        let bound = if stopped { imin.min(hi) } else { lo };
        let wh = (hi / 64) as usize;
        let wl = (bound / 64) as usize;
        let mut words_anded = 0u64;
        for wi in (wl..=wh).rev() {
            let mut word = words.get(wi).copied().unwrap_or(0);
            if wi == wh && hi % 64 < 63 {
                word &= (1u64 << (hi % 64 + 1)) - 1;
            }
            if wi == wl {
                word &= !0u64 << (bound % 64);
            }
            words_anded += 1;
            while word != 0 {
                let b = 63 - word.leading_zeros();
                out.push(wi as u32 * 64 + b);
                word &= !(1u64 << b);
            }
        }
        return (stopped, words_anded);
    }
    for &i in seg {
        if words[i as usize / 64] >> (i % 64) & 1 != 0 {
            out.push(i);
            if i <= imin {
                return (true, 0);
            }
        } else if i <= imin {
            return (true, 0);
        }
    }
    (false, 0)
}

/// The segment-scan kernel `isect` is monomorphized over: scalar epoch
/// probes ([`EpochKernel`]) or packed-word probes ([`WordKernel`]). Both
/// must produce bit-for-bit identical runs and early stops — the traversal
/// and `merge_run` are representation-blind.
trait SegKernel {
    /// Appends the segment items present in the current transaction to
    /// `out`; returns whether the scan stopped at the `imin` bound.
    fn scan(&mut self, seg: &[Item], imin: Item, out: &mut Vec<Item>) -> bool;
}

/// The scalar kernel: epoch-stamped membership array (the reference path).
struct EpochKernel<'a> {
    trans: &'a [u32],
    step: u32,
}

impl SegKernel for EpochKernel<'_> {
    #[inline]
    fn scan(&mut self, seg: &[Item], imin: Item, out: &mut Vec<Item>) -> bool {
        intersect_segment(seg, self.trans, self.step, imin, out)
    }
}

/// The bitset kernel: packed transaction words, accumulating word-kernel
/// counters locally (folded into the arena counters once per transaction,
/// keeping the hot loop free of a second mutable borrow).
struct WordKernel<'a> {
    words: &'a [u64],
    words_anded: u64,
}

impl SegKernel for WordKernel<'_> {
    #[inline]
    fn scan(&mut self, seg: &[Item], imin: Item, out: &mut Vec<Item>) -> bool {
        let (stopped, anded) = intersect_segment_words(seg, self.words, imin, out);
        self.words_anded += anded;
        stopped
    }
}

/// The cumulative-intersection prefix tree (paper §3.3, Patricia layout).
///
/// Invariants (checked by [`PrefixTree::validate_invariants`]):
///
/// * every segment is strictly descending in item code, non-empty except
///   at the pseudo-root, with uniform `supp` and `step` per segment,
/// * every sibling list is strictly descending in first item,
/// * every child's first item is strictly smaller than its parent's
///   *last* item,
/// * after processing `k` transactions, each node's `supp` equals the
///   exact support of every item set its segment prefixes represent
///   within those `k` transactions (modulo the §3.2 pruning caveat).
#[derive(Clone, Debug)]
pub struct PrefixTree {
    arena: SegArena,
    root: u32,
    /// Monotone per-call stamp used by `isect` to detect nodes already
    /// updated while processing the current transaction, and as the epoch
    /// of the `trans` membership array.
    step: u32,
    /// Total weight of transactions processed (= transaction count when
    /// every call uses weight 1).
    weight: u32,
    /// Epoch-stamped membership flags of the transaction currently being
    /// processed: item `i` is in the transaction iff `trans[i] == step`.
    trans: Vec<u32>,
    /// Reusable run buffer for the segment scans of `isect` (stack
    /// discipline: each recursion level truncates back to its base).
    scratch: Vec<Item>,
    /// Packed-word transaction buffer: `Some` switches `isect` to the
    /// bitset segment kernel ([`intersect_segment_words`]); `None` (the
    /// default) runs the scalar epoch kernel. Output-invariant.
    twords: Option<Vec<u64>>,
}

impl PrefixTree {
    /// Creates an empty tree over an item universe of `num_items` codes.
    pub fn new(num_items: u32) -> Self {
        let mut arena = SegArena::new();
        let root = arena.alloc_node(PatNode {
            seg_off: 0,
            seg_len: 0, // the empty segment sits above every real item
            supp: 0,
            step: 0,
            raw: 0,
            sibling: NONE,
            children: NONE,
        });
        PrefixTree {
            arena,
            root,
            step: 0,
            weight: 0,
            trans: vec![0; num_items as usize],
            scratch: Vec::new(),
            twords: None,
        }
    }

    /// Switches the segment-scan kernel: `true` selects the bitset kernel
    /// (packed-word transaction, [`intersect_segment_words`]), `false` the
    /// scalar epoch kernel. Output-invariant (proptested); safe to flip
    /// between transactions.
    pub fn set_bitset(&mut self, on: bool) {
        if on {
            let words = self.trans.len().div_ceil(64);
            match self.twords.as_mut() {
                Some(w) => w.resize(words, 0),
                None => self.twords = Some(vec![0u64; words]),
            }
        } else {
            self.twords = None;
        }
    }

    /// Total weight of transactions processed so far (the plain
    /// transaction count when no weighted insertion was used).
    pub fn transactions_processed(&self) -> u32 {
        self.weight
    }

    /// Number of item codes in the universe this tree was created over.
    pub fn num_items(&self) -> u32 {
        self.trans.len() as u32
    }

    /// Extends the item universe to `num_items` codes (streaming use:
    /// later transactions may introduce items unseen when the tree — or
    /// the snapshot it was reloaded from — was created). Shrinking is not
    /// possible; a smaller value is ignored.
    pub fn grow_universe(&mut self, num_items: u32) {
        if num_items as usize > self.trans.len() {
            self.trans.resize(num_items as usize, 0);
            if let Some(w) = self.twords.as_mut() {
                w.resize(self.trans.len().div_ceil(64), 0);
            }
        }
    }

    /// The arena and the root index, for the snapshot writer.
    pub(crate) fn arena(&self) -> &SegArena {
        &self.arena
    }

    /// Rebuilds a tree from reloaded parts (snapshot reader), running the
    /// full structural validation instead of trusting the input: the arena
    /// must hold no free slots, `root` must be the pseudo-root, every slot
    /// must be reachable exactly once with ordered links, in-bounds
    /// in-universe segments that exactly cover the item store, and the
    /// terminal counts must partition `weight`. Per-node `step` stamps are
    /// reset; the first transaction added afterwards starts a fresh epoch.
    pub(crate) fn from_raw_parts(
        mut arena: SegArena,
        root: u32,
        weight: u32,
        num_items: u32,
    ) -> Result<Self, String> {
        if arena.capacity_used() == 0 || root as usize >= arena.capacity_used() {
            return Err("missing root node".into());
        }
        if arena.free_count() != 0 {
            return Err("arena holds free slots".into());
        }
        if arena.get(root).seg_len != 0 {
            return Err("root slot does not hold the pseudo-root".into());
        }
        if arena.get(root).sibling != NONE {
            return Err("root must not have siblings".into());
        }
        if arena.get(root).supp != weight {
            return Err("root support must equal the processed weight".into());
        }
        check_structure(&arena, root, num_items, weight)?;
        for idx in 0..arena.capacity_used() as u32 {
            arena.get_mut(idx).step = 0;
        }
        Ok(PrefixTree {
            arena,
            root,
            step: 0,
            weight,
            trans: vec![0; num_items as usize],
            scratch: Vec::new(),
            twords: None,
        })
    }

    /// Number of live tree nodes (excluding the root). With path
    /// compression this counts *physical* nodes; the conceptual (per-item)
    /// node count is [`memory_stats`](Self::memory_stats)`.seg_items`.
    pub fn node_count(&self) -> usize {
        self.arena.live_count() - 1
    }

    /// Current arena occupancy (live nodes, slots, free list, segment
    /// storage, approximate bytes). Free slots and garbage segment items
    /// accumulate through pruning churn; [`compact`](Self::compact)
    /// returns both to the allocator.
    ///
    /// [`compact`]: Self::compact
    pub fn memory_stats(&self) -> TreeMemoryStats {
        let total_slots = self.arena.capacity_used();
        let seg_bytes = self.arena.items_len() * std::mem::size_of::<Item>();
        TreeMemoryStats {
            live_nodes: self.arena.live_count(),
            total_slots,
            free_slots: self.arena.free_count(),
            seg_items: self.arena.live_items(),
            seg_bytes,
            approx_bytes: total_slots * std::mem::size_of::<PatNode>()
                + seg_bytes
                + self.trans.len() * std::mem::size_of::<u32>(),
        }
    }

    /// Relocates the live nodes into depth-first order — and their
    /// segments into the same order in a garbage-free item store — and
    /// drops the freed slots (see [`SegArena::compact`]). Reported sets,
    /// supports, and stored transactions are unchanged.
    pub fn compact(&mut self) {
        self.root = self.arena.compact(self.root);
    }

    /// Hot-loop counters accumulated while building this tree: segment
    /// scans and early exits of the `isect` kernel, splits, and node
    /// allocations. Merge replays count in the receiving tree; use
    /// [`absorb_counters`](Self::absorb_counters) to also carry over the
    /// donor's history.
    pub fn counters(&self) -> &Counters {
        self.arena.counters()
    }

    /// Adds another tree's counters into this one (parallel shard
    /// aggregation after a merge).
    pub fn absorb_counters(&mut self, other: &Counters) {
        self.arena.absorb_counters(other);
    }

    /// [`compact`](Self::compact)s only when the free list or the segment
    /// garbage is non-empty (a fresh or already-compact arena is left
    /// untouched). Returns whether a compaction ran.
    pub fn compact_if_fragmented(&mut self) -> bool {
        if self.arena.free_count() > 0 || self.arena.garbage_items() > 0 {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Processes one transaction: inserts it as a path, then intersects it
    /// with every stored set in a single `isect` traversal.
    ///
    /// `t` must be strictly ascending and non-empty; item codes must be
    /// below the `num_items` the tree was created with.
    pub fn add_transaction(&mut self, t: &[Item]) {
        self.add_transaction_weighted(t, 1);
    }

    /// Processes `t` as `weight` identical transactions in one pass.
    ///
    /// Equivalent to calling [`add_transaction`](Self::add_transaction)
    /// `weight` times, but every support update adds `weight` at once —
    /// the workhorse of [`merge`](Self::merge), where the deduplicated
    /// transactions of another tree are replayed with their multiplicity.
    pub fn add_transaction_weighted(&mut self, t: &[Item], weight: u32) {
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]));
        if t.is_empty() || weight == 0 {
            return;
        }
        self.step += 1;
        let terminal = self.insert_path(t);
        self.arena.get_mut(terminal).raw += weight;
        let imin = t[0];
        let head = self.arena.get(self.root).children;
        let ins = Slot::Child(self.root);
        let PrefixTree {
            arena,
            trans,
            step,
            scratch,
            twords,
            ..
        } = self;
        scratch.clear();
        if let Some(words) = twords.as_mut() {
            words.fill(0);
            for &i in t {
                words[i as usize / 64] |= 1u64 << (i % 64);
            }
            let mut kernel = WordKernel {
                words,
                words_anded: 0,
            };
            isect(arena, head, ins, &mut kernel, imin, *step, weight, scratch);
            arena
                .counters_mut()
                .add(Counter::WordsAnded, kernel.words_anded);
        } else {
            for &i in t {
                trans[i as usize] = *step;
            }
            let mut kernel = EpochKernel { trans, step: *step };
            isect(arena, head, ins, &mut kernel, imin, *step, weight, scratch);
        }
        self.weight += weight;
        self.arena.get_mut(self.root).supp = self.weight;
    }

    /// Inserts the path for transaction `t` (items consumed in descending
    /// order), splitting a node when `t` diverges inside its segment and
    /// creating at most one new node — the whole unmatched suffix becomes
    /// a single segment. Created nodes start with support 0 and are
    /// counted by the subsequent `isect` self-intersection. Returns the
    /// terminal node (its segment ends at the deepest item of `t`).
    fn insert_path(&mut self, t: &[Item]) -> u32 {
        let a = &mut self.arena;
        let mut parent = self.root;
        let mut pos = t.len();
        loop {
            debug_assert!(pos > 0);
            let item = t[pos - 1];
            let mut ins = Slot::Child(parent);
            loop {
                let d = slot_get(a, ins);
                if d != NONE && a.first_item(d) > item {
                    ins = Slot::Sib(d);
                } else {
                    break;
                }
            }
            let d = slot_get(a, ins);
            if d != NONE && a.first_item(d) == item {
                // consume the matching prefix of d's segment
                let len = a.get(d).seg_len as usize;
                let mut k = 1usize;
                pos -= 1;
                while k < len && pos > 0 && a.item_at(d, k) == t[pos - 1] {
                    k += 1;
                    pos -= 1;
                }
                if k == len {
                    if pos == 0 {
                        return d; // t ends exactly at this segment's end
                    }
                    parent = d;
                    continue;
                }
                // t diverged from (or ended inside) d's segment: split so
                // the shared prefix becomes its own node
                let tail = a.split(d, k as u32);
                if pos == 0 {
                    return d; // t ends at the split point: the head
                }
                // hang the remaining suffix as one node beside the tail,
                // keeping the child list descending by first item
                let seg: Vec<Item> = t[..pos].iter().rev().copied().collect();
                return if seg[0] > a.first_item(tail) {
                    let new = a.alloc_seg(&seg, 0, 0, 0, tail, NONE);
                    a.get_mut(d).children = new;
                    new
                } else {
                    let new = a.alloc_seg(&seg, 0, 0, 0, NONE, NONE);
                    a.get_mut(tail).sibling = new;
                    new
                };
            }
            // no child starts with `item`: one node takes the whole suffix
            let seg: Vec<Item> = t[..pos].iter().rev().copied().collect();
            let new = a.alloc_seg(&seg, 0, 0, 0, d, NONE);
            slot_set(a, ins, new);
            return new;
        }
    }

    /// Item-elimination pruning (paper §3.2): removes every item `i` from
    /// every stored set whose node support plus `remaining[i]` (occurrences
    /// of `i` in the yet-unprocessed transactions) cannot reach `minsupp`.
    /// Since supports are uniform per segment, the test runs per segment
    /// item: fully hopeless nodes are freed (subtrees merged into the
    /// parent's child list), partially hopeless segments are rewritten to
    /// their kept subsequence in place.
    pub fn prune(&mut self, remaining: &[u32], minsupp: u32) {
        let head = self.arena.get(self.root).children;
        let root = self.root;
        let mut buf = Vec::new();
        let new_head = prune_list(&mut self.arena, head, remaining, minsupp, root, &mut buf);
        self.arena.get_mut(self.root).children = new_head;
    }

    /// Item-elimination pruning that never reduces a stored transaction:
    /// every node whose subtree carries a terminal count (`raw > 0`) is
    /// kept whole even when its set is hopeless, so
    /// [`weighted_transactions`](Self::weighted_transactions) still lists
    /// the processed transactions verbatim afterwards.
    ///
    /// This is the variant a shard of a partitioned database must use
    /// before being [`merge`](Self::merge)d: the plain [`prune`](Self::prune)
    /// may eliminate an item from a transaction because the *set at the
    /// node* is locally hopeless even though the item itself is still
    /// globally viable — sound for this tree's own supports, but the
    /// reduced transaction would then under-count viable subsets in the
    /// tree it is replayed into. Items that are globally hopeless should
    /// instead be filtered out of transactions before insertion, which is
    /// what [`ParallelIstaMiner`] does.
    ///
    /// [`ParallelIstaMiner`]: crate::parallel::ParallelIstaMiner
    pub fn prune_keeping_terminals(&mut self, remaining: &[u32], minsupp: u32) {
        let head = self.arena.get(self.root).children;
        let mut buf = Vec::new();
        let (new_head, _) = prune_list_keep(&mut self.arena, head, remaining, minsupp, &mut buf);
        self.arena.get_mut(self.root).children = new_head;
    }

    /// Reports all closed item sets with support ≥ `minsupp` (paper Fig. 4):
    /// a node is emitted iff its support reaches `minsupp` and strictly
    /// exceeds the support of every child. Only the deepest conceptual
    /// node of a segment can be closed — every interior prefix has exactly
    /// one (conceptual) child with the same support — so the walk stays
    /// physical and pushes whole segments.
    pub fn report(&self, minsupp: u32) -> Vec<FoundSet> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        let mut c = self.arena.get(self.root).children;
        while c != NONE {
            report_rec(&self.arena, c, minsupp, &mut path, &mut out);
            c = self.arena.get(c).sibling;
        }
        out
    }

    /// Checks the structural invariants; panics with a description on
    /// violation. Used by tests and debug assertions.
    pub fn validate_invariants(&self) {
        let mut visited = 0usize;
        let mut raw_sum = u64::from(self.arena.get(self.root).raw);
        let mut seg_items = 0usize;
        validate_rec(
            &self.arena,
            self.arena.get(self.root).children,
            Item::MAX,
            self.weight,
            &mut visited,
            &mut raw_sum,
            &mut seg_items,
        );
        assert_eq!(
            visited + 1,
            self.arena.live_count(),
            "node count mismatch (cycle or leak)"
        );
        assert_eq!(
            raw_sum,
            u64::from(self.weight),
            "terminal raw counts must partition the processed weight"
        );
        assert_eq!(
            seg_items,
            self.arena.live_items(),
            "live segment item accounting out of sync"
        );
    }

    /// The maximum support over all stored sets that contain `items` —
    /// which equals the exact support of `items` in the processed prefix
    /// whenever `items` occurs at all, because the closure of `items` is
    /// stored with that support (paper §2.3). Returns `None` when no
    /// stored set contains `items`.
    pub fn max_support_of_superset(&self, items: &ItemSet) -> Option<u32> {
        if items.is_empty() {
            return (self.weight > 0).then_some(self.weight);
        }
        let desc: Vec<Item> = items.iter().rev().collect();
        superset_rec(&self.arena, self.arena.get(self.root).children, &desc)
    }

    /// Lists every stored *conceptual* node as `(item set, support)` in
    /// depth-first order — each prefix of each segment, exactly the node
    /// enumeration of the uncompressed tree. Used by the Fig. 3 experiment
    /// runner and by tests that inspect interior (non-closed) nodes.
    pub fn dump(&self) -> Vec<(ItemSet, u32)> {
        fn rec(a: &SegArena, mut node: u32, path: &mut Vec<Item>, out: &mut Vec<(ItemSet, u32)>) {
            while node != NONE {
                let n = a.get(node);
                let len = n.seg_len as usize;
                for j in 0..len {
                    path.push(a.item_at(node, j));
                    let mut items = path.clone();
                    items.reverse();
                    out.push((ItemSet::from_sorted(items), n.supp));
                }
                rec(a, n.children, path, out);
                path.truncate(path.len() - len);
                node = n.sibling;
            }
        }
        let mut out = Vec::new();
        rec(
            &self.arena,
            self.arena.get(self.root).children,
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// Exact support lookup for an item set, by walking its descending
    /// path through the segments. Returns `None` if the set is not (or no
    /// longer) stored.
    pub fn lookup(&self, items: &ItemSet) -> Option<u32> {
        let a = &self.arena;
        let mut node = self.root;
        let mut jpos = 0u32; // position inside node's segment; root len is 0
        for item in items.iter().rev() {
            if jpos < a.get(node).seg_len {
                // mid-segment: the only continuation is the next item
                if a.item_at(node, jpos as usize) != item {
                    return None;
                }
                jpos += 1;
                continue;
            }
            let mut c = a.get(node).children;
            loop {
                if c == NONE {
                    return None;
                }
                match a.first_item(c).cmp(&item) {
                    std::cmp::Ordering::Greater => c = a.get(c).sibling,
                    std::cmp::Ordering::Equal => break,
                    std::cmp::Ordering::Less => return None,
                }
            }
            node = c;
            jpos = 1;
        }
        Some(a.get(node).supp)
    }

    /// The distinct (pruning-reduced) transactions stored in this tree,
    /// each with its multiplicity, in ascending item order per transaction.
    /// Transactions pruned down to the empty set are *not* listed; their
    /// weight is [`empty_weight`](Self::empty_weight).
    ///
    /// The multiset these pairs describe is support-equivalent to the
    /// processed input for every item set that can still reach the minimum
    /// support the tree was pruned against (see §3.2 of the paper for the
    /// pruning caveat).
    pub fn weighted_transactions(&self) -> Vec<(Vec<Item>, u32)> {
        fn rec(a: &SegArena, mut node: u32, path: &mut Vec<Item>, out: &mut Vec<(Vec<Item>, u32)>) {
            while node != NONE {
                let n = a.get(node);
                let len = n.seg_len as usize;
                path.extend_from_slice(a.seg(node));
                if n.raw > 0 {
                    let mut t = path.clone();
                    t.reverse(); // path is descending; transactions ascend
                    out.push((t, n.raw));
                }
                rec(a, n.children, path, out);
                path.truncate(path.len() - len);
                node = n.sibling;
            }
        }
        let mut out = Vec::new();
        rec(
            &self.arena,
            self.arena.get(self.root).children,
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// Weight of processed transactions whose stored form is the empty set
    /// (only possible after pruning eliminated all their items).
    pub fn empty_weight(&self) -> u32 {
        self.arena.get(self.root).raw
    }

    /// Folds every transaction stored in `other` into `self`, so that
    /// afterwards `self` represents the concatenation of both input
    /// databases: for every item set `S`,
    ///
    /// ```text
    /// supp_merged(S) = supp_self(S) + supp_other(S)
    /// ```
    ///
    /// because the closed sets of `D₁ ∪ D₂` are exactly the closed sets of
    /// `D₁`, the closed sets of `D₂`, and their pairwise intersections,
    /// with additive support. The merge replays `other`'s deduplicated
    /// (and pruning-reduced) transaction multiset through the ordinary
    /// cumulative-intersection update, smallest transactions first
    /// (paper §3.4); replay cost therefore shrinks with how much `other`
    /// was pruned. Replaying over segments needs no special casing: each
    /// replayed transaction is re-inserted and re-intersected, splitting
    /// and extending segments exactly as ordinary insertion does.
    ///
    /// If `other` was pruned with the plain [`prune`](Self::prune), its
    /// stored transactions may have been reduced by items that are only
    /// *locally* hopeless, and replaying them can under-count viable
    /// subsets here; use
    /// [`prune_keeping_terminals`](Self::prune_keeping_terminals) on trees
    /// that will be merged (combined with filtering globally hopeless
    /// items out of transactions before insertion).
    ///
    /// Both trees must be over the same item universe.
    pub fn merge(&mut self, other: &PrefixTree) {
        self.merge_with(other, |_, _, _| {});
    }

    /// Like [`merge`](Self::merge), but invokes `after_each(self, t, w)`
    /// after every replayed weighted transaction, letting the caller
    /// interleave pruning (or progress accounting) with the replay — for
    /// large merges an unpruned combined tree can grow far beyond what the
    /// per-shard pruning kept bounded.
    pub fn merge_with<F>(&mut self, other: &PrefixTree, mut after_each: F)
    where
        F: FnMut(&mut PrefixTree, &[Item], u32),
    {
        let infallible: Result<(), std::convert::Infallible> =
            self.try_merge_with(other, |tree, t, w| {
                after_each(tree, t, w);
                Ok(())
            });
        let _ = infallible; // Infallible: the replay cannot stop early
    }

    /// Fallible [`merge_with`](Self::merge_with): `after_each` may return
    /// `Err` to stop the replay (a governed merge checkpoint). On an early
    /// stop the tree is left in a consistent state representing `self` plus
    /// the replayed prefix of `other`'s transactions — its reported sets
    /// are the exact closed sets of that combined multiset — and `other`'s
    /// remaining transactions (including its empty-set weight) are *not*
    /// accounted.
    pub fn try_merge_with<E, F>(&mut self, other: &PrefixTree, mut after_each: F) -> Result<(), E>
    where
        F: FnMut(&mut PrefixTree, &[Item], u32) -> Result<(), E>,
    {
        assert_eq!(
            self.trans.len(),
            other.trans.len(),
            "merge requires identical item universes"
        );
        let mut txs = other.weighted_transactions();
        txs.sort_unstable_by(|a, b| fim_core::cmp_size_then_desc_lex(&a.0, &b.0));
        for (t, w) in &txs {
            self.add_transaction_weighted(t, *w);
            after_each(self, t, *w)?;
        }
        // transactions of `other` that pruning reduced to the empty set
        // carry no items but still count toward the total weight
        self.weight += other.empty_weight();
        self.arena.get_mut(self.root).raw += other.empty_weight();
        self.arena.get_mut(self.root).supp = self.weight;
        Ok(())
    }
}

/// Non-panicking structural validation used by the snapshot reader: the
/// same invariants as [`PrefixTree::validate_invariants`], reported as
/// `Err` descriptions instead of panics, plus link- and segment-bounds
/// checking (a corrupt snapshot can contain arbitrary indices) and the
/// requirement that the segments exactly cover the item store (a snapshot
/// is written compacted, so no garbage items can hide in it).
fn check_structure(a: &SegArena, root: u32, num_items: u32, weight: u32) -> Result<(), String> {
    let slots = a.capacity_used();
    let mut visited = 1usize; // the root
    let mut raw_sum = u64::from(a.get(root).raw);
    let mut seg_total = 0usize;
    // (node, parent's last item, preceding sibling's first item) work list
    let mut stack: Vec<(u32, Item, Item)> = Vec::new();
    if a.get(root).children != NONE {
        stack.push((a.get(root).children, Item::MAX, Item::MAX));
    }
    while let Some((node, parent_last, prev_first)) = stack.pop() {
        if node as usize >= slots {
            return Err(format!("link {node} out of bounds ({slots} slots)"));
        }
        visited += 1;
        if visited > slots {
            return Err("cycle detected".into());
        }
        let n = a.get(node);
        if n.seg_len == 0 {
            return Err("empty segment outside the root".into());
        }
        if u64::from(n.seg_off) + u64::from(n.seg_len) > a.items_len() as u64 {
            return Err("segment out of bounds of the item store".into());
        }
        let seg = a.seg(node);
        if !seg.windows(2).all(|w| w[0] > w[1]) {
            return Err("segment must be strictly descending".into());
        }
        if seg[0] >= num_items {
            return Err(format!("item {} outside universe {num_items}", seg[0]));
        }
        if seg[0] >= parent_last {
            return Err("child item must be below parent item".into());
        }
        if prev_first != Item::MAX && seg[0] >= prev_first {
            return Err("sibling list must be strictly descending".into());
        }
        if n.supp > weight {
            return Err("support exceeds processed weight".into());
        }
        if n.raw > n.supp {
            return Err("terminal count exceeds support".into());
        }
        raw_sum += u64::from(n.raw);
        seg_total += seg.len();
        if n.sibling != NONE {
            stack.push((n.sibling, parent_last, seg[0]));
        }
        if n.children != NONE {
            stack.push((n.children, seg[seg.len() - 1], Item::MAX));
        }
    }
    if visited != slots {
        return Err(format!("{} of {slots} slots reachable", visited));
    }
    if seg_total != a.items_len() {
        return Err("segments do not exactly cover the item store".into());
    }
    if raw_sum != u64::from(weight) {
        return Err("terminal counts do not partition the weight".into());
    }
    Ok(())
}

/// The intersection traversal (paper Fig. 2), generalized to a transaction
/// weight `w` and to whole segments: each source node contributes the
/// *run* of its segment items that are in the transaction, and the run is
/// merged into the intersection tree in one pass (`merge_run`) instead of
/// one recursion level per item.
///
/// Walks the sibling list starting at `node`; `ins` tracks the position in
/// the tree representing the intersection of the processed path prefix with
/// the current transaction, advancing (as in the uncompressed walk) only
/// when a run starts at a segment's *first* item — deeper run items update
/// positions local to `merge_run`, mirroring how the per-item recursion
/// kept deeper `ins` values in callee frames.
#[allow(clippy::too_many_arguments)]
fn isect<K: SegKernel>(
    a: &mut SegArena,
    mut node: u32,
    mut ins: Slot,
    kernel: &mut K,
    imin: Item,
    step: u32,
    w: u32,
    scratch: &mut Vec<Item>,
) {
    while node != NONE {
        let base = scratch.len();
        let stopped = kernel.scan(a.seg(node), imin, scratch);
        let c = a.counters_mut();
        c.bump(Counter::SegScans);
        if stopped {
            c.bump(Counter::IsectEarlyExits);
        }
        let first = a.first_item(node);
        if scratch.len() > base {
            // the advance of `ins` persists to this sibling walk only when
            // the run starts at the segment head (= this sibling level)
            let mut local = ins;
            let ins_ref = if scratch[base] == first {
                &mut ins
            } else {
                &mut local
            };
            let (target, src_cont) = merge_run(a, ins_ref, scratch, base, node, step, w);
            scratch.truncate(base);
            if first <= imin {
                return; // later siblings only carry smaller items
            }
            if !stopped {
                // descend through the source *continuation*: if an aliased
                // split relocated this node's deeper items to the tail, the
                // children now hang off the tail
                let child = a.get(src_cont).children;
                isect(
                    a,
                    child,
                    Slot::Child(target),
                    kernel,
                    imin,
                    step,
                    w,
                    scratch,
                );
            }
        } else {
            if first <= imin {
                return;
            }
            if !stopped {
                let child = a.get(node).children;
                isect(a, child, ins, kernel, imin, step, w, scratch);
            }
        }
        // the sibling link stays on the original slot: a split keeps the
        // head (and its links) in place
        node = a.get(node).sibling;
    }
}

/// Merges `run` — `scratch[base..]`, the members of one source segment in
/// the current transaction, in descending order — into the intersection
/// tree at slot position `ins`, replicating the per-item find / discount /
/// max-merge / `+w` update of the uncompressed `isect` one whole matched
/// segment prefix at a time:
///
/// * a target matching a *proper prefix* of its segment is split first
///   (both halves keep `supp` and `step`, preserving the uniformity
///   invariant); when that target aliases the source node itself — the
///   revisit case the C original handles with `d == node` — the source
///   continuation relocates to the split tail,
/// * the discount (`step >= cur_step ⇒ supp -= w`) is applied before the
///   source support is read, so a full aliased revisit is a no-op exactly
///   as in the per-item walk,
/// * a run suffix with no matching target becomes a *single* fresh node
///   holding the whole remaining run.
///
/// Returns `(deepest updated-or-created target, source continuation)`.
fn merge_run(
    a: &mut SegArena,
    ins: &mut Slot,
    scratch: &[Item],
    base: usize,
    src: u32,
    step: u32,
    w: u32,
) -> (u32, u32) {
    let run = &scratch[base..];
    let mut src_cur = src;
    let mut cur_ins = *ins;
    let mut pos = 0usize;
    let mut at_head = true;
    let mut target = NONE;
    while pos < run.len() {
        let i = run[pos];
        loop {
            let d = slot_get(a, cur_ins);
            if d != NONE && a.first_item(d) > i {
                cur_ins = Slot::Sib(d);
            } else {
                break;
            }
        }
        if at_head {
            *ins = cur_ins;
            at_head = false;
        }
        let d = slot_get(a, cur_ins);
        if d != NONE && a.first_item(d) == i {
            // longest common prefix of d's segment and the remaining run
            let dlen = a.get(d).seg_len as usize;
            let mut k = 1usize;
            while k < dlen && pos + k < run.len() && a.item_at(d, k) == run[pos + k] {
                k += 1;
            }
            if k < dlen {
                // an aliased source updated this step is always fully
                // matched (its whole segment is in the transaction), so
                // the split cannot race the discount below
                debug_assert!(d != src_cur || a.get(d).step < step);
                let tail = a.split(d, k as u32);
                if d == src_cur {
                    src_cur = tail;
                }
            }
            // discount first so the aliased full revisit is a no-op: the
            // source support is read only afterwards, and when d is the
            // source the discounted value is what the per-item walk reads
            if a.get(d).step >= step {
                a.get_mut(d).supp -= w;
            }
            let s = a.get(src_cur).supp;
            let dn = a.get_mut(d);
            if dn.supp < s {
                dn.supp = s;
            }
            dn.supp += w;
            dn.step = step;
            target = d;
            pos += k;
            cur_ins = Slot::Child(d);
        } else {
            // no target starts with i: the whole remaining run becomes one
            // fresh segment node
            let s = a.get(src_cur).supp;
            let new = a.alloc_seg(&run[pos..], s + w, step, 0, d, NONE);
            slot_set(a, cur_ins, new);
            target = new;
            pos = run.len();
        }
    }
    (target, src_cur)
}

/// Finds the maximum support of any path extending through `needed`
/// (descending item codes) within the sibling list at `node`, consuming
/// needed items against whole segments.
fn superset_rec(a: &SegArena, mut node: u32, needed: &[Item]) -> Option<u32> {
    debug_assert!(!needed.is_empty());
    let target = needed[0];
    let mut best: Option<u32> = None;
    while node != NONE {
        if a.first_item(node) < target {
            // sibling lists are descending: nothing further can contain it
            break;
        }
        // scan the segment: a needed item is consumed on match, skipped
        // items only extend the set; an item below the next needed one
        // means the whole subtree misses it
        let mut idx = 0usize;
        let mut failed = false;
        for &it in a.seg(node) {
            if idx == needed.len() {
                break;
            }
            if it == needed[idx] {
                idx += 1;
            } else if it < needed[idx] {
                failed = true;
                break;
            }
        }
        let candidate = if failed {
            None
        } else if idx == needed.len() {
            // every needed item consumed; descendants (and deeper segment
            // items) only extend the set and cannot have larger support
            Some(a.get(node).supp)
        } else {
            superset_rec(a, a.get(node).children, &needed[idx..])
        };
        if let Some(c) = candidate {
            best = Some(best.map_or(c, |b: u32| b.max(c)));
        }
        node = a.get(node).sibling;
    }
    best
}

fn report_rec(
    a: &SegArena,
    node: u32,
    minsupp: u32,
    path: &mut Vec<Item>,
    out: &mut Vec<FoundSet>,
) {
    let len = a.get(node).seg_len as usize;
    path.extend_from_slice(a.seg(node));
    let mut max_child = 0u32;
    let mut c = a.get(node).children;
    while c != NONE {
        let cs = a.get(c).supp;
        if cs > max_child {
            max_child = cs;
        }
        report_rec(a, c, minsupp, path, out);
        c = a.get(c).sibling;
    }
    let supp = a.get(node).supp;
    if supp >= minsupp && supp > max_child {
        let mut items = path.clone();
        items.reverse(); // path is descending; ItemSet wants ascending
        out.push(FoundSet::new(ItemSet::from_sorted(items), supp));
    }
    path.truncate(path.len() - len);
}

#[allow(clippy::too_many_arguments)]
fn validate_rec(
    a: &SegArena,
    mut node: u32,
    parent_last: Item,
    weight: u32,
    visited: &mut usize,
    raw_sum: &mut u64,
    seg_items: &mut usize,
) {
    let mut prev_first = Item::MAX;
    while node != NONE {
        *visited += 1;
        assert!(*visited < a.capacity_used() + 1, "cycle detected");
        let n = a.get(node);
        assert!(n.seg_len >= 1, "only the root may hold an empty segment");
        let seg = a.seg(node);
        assert!(
            seg.windows(2).all(|w| w[0] > w[1]),
            "segment must be strictly descending"
        );
        assert!(seg[0] < parent_last, "child item must be below parent item");
        assert!(
            prev_first == Item::MAX || seg[0] < prev_first,
            "sibling list must be strictly descending"
        );
        assert!(n.supp <= weight, "support cannot exceed processed prefix");
        assert!(n.raw <= n.supp, "terminal count cannot exceed support");
        *raw_sum += u64::from(n.raw);
        *seg_items += seg.len();
        prev_first = seg[0];
        let last = seg[seg.len() - 1];
        validate_rec(a, n.children, last, weight, visited, raw_sum, seg_items);
        node = n.sibling;
    }
}

/// Rebuilds a sibling list, dropping segment items that cannot reach
/// `minsupp` and splicing the subtrees of fully-eliminated nodes into the
/// list. `parent` is the node owning the list: a fully-dropped node's
/// terminal count moves there (a partially-rewritten segment keeps its
/// terminal count — the deepest *kept* item is exactly the reduced form of
/// the stored transaction, which matches the per-item raw cascade of the
/// uncompressed prune).
fn prune_list(
    a: &mut SegArena,
    head: u32,
    remaining: &[u32],
    minsupp: u32,
    parent: u32,
    buf: &mut Vec<Item>,
) -> u32 {
    let mut new_head = NONE;
    let mut cur = head;
    while cur != NONE {
        let next = a.get(cur).sibling;
        a.get_mut(cur).sibling = NONE;
        let ch = a.get(cur).children;
        let pruned_ch = prune_list(a, ch, remaining, minsupp, cur, buf);
        a.get_mut(cur).children = pruned_ch;
        // supports are uniform per segment, so the §3.2 viability test
        // runs per item with one support read
        let supp = a.get(cur).supp;
        buf.clear();
        for &it in a.seg(cur) {
            if supp + remaining[it as usize] >= minsupp {
                buf.push(it);
            }
        }
        if buf.len() == a.get(cur).seg_len as usize {
            new_head = merge_node(a, new_head, cur);
        } else if !buf.is_empty() {
            a.rewrite_seg(cur, buf);
            new_head = merge_node(a, new_head, cur);
        } else {
            let raw = a.get(cur).raw;
            a.get_mut(parent).raw += raw;
            let mut c = a.get(cur).children;
            a.get_mut(cur).children = NONE;
            while c != NONE {
                let cnext = a.get(c).sibling;
                a.get_mut(c).sibling = NONE;
                new_head = merge_node(a, new_head, c);
                c = cnext;
            }
            a.free(cur);
        }
        cur = next;
    }
    new_head
}

/// Like [`prune_list`] but keeps every node whose subtree carries a
/// terminal count *whole* — `raw` sits at the deepest conceptual node, so
/// terminal-ness is uniform over a segment and no segment rewrite can be
/// needed for a terminal-carrying node. Returns the new list head and
/// whether the list's subtrees contain any `raw > 0` node.
fn prune_list_keep(
    a: &mut SegArena,
    head: u32,
    remaining: &[u32],
    minsupp: u32,
    buf: &mut Vec<Item>,
) -> (u32, bool) {
    let mut new_head = NONE;
    let mut any_raw = false;
    let mut cur = head;
    while cur != NONE {
        let next = a.get(cur).sibling;
        a.get_mut(cur).sibling = NONE;
        let ch = a.get(cur).children;
        let (pruned_ch, ch_raw) = prune_list_keep(a, ch, remaining, minsupp, buf);
        a.get_mut(cur).children = pruned_ch;
        let has_raw = ch_raw || a.get(cur).raw > 0;
        if has_raw {
            any_raw = true;
            new_head = merge_node(a, new_head, cur);
            cur = next;
            continue;
        }
        let supp = a.get(cur).supp;
        buf.clear();
        for &it in a.seg(cur) {
            if supp + remaining[it as usize] >= minsupp {
                buf.push(it);
            }
        }
        if buf.len() == a.get(cur).seg_len as usize {
            new_head = merge_node(a, new_head, cur);
        } else if !buf.is_empty() {
            a.rewrite_seg(cur, buf);
            new_head = merge_node(a, new_head, cur);
        } else {
            // a dropped node never carries terminals here (has_raw false),
            // so no raw transfer is needed — only the child splice
            let mut c = a.get(cur).children;
            a.get_mut(cur).children = NONE;
            while c != NONE {
                let cnext = a.get(c).sibling;
                a.get_mut(c).sibling = NONE;
                new_head = merge_node(a, new_head, c);
                c = cnext;
            }
            a.free(cur);
        }
        cur = next;
    }
    (new_head, any_raw)
}

/// Inserts node `x` (with its subtree) into the descending sibling list
/// `head`; on a first-item collision the nodes are aligned on their
/// longest common segment prefix and merged. Returns the new head.
fn merge_node(a: &mut SegArena, head: u32, x: u32) -> u32 {
    let xi = a.first_item(x);
    if head == NONE || a.first_item(head) < xi {
        a.get_mut(x).sibling = head;
        return x;
    }
    if a.first_item(head) == xi {
        merge_into(a, head, x);
        return head;
    }
    let mut prev = head;
    loop {
        let nxt = a.get(prev).sibling;
        if nxt == NONE || a.first_item(nxt) < xi {
            a.get_mut(x).sibling = nxt;
            a.get_mut(prev).sibling = x;
            return head;
        }
        if a.first_item(nxt) == xi {
            merge_into(a, nxt, x);
            return head;
        }
        prev = nxt;
    }
}

/// Merges node `x` into `dst` (same first item): both nodes are split down
/// to their longest common segment prefix, after which the (now identical)
/// heads fold — terminal counts add, supports max-merge — and `x`'s
/// children (including its own split-off tail) merge into `dst`'s child
/// list recursively.
fn merge_into(a: &mut SegArena, dst: u32, x: u32) {
    debug_assert_eq!(a.first_item(dst), a.first_item(x));
    let max = a.get(dst).seg_len.min(a.get(x).seg_len) as usize;
    let mut k = 1usize;
    while k < max && a.item_at(dst, k) == a.item_at(x, k) {
        k += 1;
    }
    if (a.get(dst).seg_len as usize) > k {
        a.split(dst, k as u32);
    }
    if (a.get(x).seg_len as usize) > k {
        a.split(x, k as u32);
    }
    let xr = a.get(x).raw;
    a.get_mut(dst).raw += xr;
    let xs = a.get(x).supp;
    if a.get(dst).supp < xs {
        a.get_mut(dst).supp = xs;
    }
    let mut c = a.get(x).children;
    a.get_mut(x).children = NONE;
    while c != NONE {
        let cnext = a.get(c).sibling;
        a.get_mut(c).sibling = NONE;
        let merged = merge_node(a, a.get(dst).children, c);
        a.get_mut(dst).children = merged;
        c = cnext;
    }
    a.free(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a tree from ascending-sorted transactions.
    fn build(num_items: u32, txs: &[&[Item]]) -> PrefixTree {
        let mut t = PrefixTree::new(num_items);
        for tx in txs {
            t.add_transaction(tx);
        }
        t.validate_invariants();
        t
    }

    #[test]
    fn figure3_trace() {
        // Paper Fig. 3: transactions {e,c,a}, {e,d,b}, {d,c,b,a}
        // with item codes a=0 b=1 c=2 d=3 e=4. The *conceptual* node
        // counts match the uncompressed trace (see plain.rs for the
        // physical version); path compression packs them into fewer
        // physical nodes.
        let mut t = PrefixTree::new(5);

        t.add_transaction(&[0, 2, 4]); // {e,c,a}
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([0, 2, 4])), Some(1));
        assert_eq!(t.memory_stats().seg_items, 3);
        assert_eq!(t.node_count(), 1, "one chain = one segment");

        t.add_transaction(&[1, 3, 4]); // {e,d,b}
        t.validate_invariants();
        // Fig. 3 step 2: e:2, d:1, b:1 (new path), c:1, a:1 untouched
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([3, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([1, 3, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1));
        assert_eq!(t.memory_stats().seg_items, 5);
        assert_eq!(t.node_count(), 3, "split [4|2,0] plus suffix [3,1]");

        t.add_transaction(&[0, 1, 2, 3]); // {d,c,b,a}
        t.validate_invariants();
        // Fig. 3 step 3.3 final supports:
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(2)); // {e}
        assert_eq!(t.lookup(&ItemSet::from([3, 4])), Some(1)); // {e,d}
        assert_eq!(t.lookup(&ItemSet::from([1, 3, 4])), Some(1)); // {e,d,b}
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1)); // {e,c}
        assert_eq!(t.lookup(&ItemSet::from([0, 2, 4])), Some(1)); // {e,c,a}
        assert_eq!(t.lookup(&ItemSet::from([3])), Some(2)); // {d}
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2)); // {d,b}
        assert_eq!(t.lookup(&ItemSet::from([2, 3])), Some(1)); // {d,c}
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), Some(1)); // {d,c,b}
        assert_eq!(t.lookup(&ItemSet::from([0, 1, 2, 3])), Some(1)); // full
        assert_eq!(t.lookup(&ItemSet::from([2])), Some(2)); // {c}
        assert_eq!(t.lookup(&ItemSet::from([0, 2])), Some(2)); // {c,a}
                                                               // exactly the 12 conceptual nodes of Fig. 3.3, in 7 segments
        assert_eq!(t.memory_stats().seg_items, 12);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.transactions_processed(), 3);
        // the conceptual enumeration matches the uncompressed layout
        assert_eq!(t.dump().len(), 12);
    }

    #[test]
    fn repeated_transactions_accumulate() {
        let t = build(3, &[&[0, 1], &[0, 1], &[0, 1]]);
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), Some(3));
        assert_eq!(t.node_count(), 1, "repeats never split the segment");
        assert_eq!(t.memory_stats().seg_items, 2);
    }

    #[test]
    fn intersect_segment_kernel() {
        // trans epoch-stamps items 9, 5, 2 at step 7
        let mut trans = vec![0u32; 10];
        for i in [9, 5, 2] {
            trans[i] = 7;
        }
        let mut out = Vec::new();
        // full scan, partial membership
        assert!(!intersect_segment(&[9, 7, 5, 3], &trans, 7, 0, &mut out));
        assert_eq!(out, vec![9, 5]);
        // early stop on a member == imin (the item is still collected)
        out.clear();
        assert!(intersect_segment(&[9, 5, 3], &trans, 7, 5, &mut out));
        assert_eq!(out, vec![9, 5]);
        // early stop on a non-member below imin
        out.clear();
        assert!(intersect_segment(&[9, 4, 2], &trans, 7, 5, &mut out));
        assert_eq!(out, vec![9]);
        // stale stamps are not members
        out.clear();
        assert!(!intersect_segment(&[9, 5], &trans, 8, 0, &mut out));
        assert_eq!(out, Vec::<Item>::new());
    }

    #[test]
    fn insert_splits_on_divergence_and_on_contained_prefix() {
        // [0,1,2] then [0,2]: the second path ends inside the first's
        // segment after diverging — forces a split with a suffix node
        let t = build(3, &[&[0, 1, 2], &[0, 2]]);
        assert_eq!(t.lookup(&ItemSet::from([0, 1, 2])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([0, 2])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([2])), Some(2));
        // [2|1,0] + [0] beside the tail
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.memory_stats().seg_items, 4);

        // a transaction that is a strict prefix of a stored segment ends
        // at the split head, which takes the terminal weight
        let t2 = build(4, &[&[0, 1, 2, 3], &[2, 3]]);
        assert_eq!(t2.lookup(&ItemSet::from([2, 3])), Some(2));
        assert_eq!(t2.lookup(&ItemSet::from([0, 1, 2, 3])), Some(1));
        let mut ws = t2.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![0, 1, 2, 3], 1), (vec![2, 3], 1)]);
    }

    #[test]
    fn every_node_support_is_exact() {
        // random-ish fixed database; verify every stored set's support by
        // rescanning the transactions
        let txs: Vec<Vec<Item>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 2, 3],
            vec![0, 2, 3, 5],
            vec![1, 5],
            vec![0, 1, 2, 3, 5],
            vec![2, 4],
            vec![0, 4, 5],
        ];
        let mut t = PrefixTree::new(6);
        for tx in &txs {
            t.add_transaction(tx);
        }
        t.validate_invariants();
        // every *conceptual* stored set's support must equal the scan
        // support (dump enumerates all segment prefixes)
        for (set, supp) in t.dump() {
            let scan = txs
                .iter()
                .filter(|tx| fim_core::itemset::is_subset(set.as_slice(), tx))
                .count() as u32;
            assert_eq!(supp, scan, "support of {:?}", set);
        }
    }

    #[test]
    fn report_filters_non_closed_prefix_nodes() {
        // {e,d} is an interior path node of {e,d,b} with equal support and
        // must not be reported
        let t = build(5, &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3]]);
        let r = t.report(1);
        let sets: Vec<&ItemSet> = r.iter().map(|f| &f.items).collect();
        assert!(
            !sets.contains(&&ItemSet::from([3, 4])),
            "{{e,d}} not closed"
        );
        assert!(
            sets.contains(&&ItemSet::from([1, 3, 4])),
            "{{e,d,b}} closed"
        );
        assert!(sets.contains(&&ItemSet::from([4])), "{{e}} closed supp 2");
    }

    #[test]
    fn report_respects_minsupp() {
        let t = build(5, &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3]]);
        let r = t.report(2);
        assert!(r.iter().all(|f| f.support >= 2));
        let sets: Vec<&ItemSet> = r.iter().map(|f| &f.items).collect();
        // the only closed sets with support >= 2: {e}, {d,b}, {c,a}
        // ({d} and {c} are not closed: their closures are {d,b} and {c,a})
        assert!(sets.contains(&&ItemSet::from([4])));
        assert!(sets.contains(&&ItemSet::from([1, 3])));
        assert!(sets.contains(&&ItemSet::from([0, 2])));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn lookup_missing_set() {
        let t = build(5, &[&[0, 2, 4]]);
        assert_eq!(t.lookup(&ItemSet::from([1])), None);
        assert_eq!(t.lookup(&ItemSet::from([0, 4])), None); // not a path
        assert_eq!(t.lookup(&ItemSet::empty()), Some(1)); // root = prefix len
    }

    #[test]
    fn prune_removes_hopeless_items() {
        // items: 0 appears twice overall, 1 four times; minsupp 4
        let mut t = PrefixTree::new(2);
        t.add_transaction(&[0, 1]);
        t.add_transaction(&[0, 1]);
        // remaining transactions: {1}, {1} → remaining[0]=0, remaining[1]=2
        t.prune(&[0, 2], 4);
        t.validate_invariants();
        // item 0 cannot reach support 4 → dropped from the stored segment
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), None);
        assert_eq!(t.lookup(&ItemSet::from([1])), Some(2));
        t.add_transaction(&[1]);
        t.add_transaction(&[1]);
        let r = t.report(4);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].items, ItemSet::from([1]));
        assert_eq!(r[0].support, 4);
    }

    #[test]
    fn prune_merges_subtrees() {
        // build paths 3→1 and 3→2→1, then eliminate item 2:
        // the set {3,2,1} loses its middle item and must merge with the
        // existing {3,1} — a mid-segment rewrite followed by a sibling
        // collision
        let mut t = PrefixTree::new(4);
        t.add_transaction(&[1, 3]);
        t.add_transaction(&[1, 2, 3]);
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), Some(1));
        // pretend item 2 never occurs again and minsupp is 2
        t.prune(&[10, 10, 0, 10], 2);
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), None);
        // the reduced set {3,1} keeps max supp 2
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2));
    }

    #[test]
    fn prune_rewrites_segment_interior() {
        // one long chain [5,4,3,2,1,0]; items 4 and 2 become hopeless →
        // the segment is rewritten in place to [5,3,1,0], no node freed
        let mut t = PrefixTree::new(6);
        t.add_transaction(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(t.node_count(), 1);
        let rem = [9, 9, 0, 9, 0, 9];
        t.prune(&rem, 2);
        t.validate_invariants();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.memory_stats().seg_items, 4);
        assert_eq!(t.lookup(&ItemSet::from([0, 1, 3, 5])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([0, 1, 2, 3, 4, 5])), None);
        // the terminal stays at the deepest kept item
        let mut ws = t.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![0, 1, 3, 5], 1)]);
    }

    #[test]
    fn empty_transaction_is_ignored() {
        let mut t = PrefixTree::new(3);
        t.add_transaction(&[]);
        assert_eq!(t.transactions_processed(), 0);
        assert_eq!(t.node_count(), 0);
        assert!(t.report(1).is_empty());
    }

    #[test]
    fn single_item_universe() {
        let t = build(1, &[&[0], &[0]]);
        let r = t.report(1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].support, 2);
    }

    #[test]
    fn interleaved_disjoint_transactions() {
        let t = build(4, &[&[0, 1], &[2, 3], &[0, 1], &[2, 3]]);
        let r = t.report(2);
        assert_eq!(r.len(), 2);
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([2, 3])), Some(2));
    }

    /// Sorted `(set, supp)` dump for order-insensitive tree comparison.
    fn canon(t: &PrefixTree, minsupp: u32) -> Vec<(Vec<Item>, u32)> {
        let mut v: Vec<(Vec<Item>, u32)> = t
            .report(minsupp)
            .into_iter()
            .map(|f| (f.items.as_slice().to_vec(), f.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn weighted_add_equals_repeated_adds() {
        let txs: Vec<Vec<Item>> = vec![vec![0, 1, 2], vec![1, 2, 3], vec![0, 3], vec![1, 2]];
        let weights = [3u32, 1, 2, 4];
        let mut plain = PrefixTree::new(4);
        let mut weighted = PrefixTree::new(4);
        for (t, &w) in txs.iter().zip(&weights) {
            for _ in 0..w {
                plain.add_transaction(t);
            }
            weighted.add_transaction_weighted(t, w);
        }
        plain.validate_invariants();
        weighted.validate_invariants();
        assert_eq!(plain.transactions_processed(), 10);
        assert_eq!(weighted.transactions_processed(), 10);
        assert_eq!(canon(&plain, 1), canon(&weighted, 1));
    }

    #[test]
    fn weighted_transactions_round_trip() {
        let txs: &[&[Item]] = &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3], &[0, 2, 4]];
        let t = build(5, txs);
        let mut listed = t.weighted_transactions();
        listed.sort();
        assert_eq!(
            listed,
            vec![
                (vec![0, 1, 2, 3], 1),
                (vec![0, 2, 4], 2),
                (vec![1, 3, 4], 1)
            ]
        );
        assert_eq!(t.empty_weight(), 0);
        // replaying the listed multiset rebuilds an equivalent tree
        let mut rebuilt = PrefixTree::new(5);
        for (tx, w) in &listed {
            rebuilt.add_transaction_weighted(tx, *w);
        }
        rebuilt.validate_invariants();
        assert_eq!(canon(&t, 1), canon(&rebuilt, 1));
    }

    #[test]
    fn merge_matches_sequential_processing() {
        let all: Vec<Vec<Item>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 2, 3],
            vec![0, 2, 3, 5],
            vec![1, 5],
            vec![0, 1, 2, 3, 5],
            vec![2, 4],
            vec![0, 4, 5],
        ];
        for split in 0..=all.len() {
            let mut whole = PrefixTree::new(6);
            for tx in &all {
                whole.add_transaction(tx);
            }
            let mut left = PrefixTree::new(6);
            for tx in &all[..split] {
                left.add_transaction(tx);
            }
            let mut right = PrefixTree::new(6);
            for tx in &all[split..] {
                right.add_transaction(tx);
            }
            left.merge(&right);
            left.validate_invariants();
            assert_eq!(
                left.transactions_processed(),
                whole.transactions_processed()
            );
            assert_eq!(canon(&left, 1), canon(&whole, 1), "split at {split}");
        }
    }

    #[test]
    fn merge_after_pruning_keeps_viable_supports() {
        // item 0 is hopeless in the left shard (never occurs again);
        // pruning reduces {0,1} to {1} and the merged result must still
        // report {1} and {2,3}-side sets with exact supports at minsupp 3
        let mut left = PrefixTree::new(4);
        left.add_transaction(&[0, 1]);
        left.add_transaction(&[0, 1]);
        left.prune(&[0, 4, 10, 10], 4);
        left.validate_invariants();
        assert_eq!(left.empty_weight(), 0);
        let mut ws = left.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![1], 2)], "reduced transaction keeps weight");

        let mut right = PrefixTree::new(4);
        right.add_transaction(&[1, 2]);
        right.add_transaction(&[1, 3]);
        right.merge(&left);
        right.validate_invariants();
        assert_eq!(right.transactions_processed(), 4);
        assert_eq!(right.lookup(&ItemSet::from([1])), Some(4));
    }

    #[test]
    fn prune_to_empty_set_keeps_weight_via_root() {
        let mut t = PrefixTree::new(2);
        t.add_transaction(&[0]);
        t.add_transaction(&[0, 1]);
        // both items hopeless → everything pruned away
        t.prune(&[0, 0], 5);
        t.validate_invariants();
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.empty_weight(), 2);
        assert!(t.weighted_transactions().is_empty());
        // merging the emptied tree still transfers its weight
        let mut dst = PrefixTree::new(2);
        dst.add_transaction(&[0, 1]);
        dst.merge(&t);
        dst.validate_invariants();
        assert_eq!(dst.transactions_processed(), 3);
    }

    #[test]
    fn merge_into_empty_and_empty_into() {
        let filled = build(4, &[&[0, 1], &[1, 2, 3]]);
        let mut empty = PrefixTree::new(4);
        empty.merge(&filled);
        empty.validate_invariants();
        assert_eq!(canon(&empty, 1), canon(&filled, 1));

        let mut filled2 = build(4, &[&[0, 1], &[1, 2, 3]]);
        filled2.merge(&PrefixTree::new(4));
        filled2.validate_invariants();
        assert_eq!(canon(&filled2, 1), canon(&filled, 1));
    }

    #[test]
    fn prune_keeping_terminals_never_reduces_transactions() {
        // set {1,2} is locally hopeless at minsupp 5 (supp 1 + remaining 3)
        // but both items are individually viable: the plain prune would
        // reduce the stored transaction {1,2} to {2}, the terminal-keeping
        // variant must list it verbatim
        let mut t = PrefixTree::new(3);
        t.add_transaction(&[1, 2]);
        t.add_transaction(&[0, 1]);
        t.prune_keeping_terminals(&[0, 3, 3], 5);
        t.validate_invariants();
        let mut ws = t.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![0, 1], 1), (vec![1, 2], 1)]);
        assert_eq!(t.lookup(&ItemSet::from([1])), Some(2));
    }

    #[test]
    fn prune_keeping_terminals_drops_terminal_free_nodes() {
        // paths 3→1→0 and 3→2→0 carry the terminals; their intersection
        // {0,3} branches off as a raw-free node 0 directly under 3 and is
        // the only node the terminal-keeping prune may remove
        let mut t = PrefixTree::new(4);
        t.add_transaction(&[0, 1, 3]);
        t.add_transaction(&[0, 2, 3]);
        assert_eq!(t.lookup(&ItemSet::from([0, 3])), Some(2));
        let before = t.memory_stats().seg_items;
        // node {0,3}: supp 2 + remaining[0]=1 < 9 → hopeless, raw-free
        t.prune_keeping_terminals(&[1, 9, 9, 9], 9);
        t.validate_invariants();
        assert_eq!(
            t.memory_stats().seg_items,
            before - 1,
            "raw-free conceptual node dropped"
        );
        assert_eq!(t.lookup(&ItemSet::from([0, 3])), None);
        let mut ws = t.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![0, 1, 3], 1), (vec![0, 2, 3], 1)]);
    }

    #[test]
    #[should_panic(expected = "identical item universes")]
    fn merge_rejects_mismatched_universe() {
        let mut a = PrefixTree::new(3);
        let b = PrefixTree::new(4);
        a.merge(&b);
    }

    #[test]
    fn compact_preserves_reports_after_pruning_churn() {
        let txs: Vec<Vec<Item>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 2, 3],
            vec![0, 2, 3, 5],
            vec![1, 5],
            vec![0, 1, 2, 3, 5],
            vec![2, 4],
            vec![0, 4, 5],
        ];
        let mut t = PrefixTree::new(6);
        for (k, tx) in txs.iter().enumerate() {
            t.add_transaction(tx);
            if k == 3 {
                // mid-stream prune scatters live nodes via the free list
                let mut remaining = vec![0u32; 6];
                for later in &txs[k + 1..] {
                    for &i in later {
                        remaining[i as usize] += 1;
                    }
                }
                t.prune(&remaining, 3);
            }
        }
        t.validate_invariants();
        let before = canon(&t, 3);
        let dump_before = t.dump();
        let stats_before = t.memory_stats();
        t.compact();
        t.validate_invariants();
        assert_eq!(canon(&t, 3), before);
        assert_eq!(t.dump(), dump_before);
        let stats_after = t.memory_stats();
        assert_eq!(stats_after.free_slots, 0);
        assert_eq!(stats_after.live_nodes, stats_before.live_nodes);
        assert_eq!(stats_after.total_slots, stats_before.live_nodes);
        assert_eq!(stats_after.seg_items, stats_before.seg_items);
        assert_eq!(
            stats_after.seg_bytes,
            stats_after.seg_items * std::mem::size_of::<Item>(),
            "compaction drops segment garbage"
        );
        // mining continues seamlessly on the compacted tree
        t.add_transaction(&[1, 2, 3]);
        t.validate_invariants();
    }

    #[test]
    fn compact_on_empty_tree() {
        let mut t = PrefixTree::new(3);
        t.compact();
        t.add_transaction(&[0, 2]);
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([0, 2])), Some(1));
    }

    #[test]
    fn memory_stats_tracks_free_list_and_garbage() {
        let mut t = PrefixTree::new(4);
        t.add_transaction(&[1, 3]);
        t.add_transaction(&[1, 2, 3]);
        let fresh = t.memory_stats();
        assert_eq!(fresh.free_slots, 0);
        assert_eq!(fresh.live_nodes, fresh.total_slots);
        assert_eq!(fresh.seg_items, 4, "split [3|1] + suffix [2,1]");
        assert_eq!(
            fresh.approx_bytes,
            fresh.total_slots * std::mem::size_of::<PatNode>() + fresh.seg_bytes + 4 * 4
        );
        // item 2 hopeless: [2,1] rewrites to [1] and collides with the
        // split tail [1], freeing one slot and leaving garbage items
        t.prune(&[10, 10, 0, 10], 2);
        t.validate_invariants();
        let pruned = t.memory_stats();
        assert_eq!(pruned.total_slots, fresh.total_slots);
        assert_eq!(pruned.free_slots, 1);
        assert_eq!(pruned.live_nodes, fresh.live_nodes - 1);
        assert_eq!(pruned.seg_items, 2, "[3] and the merged [1]");
        assert!(pruned.seg_bytes > pruned.seg_items * std::mem::size_of::<Item>());
        assert!(t.compact_if_fragmented());
        let compacted = t.memory_stats();
        assert_eq!(compacted.free_slots, 0);
        assert_eq!(
            compacted.seg_bytes,
            compacted.seg_items * std::mem::size_of::<Item>()
        );
        assert!(!t.compact_if_fragmented(), "already compact");
    }
}

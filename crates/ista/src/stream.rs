//! Incremental (streaming) closed-set mining.
//!
//! The cumulative scheme is inherently *incremental*: the prefix tree after
//! `k` transactions holds exactly the closed item sets of those `k`
//! transactions with exact supports, so transactions can arrive one at a
//! time and the current answer can be queried at any point. This is the
//! natural online API of the IsTa algorithm and something the enumeration
//! algorithms cannot offer without re-running from scratch.
//!
//! The price (the paper's "fundamental problem of the intersection
//! approach", §3.2): because future transactions are unknown, *no* item
//! can ever be eliminated — an infrequent set may still become frequent.
//! The stream therefore keeps the full repository (minimum support 1) and
//! its memory grows with the number of distinct closed sets seen. Batch
//! mining with a fixed threshold should use [`IstaMiner`](crate::IstaMiner)
//! instead, which prunes.

use crate::snapshot;
use crate::tree::{PrefixTree, TreeMemoryStats};
use fim_core::{FimError, Item, ItemSet, MiningResult};
use std::io::{Read, Write};

/// An online closed-set miner over a growing transaction stream.
///
/// ```
/// use fim_ista::IstaStream;
/// use fim_core::ItemSet;
///
/// let mut stream = IstaStream::new(5);
/// stream.push(&[0, 2, 4]);
/// stream.push(&[1, 3, 4]);
/// assert_eq!(stream.support_of(&ItemSet::from([4])), 2);
/// stream.push(&[0, 1, 2, 3]);
/// let closed = stream.closed_sets(2);
/// assert_eq!(closed.support_of(&ItemSet::from([4])), Some(2));
/// ```
#[derive(Clone, Debug)]
pub struct IstaStream {
    tree: PrefixTree,
    num_items: u32,
}

impl IstaStream {
    /// Creates a stream over the item universe `0..num_items`.
    pub fn new(num_items: u32) -> Self {
        IstaStream {
            tree: PrefixTree::new(num_items),
            num_items,
        }
    }

    /// Number of item codes in the universe.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of transactions pushed so far.
    pub fn transactions_processed(&self) -> u32 {
        self.tree.transactions_processed()
    }

    /// Number of closed sets currently stored (tree nodes are an upper
    /// bound; this counts nodes, including non-closed interior path nodes).
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// Pushes one transaction. Items may arrive unsorted or duplicated;
    /// codes must be below `num_items`. Empty transactions are ignored.
    pub fn push(&mut self, items: &[Item]) {
        let mut t = items.to_vec();
        t.sort_unstable();
        t.dedup();
        assert!(
            t.iter().all(|&i| i < self.num_items),
            "item code out of universe"
        );
        self.tree.add_transaction(&t);
    }

    /// Pushes an already-canonical (strictly ascending) transaction
    /// without copying.
    pub fn push_sorted(&mut self, items: &[Item]) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        assert!(
            items.iter().all(|&i| i < self.num_items),
            "item code out of universe"
        );
        self.tree.add_transaction(items);
    }

    /// The exact support of `items` in the stream so far (0 if it never
    /// occurred; the empty set's support is the transaction count).
    pub fn support_of(&self, items: &ItemSet) -> u32 {
        self.tree.max_support_of_superset(items).unwrap_or(0)
    }

    /// All closed item sets with support ≥ `minsupp` at this point of the
    /// stream, in canonical order.
    pub fn closed_sets(&self, minsupp: u32) -> MiningResult {
        let mut r = MiningResult {
            sets: self.tree.report(minsupp.max(1)),
        };
        r.canonicalize();
        r
    }

    /// Read access to the underlying prefix tree (for inspection).
    pub fn tree(&self) -> &PrefixTree {
        &self.tree
    }

    /// The cumulative hot-loop counters (segment scans, early exits, splits,
    /// node allocations) of all insertions so far.
    pub fn counters(&self) -> &fim_obs::Counters {
        self.tree.counters()
    }

    /// Current repository occupancy, for callers that bound the stream's
    /// memory externally (the stream itself never prunes; see the module
    /// docs for why).
    pub fn memory_stats(&self) -> TreeMemoryStats {
        self.tree.memory_stats()
    }

    /// Extends the item universe to `num_items` codes: streams over named
    /// items discover new items over time, and a stream resumed from a
    /// snapshot must accept codes minted after the checkpoint. Smaller
    /// values are ignored; existing supports and sets are untouched.
    pub fn grow_universe(&mut self, num_items: u32) {
        if num_items > self.num_items {
            self.tree.grow_universe(num_items);
            self.num_items = num_items;
        }
    }

    /// Serializes the stream state as a versioned, CRC-protected binary
    /// snapshot (see [`snapshot`](crate::snapshot) for the format). A
    /// stream reloaded with [`read_snapshot`](Self::read_snapshot) and fed
    /// the same subsequent transactions produces byte-identical results to
    /// one that was never persisted. Compacts the tree first
    /// (output-invariant).
    pub fn write_snapshot(&mut self, w: &mut dyn Write) -> Result<(), FimError> {
        snapshot::write_tree(&mut self.tree, w)
    }

    /// Reloads a stream from a snapshot written by
    /// [`write_snapshot`](Self::write_snapshot), validating the format
    /// version, the CRC, and the full tree structure; any mismatch is a
    /// [`FimError::Corrupt`].
    pub fn read_snapshot(r: &mut dyn Read) -> Result<Self, FimError> {
        let tree = snapshot::read_tree(r)?;
        Ok(IstaStream {
            num_items: tree.num_items(),
            tree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;
    use fim_core::RecodedDatabase;

    fn txs() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 3, 4],
            vec![1, 2, 3],
            vec![0, 1, 2, 3],
            vec![1, 2],
            vec![0, 1, 3],
            vec![3, 4],
            vec![2, 3, 4],
        ]
    }

    #[test]
    fn every_prefix_matches_batch_mining() {
        let txs = txs();
        let mut stream = IstaStream::new(5);
        for k in 0..txs.len() {
            stream.push(&txs[k]);
            let db = RecodedDatabase::from_dense(txs[..=k].to_vec(), 5);
            for minsupp in 1..=3 {
                let want = mine_reference(&db, minsupp);
                let got = stream.closed_sets(minsupp);
                assert_eq!(got, want, "prefix {} minsupp {minsupp}", k + 1);
            }
        }
        assert_eq!(stream.transactions_processed(), 8);
    }

    #[test]
    fn support_queries_are_exact_at_every_point() {
        let txs = txs();
        let mut stream = IstaStream::new(5);
        for k in 0..txs.len() {
            stream.push(&txs[k]);
            let db = RecodedDatabase::from_dense(txs[..=k].to_vec(), 5);
            // every subset of the universe
            for mask in 0u32..(1 << 5) {
                let items: ItemSet = (0..5).filter(|i| mask >> i & 1 == 1).collect();
                assert_eq!(
                    stream.support_of(&items),
                    db.support(&items),
                    "prefix {} set {items:?}",
                    k + 1
                );
            }
        }
    }

    #[test]
    fn unsorted_and_duplicated_input() {
        let mut stream = IstaStream::new(4);
        stream.push(&[3, 1, 3, 1]);
        stream.push(&[1, 3]);
        assert_eq!(stream.support_of(&ItemSet::from([1, 3])), 2);
        assert_eq!(stream.transactions_processed(), 2);
    }

    #[test]
    fn empty_transactions_ignored() {
        let mut stream = IstaStream::new(3);
        stream.push(&[]);
        assert_eq!(stream.transactions_processed(), 0);
        assert_eq!(stream.support_of(&ItemSet::empty()), 0);
        stream.push(&[1]);
        assert_eq!(stream.support_of(&ItemSet::empty()), 1);
    }

    #[test]
    fn push_sorted_fast_path() {
        let mut a = IstaStream::new(6);
        let mut b = IstaStream::new(6);
        for t in [vec![0, 2, 5], vec![1, 2], vec![0, 1, 2, 5]] {
            a.push(&t);
            b.push_sorted(&t);
        }
        assert_eq!(a.closed_sets(1), b.closed_sets(1));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_rejected() {
        let mut stream = IstaStream::new(2);
        stream.push(&[5]);
    }

    #[test]
    fn snapshot_resume_equals_uninterrupted_run() {
        let txs = txs();
        for split in 0..txs.len() {
            let mut uninterrupted = IstaStream::new(5);
            let mut first_half = IstaStream::new(5);
            for t in &txs[..split] {
                uninterrupted.push(t);
                first_half.push(t);
            }
            let mut buf = Vec::new();
            first_half.write_snapshot(&mut buf).expect("write");
            let mut resumed = IstaStream::read_snapshot(&mut buf.as_slice()).expect("read");
            assert_eq!(resumed.num_items(), 5);
            assert_eq!(resumed.transactions_processed(), split as u32);
            for t in &txs[split..] {
                uninterrupted.push(t);
                resumed.push(t);
            }
            resumed.tree().validate_invariants();
            for minsupp in 1..=3 {
                assert_eq!(
                    resumed.closed_sets(minsupp),
                    uninterrupted.closed_sets(minsupp),
                    "split {split} minsupp {minsupp}"
                );
            }
        }
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let mut stream = IstaStream::new(4);
        stream.push(&[0, 1, 3]);
        stream.push(&[1, 2]);
        let mut buf = Vec::new();
        stream.write_snapshot(&mut buf).expect("write");
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let err = IstaStream::read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, fim_core::FimError::Corrupt(_)), "{err}");
    }

    #[test]
    fn grow_universe_accepts_new_items_after_resume() {
        let mut stream = IstaStream::new(2);
        stream.push(&[0, 1]);
        let mut buf = Vec::new();
        stream.write_snapshot(&mut buf).expect("write");
        let mut resumed = IstaStream::read_snapshot(&mut buf.as_slice()).expect("read");
        resumed.grow_universe(4);
        assert_eq!(resumed.num_items(), 4);
        resumed.push(&[0, 1, 3]);
        resumed.tree().validate_invariants();
        assert_eq!(resumed.support_of(&ItemSet::from([0, 1])), 2);
        assert_eq!(resumed.support_of(&ItemSet::from([3])), 1);
        // shrinking is ignored
        resumed.grow_universe(1);
        assert_eq!(resumed.num_items(), 4);
        assert!(resumed.memory_stats().live_nodes >= 1);
    }
}

//! The uncompressed (one item per node) IsTa prefix tree — the reference
//! layout of paper Fig. 1, kept A/B-able against the path-compressed
//! Patricia tree in [`crate::tree`] (registered as `ista-plain`, CLI flag
//! `--no-patricia`). Insertion, the `isect` traversal (paper Fig. 2),
//! reporting (paper Fig. 4), and item-elimination pruning (paper §3.2).

use crate::arena::{Node, NodeArena, NONE};
use crate::tree::TreeMemoryStats;
use fim_core::{FoundSet, Item, ItemSet};
use fim_obs::{Counter, Counters};

/// A position in the tree where a sibling list can be read or spliced:
/// either the `children` field of a node or the `sibling` field of a node.
/// This is the arena equivalent of the C implementation's `NODE **ins`.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// The `children` field of the given node.
    Child(u32),
    /// The `sibling` field of the given node.
    Sib(u32),
}

#[inline]
fn slot_get(a: &NodeArena, s: Slot) -> u32 {
    match s {
        Slot::Child(n) => a.get(n).children,
        Slot::Sib(n) => a.get(n).sibling,
    }
}

#[inline]
fn slot_set(a: &mut NodeArena, s: Slot, v: u32) {
    match s {
        Slot::Child(n) => a.get_mut(n).children = v,
        Slot::Sib(n) => a.get_mut(n).sibling = v,
    }
}

/// The cumulative-intersection prefix tree (paper §3.3).
///
/// Invariants (checked by [`PlainPrefixTree::validate_invariants`]):
///
/// * every sibling list is strictly descending in item code,
/// * every child's item code is strictly smaller than its parent's,
/// * after processing `k` transactions, each node's `supp` equals the exact
///   support of the item set it represents within those `k` transactions
///   (as long as pruning has not removed evidence for globally infrequent
///   sets — pruned-tree supports are only exact for sets that can still
///   reach the minimum support; see §3.2 of the paper).
#[derive(Clone, Debug)]
pub struct PlainPrefixTree {
    arena: NodeArena,
    root: u32,
    /// Monotone per-call stamp used by `isect` to detect nodes already
    /// updated while processing the current transaction, and as the epoch
    /// of the `trans` membership array.
    step: u32,
    /// Total weight of transactions processed (= transaction count when
    /// every call uses weight 1).
    weight: u32,
    /// Epoch-stamped membership flags of the transaction currently being
    /// processed: item `i` is in the transaction iff `trans[i] == step`.
    /// Stamping replaces the set-then-clear flag loops of a plain
    /// `Vec<bool>` — the stale stamps of earlier transactions never need
    /// to be cleared because `step` strictly increases.
    trans: Vec<u32>,
}

impl PlainPrefixTree {
    /// Creates an empty tree over an item universe of `num_items` codes.
    pub fn new(num_items: u32) -> Self {
        let mut arena = NodeArena::new();
        let root = arena.alloc(Node {
            item: Item::MAX, // pseudo-item above every real item
            supp: 0,
            step: 0,
            raw: 0,
            sibling: NONE,
            children: NONE,
        });
        PlainPrefixTree {
            arena,
            root,
            step: 0,
            weight: 0,
            trans: vec![0; num_items as usize],
        }
    }

    /// Total weight of transactions processed so far (the plain
    /// transaction count when no weighted insertion was used).
    pub fn transactions_processed(&self) -> u32 {
        self.weight
    }

    /// Number of item codes in the universe this tree was created over.
    pub fn num_items(&self) -> u32 {
        self.trans.len() as u32
    }

    /// Extends the item universe to `num_items` codes (streaming use:
    /// later transactions may introduce items unseen when the tree — or
    /// the snapshot it was reloaded from — was created). Shrinking is not
    /// possible; a smaller value is ignored.
    pub fn grow_universe(&mut self, num_items: u32) {
        if num_items as usize > self.trans.len() {
            self.trans.resize(num_items as usize, 0);
        }
    }

    /// Number of live tree nodes (excluding the root).
    pub fn node_count(&self) -> usize {
        self.arena.live_count() - 1
    }

    /// Current arena occupancy (live nodes, slots, free list, approximate
    /// bytes). Free slots accumulate through pruning churn; [`compact`]
    /// returns them to the allocator.
    ///
    /// [`compact`]: Self::compact
    pub fn memory_stats(&self) -> TreeMemoryStats {
        let total_slots = self.arena.capacity_used();
        let live_nodes = self.arena.live_count();
        TreeMemoryStats {
            live_nodes,
            total_slots,
            free_slots: self.arena.free_count(),
            // one conceptual item per node: the "segments" are the nodes
            // themselves and occupy no extra storage
            seg_items: live_nodes.saturating_sub(1),
            seg_bytes: 0,
            approx_bytes: total_slots * std::mem::size_of::<Node>()
                + self.trans.len() * std::mem::size_of::<u32>(),
        }
    }

    /// Relocates the live nodes into depth-first order and drops the freed
    /// slots (see [`NodeArena::compact`]). Reported sets, supports, and
    /// stored transactions are unchanged — only node placement moves, so
    /// the `isect`/`report` traversals walk nearly-sequential memory again
    /// after pruning has scattered live nodes across the slot vector.
    pub fn compact(&mut self) {
        self.root = self.arena.compact(self.root);
    }

    /// [`compact`](Self::compact)s only when the free list is non-empty
    /// (a fresh or already-compact arena is left untouched). Returns
    /// whether a compaction ran.
    pub fn compact_if_fragmented(&mut self) -> bool {
        if self.arena.free_count() > 0 {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Hot-loop counters accumulated while building this tree (node scans
    /// reported as length-1 segment scans, early exits, allocations).
    pub fn counters(&self) -> &Counters {
        self.arena.counters()
    }

    /// Kernel-selection no-op: the uncompressed layout only has the scalar
    /// per-item walk (there are no segments to intersect word-parallel), so
    /// the bitset representation request is ignored. Present so the mining
    /// loop can drive both layouts through one interface.
    pub fn set_bitset(&mut self, _on: bool) {}

    /// Processes one transaction: inserts it as a path, then intersects it
    /// with every stored set in a single `isect` traversal.
    ///
    /// `t` must be strictly ascending and non-empty; item codes must be
    /// below the `num_items` the tree was created with.
    pub fn add_transaction(&mut self, t: &[Item]) {
        self.add_transaction_weighted(t, 1);
    }

    /// Processes `t` as `weight` identical transactions in one pass.
    ///
    /// Equivalent to calling [`add_transaction`](Self::add_transaction)
    /// `weight` times, but every support update adds `weight` at once —
    /// the workhorse of [`merge`](Self::merge), where the deduplicated
    /// transactions of another tree are replayed with their multiplicity.
    pub fn add_transaction_weighted(&mut self, t: &[Item], weight: u32) {
        debug_assert!(t.windows(2).all(|w| w[0] < w[1]));
        if t.is_empty() || weight == 0 {
            return;
        }
        self.step += 1;
        let terminal = self.insert_path(t);
        self.arena.get_mut(terminal).raw += weight;
        for &i in t {
            self.trans[i as usize] = self.step;
        }
        let imin = t[0];
        let head = self.arena.get(self.root).children;
        let ins = Slot::Child(self.root);
        let PlainPrefixTree {
            arena, trans, step, ..
        } = self;
        isect(arena, head, ins, trans, imin, *step, weight);
        self.weight += weight;
        self.arena.get_mut(self.root).supp = self.weight;
    }

    /// Inserts the path for transaction `t` (items consumed in descending
    /// order); nodes created on the way start with support 0 and are
    /// counted by the subsequent `isect` self-intersection. Returns the
    /// terminal node (deepest item of `t`).
    fn insert_path(&mut self, t: &[Item]) -> u32 {
        let mut parent = self.root;
        for &item in t.iter().rev() {
            let mut ins = Slot::Child(parent);
            loop {
                let d = slot_get(&self.arena, ins);
                if d != NONE && self.arena.get(d).item > item {
                    ins = Slot::Sib(d);
                } else {
                    break;
                }
            }
            let d = slot_get(&self.arena, ins);
            if d != NONE && self.arena.get(d).item == item {
                parent = d;
            } else {
                let new = self.arena.alloc(Node {
                    item,
                    supp: 0,
                    step: 0,
                    raw: 0,
                    sibling: d,
                    children: NONE,
                });
                slot_set(&mut self.arena, ins, new);
                parent = new;
            }
        }
        parent
    }

    /// Item-elimination pruning (paper §3.2): removes every item `i` from
    /// every stored set whose node support plus `remaining[i]` (occurrences
    /// of `i` in the yet-unprocessed transactions) cannot reach `minsupp`.
    /// Subtrees of removed nodes are merged into their parent's child list
    /// (max-merging supports on collisions), so reduced sets stay available
    /// as intersection sources.
    pub fn prune(&mut self, remaining: &[u32], minsupp: u32) {
        let head = self.arena.get(self.root).children;
        let root = self.root;
        let new_head = prune_list(&mut self.arena, head, remaining, minsupp, root);
        self.arena.get_mut(self.root).children = new_head;
    }

    /// Item-elimination pruning that never reduces a stored transaction:
    /// every node whose subtree carries a terminal count (`raw > 0`) is
    /// kept even when its set is hopeless, so
    /// [`weighted_transactions`](Self::weighted_transactions) still lists
    /// the processed transactions verbatim afterwards.
    ///
    /// This is the variant a shard of a partitioned database must use
    /// before being [`merge`](Self::merge)d: the plain [`prune`](Self::prune)
    /// may eliminate an item from a transaction because the *set at the
    /// node* is locally hopeless even though the item itself is still
    /// globally viable — sound for this tree's own supports, but the
    /// reduced transaction would then under-count viable subsets in the
    /// tree it is replayed into. Items that are globally hopeless should
    /// instead be filtered out of transactions before insertion, which is
    /// what [`ParallelIstaMiner`] does.
    ///
    /// [`ParallelIstaMiner`]: crate::parallel::ParallelIstaMiner
    pub fn prune_keeping_terminals(&mut self, remaining: &[u32], minsupp: u32) {
        let head = self.arena.get(self.root).children;
        let (new_head, _) = prune_list_keep(&mut self.arena, head, remaining, minsupp);
        self.arena.get_mut(self.root).children = new_head;
    }

    /// Reports all closed item sets with support ≥ `minsupp` (paper Fig. 4):
    /// a node is emitted iff its support reaches `minsupp` and strictly
    /// exceeds the support of every child.
    pub fn report(&self, minsupp: u32) -> Vec<FoundSet> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        let mut c = self.arena.get(self.root).children;
        while c != NONE {
            report_rec(&self.arena, c, minsupp, &mut path, &mut out);
            c = self.arena.get(c).sibling;
        }
        out
    }

    /// Checks the structural invariants; panics with a description on
    /// violation. Used by tests and debug assertions.
    pub fn validate_invariants(&self) {
        let mut visited = 0usize;
        let mut raw_sum = u64::from(self.arena.get(self.root).raw);
        validate_rec(
            &self.arena,
            self.arena.get(self.root).children,
            Item::MAX,
            self.weight,
            &mut visited,
            &mut raw_sum,
        );
        assert_eq!(
            visited + 1,
            self.arena.live_count(),
            "node count mismatch (cycle or leak)"
        );
        assert_eq!(
            raw_sum,
            u64::from(self.weight),
            "terminal raw counts must partition the processed weight"
        );
    }

    /// The maximum support over all stored sets that contain `items` —
    /// which equals the exact support of `items` in the processed prefix
    /// whenever `items` occurs at all, because the closure of `items` is
    /// stored with that support (paper §2.3). Returns `None` when no
    /// stored set contains `items`.
    pub fn max_support_of_superset(&self, items: &ItemSet) -> Option<u32> {
        if items.is_empty() {
            return (self.weight > 0).then_some(self.weight);
        }
        let desc: Vec<Item> = items.iter().rev().collect();
        superset_rec(&self.arena, self.arena.get(self.root).children, &desc)
    }

    /// Lists every stored node as `(item set, support)` in depth-first
    /// order — the tree contents, used by the Fig. 3 experiment runner and
    /// by tests that inspect interior (non-closed) nodes.
    pub fn dump(&self) -> Vec<(ItemSet, u32)> {
        fn rec(a: &NodeArena, mut node: u32, path: &mut Vec<Item>, out: &mut Vec<(ItemSet, u32)>) {
            while node != NONE {
                let n = a.get(node);
                path.push(n.item);
                let mut items = path.clone();
                items.reverse();
                out.push((ItemSet::from_sorted(items), n.supp));
                rec(a, n.children, path, out);
                path.pop();
                node = n.sibling;
            }
        }
        let mut out = Vec::new();
        rec(
            &self.arena,
            self.arena.get(self.root).children,
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// Exact support lookup for an item set, by walking its descending path.
    /// Returns `None` if the set is not (or no longer) stored.
    pub fn lookup(&self, items: &ItemSet) -> Option<u32> {
        let mut node = self.root;
        for item in items.iter().rev() {
            let mut c = self.arena.get(node).children;
            loop {
                if c == NONE {
                    return None;
                }
                let n = self.arena.get(c);
                match n.item.cmp(&item) {
                    std::cmp::Ordering::Greater => c = n.sibling,
                    std::cmp::Ordering::Equal => break,
                    std::cmp::Ordering::Less => return None,
                }
            }
            node = c;
        }
        Some(self.arena.get(node).supp)
    }

    /// The distinct (pruning-reduced) transactions stored in this tree,
    /// each with its multiplicity, in ascending item order per transaction.
    /// Transactions pruned down to the empty set are *not* listed; their
    /// weight is [`empty_weight`](Self::empty_weight).
    ///
    /// The multiset these pairs describe is support-equivalent to the
    /// processed input for every item set that can still reach the minimum
    /// support the tree was pruned against (see §3.2 of the paper for the
    /// pruning caveat).
    pub fn weighted_transactions(&self) -> Vec<(Vec<Item>, u32)> {
        fn rec(
            a: &NodeArena,
            mut node: u32,
            path: &mut Vec<Item>,
            out: &mut Vec<(Vec<Item>, u32)>,
        ) {
            while node != NONE {
                let n = a.get(node);
                path.push(n.item);
                if n.raw > 0 {
                    let mut t = path.clone();
                    t.reverse(); // path is descending; transactions ascend
                    out.push((t, n.raw));
                }
                rec(a, n.children, path, out);
                path.pop();
                node = n.sibling;
            }
        }
        let mut out = Vec::new();
        rec(
            &self.arena,
            self.arena.get(self.root).children,
            &mut Vec::new(),
            &mut out,
        );
        out
    }

    /// Weight of processed transactions whose stored form is the empty set
    /// (only possible after pruning eliminated all their items).
    pub fn empty_weight(&self) -> u32 {
        self.arena.get(self.root).raw
    }

    /// Folds every transaction stored in `other` into `self`, so that
    /// afterwards `self` represents the concatenation of both input
    /// databases: for every item set `S`,
    ///
    /// ```text
    /// supp_merged(S) = supp_self(S) + supp_other(S)
    /// ```
    ///
    /// because the closed sets of `D₁ ∪ D₂` are exactly the closed sets of
    /// `D₁`, the closed sets of `D₂`, and their pairwise intersections,
    /// with additive support. The merge replays `other`'s deduplicated
    /// (and pruning-reduced) transaction multiset through the ordinary
    /// cumulative-intersection update, smallest transactions first
    /// (paper §3.4); replay cost therefore shrinks with how much `other`
    /// was pruned.
    ///
    /// If `other` was pruned with the plain [`prune`](Self::prune), its
    /// stored transactions may have been reduced by items that are only
    /// *locally* hopeless, and replaying them can under-count viable
    /// subsets here; use
    /// [`prune_keeping_terminals`](Self::prune_keeping_terminals) on trees
    /// that will be merged (combined with filtering globally hopeless
    /// items out of transactions before insertion).
    ///
    /// Both trees must be over the same item universe.
    pub fn merge(&mut self, other: &PlainPrefixTree) {
        self.merge_with(other, |_, _, _| {});
    }

    /// Like [`merge`](Self::merge), but invokes `after_each(self, t, w)`
    /// after every replayed weighted transaction, letting the caller
    /// interleave pruning (or progress accounting) with the replay — for
    /// large merges an unpruned combined tree can grow far beyond what the
    /// per-shard pruning kept bounded.
    pub fn merge_with<F>(&mut self, other: &PlainPrefixTree, mut after_each: F)
    where
        F: FnMut(&mut PlainPrefixTree, &[Item], u32),
    {
        let infallible: Result<(), std::convert::Infallible> =
            self.try_merge_with(other, |tree, t, w| {
                after_each(tree, t, w);
                Ok(())
            });
        let _ = infallible; // Infallible: the replay cannot stop early
    }

    /// Fallible [`merge_with`](Self::merge_with): `after_each` may return
    /// `Err` to stop the replay (a governed merge checkpoint). On an early
    /// stop the tree is left in a consistent state representing `self` plus
    /// the replayed prefix of `other`'s transactions — its reported sets
    /// are the exact closed sets of that combined multiset — and `other`'s
    /// remaining transactions (including its empty-set weight) are *not*
    /// accounted.
    pub fn try_merge_with<E, F>(
        &mut self,
        other: &PlainPrefixTree,
        mut after_each: F,
    ) -> Result<(), E>
    where
        F: FnMut(&mut PlainPrefixTree, &[Item], u32) -> Result<(), E>,
    {
        assert_eq!(
            self.trans.len(),
            other.trans.len(),
            "merge requires identical item universes"
        );
        let mut txs = other.weighted_transactions();
        txs.sort_unstable_by(|a, b| fim_core::cmp_size_then_desc_lex(&a.0, &b.0));
        for (t, w) in &txs {
            self.add_transaction_weighted(t, *w);
            after_each(self, t, *w)?;
        }
        // transactions of `other` that pruning reduced to the empty set
        // carry no items but still count toward the total weight
        self.weight += other.empty_weight();
        self.arena.get_mut(self.root).raw += other.empty_weight();
        self.arena.get_mut(self.root).supp = self.weight;
        Ok(())
    }
}

/// The intersection traversal (paper Fig. 2), generalized to a transaction
/// weight `w` (all support increments add `w` instead of 1).
///
/// Walks the sibling list starting at `node`; `ins` tracks the position in
/// the tree representing the intersection of the processed path prefix with
/// the current transaction. Membership is epoch-stamped: item `i` is in the
/// transaction iff `trans[i] == step` (minimum item `imin`).
fn isect(
    a: &mut NodeArena,
    mut node: u32,
    mut ins: Slot,
    trans: &[u32],
    imin: Item,
    step: u32,
    w: u32,
) {
    while node != NONE {
        // one node visited = one length-1 segment scanned, so the plain
        // layout reports through the same counter slots as Patricia
        a.counters_mut().bump(Counter::SegScans);
        let i = a.get(node).item;
        if trans[i as usize] == step {
            // the item is in the intersection: find/create the node for it
            loop {
                let d = slot_get(a, ins);
                if d != NONE && a.get(d).item > i {
                    ins = Slot::Sib(d);
                } else {
                    break;
                }
            }
            let d = slot_get(a, ins);
            let target;
            if d != NONE && a.get(d).item == i {
                // discount first so that the aliased case (d == node, i.e.
                // a revisit of an already-updated intersection node) is a
                // no-op, exactly as in the C original where d and node may
                // be the same object
                if a.get(d).step >= step {
                    a.get_mut(d).supp -= w;
                }
                let node_supp = a.get(node).supp;
                let dn = a.get_mut(d);
                if dn.supp < node_supp {
                    dn.supp = node_supp;
                }
                dn.supp += w;
                dn.step = step;
                target = d;
            } else {
                let node_supp = a.get(node).supp;
                let new = a.alloc(Node {
                    item: i,
                    supp: node_supp + w,
                    step,
                    raw: 0,
                    sibling: d,
                    children: NONE,
                });
                slot_set(a, ins, new);
                target = new;
            }
            if i <= imin {
                a.counters_mut().bump(Counter::IsectEarlyExits);
                return; // no smaller item can be in the transaction
            }
            let child = a.get(node).children;
            isect(a, child, Slot::Child(target), trans, imin, step, w);
        } else {
            if i <= imin {
                a.counters_mut().bump(Counter::IsectEarlyExits);
                return; // later siblings only carry smaller items
            }
            let child = a.get(node).children;
            isect(a, child, ins, trans, imin, step, w);
        }
        node = a.get(node).sibling;
    }
}

/// Finds the maximum support of any path extending through `needed`
/// (descending item codes) within the sibling list at `node`.
fn superset_rec(a: &NodeArena, mut node: u32, needed: &[Item]) -> Option<u32> {
    debug_assert!(!needed.is_empty());
    let target = needed[0];
    let mut best: Option<u32> = None;
    while node != NONE {
        let n = a.get(node);
        if n.item < target {
            // sibling lists are descending: nothing further can contain it
            break;
        }
        let candidate = if n.item == target {
            if needed.len() == 1 {
                // the node's path contains every needed item; descendants
                // only extend the set and cannot have larger support
                Some(n.supp)
            } else {
                superset_rec(a, n.children, &needed[1..])
            }
        } else {
            // n.item > target: the target may sit deeper in this subtree
            superset_rec(a, n.children, needed)
        };
        if let Some(c) = candidate {
            best = Some(best.map_or(c, |b: u32| b.max(c)));
        }
        node = n.sibling;
    }
    best
}

fn report_rec(
    a: &NodeArena,
    node: u32,
    minsupp: u32,
    path: &mut Vec<Item>,
    out: &mut Vec<FoundSet>,
) {
    path.push(a.get(node).item);
    let mut max_child = 0u32;
    let mut c = a.get(node).children;
    while c != NONE {
        let cs = a.get(c).supp;
        if cs > max_child {
            max_child = cs;
        }
        report_rec(a, c, minsupp, path, out);
        c = a.get(c).sibling;
    }
    let supp = a.get(node).supp;
    if supp >= minsupp && supp > max_child {
        let mut items = path.clone();
        items.reverse(); // path is descending; ItemSet wants ascending
        out.push(FoundSet::new(ItemSet::from_sorted(items), supp));
    }
    path.pop();
}

fn validate_rec(
    a: &NodeArena,
    mut node: u32,
    parent_item: Item,
    weight: u32,
    visited: &mut usize,
    raw_sum: &mut u64,
) {
    let mut prev_item = Item::MAX;
    while node != NONE {
        *visited += 1;
        assert!(*visited < a.capacity_used() + 1, "cycle detected");
        let n = a.get(node);
        assert!(n.item < parent_item, "child item must be below parent item");
        assert!(
            prev_item == Item::MAX || n.item < prev_item,
            "sibling list must be strictly descending"
        );
        assert!(n.supp <= weight, "support cannot exceed processed prefix");
        assert!(n.raw <= n.supp, "terminal count cannot exceed support");
        *raw_sum += u64::from(n.raw);
        prev_item = n.item;
        validate_rec(a, n.children, n.item, weight, visited, raw_sum);
        node = n.sibling;
    }
}

/// Rebuilds a sibling list, dropping items that cannot reach `minsupp` and
/// splicing their (already pruned) children into the list. `parent` is the
/// node owning the list: a dropped node's terminal count moves there,
/// because the reduced form of a transaction ending at the dropped node is
/// exactly the parent's item set.
fn prune_list(a: &mut NodeArena, head: u32, remaining: &[u32], minsupp: u32, parent: u32) -> u32 {
    let mut new_head = NONE;
    let mut cur = head;
    while cur != NONE {
        let next = a.get(cur).sibling;
        a.get_mut(cur).sibling = NONE;
        let ch = a.get(cur).children;
        let pruned_ch = prune_list(a, ch, remaining, minsupp, cur);
        a.get_mut(cur).children = pruned_ch;
        let n = a.get(cur);
        let keep = n.supp + remaining[n.item as usize] >= minsupp;
        if keep {
            new_head = merge_node(a, new_head, cur);
        } else {
            let raw = a.get(cur).raw;
            a.get_mut(parent).raw += raw;
            let mut c = pruned_ch;
            a.get_mut(cur).children = NONE;
            while c != NONE {
                let cnext = a.get(c).sibling;
                a.get_mut(c).sibling = NONE;
                new_head = merge_node(a, new_head, c);
                c = cnext;
            }
            a.free(cur);
        }
        cur = next;
    }
    new_head
}

/// Like [`prune_list`] but keeps every node whose subtree carries a
/// terminal count, so no stored transaction is reduced. Returns the new
/// list head and whether the list's subtrees contain any `raw > 0` node.
fn prune_list_keep(a: &mut NodeArena, head: u32, remaining: &[u32], minsupp: u32) -> (u32, bool) {
    let mut new_head = NONE;
    let mut any_raw = false;
    let mut cur = head;
    while cur != NONE {
        let next = a.get(cur).sibling;
        a.get_mut(cur).sibling = NONE;
        let ch = a.get(cur).children;
        let (pruned_ch, ch_raw) = prune_list_keep(a, ch, remaining, minsupp);
        a.get_mut(cur).children = pruned_ch;
        let n = a.get(cur);
        let has_raw = ch_raw || n.raw > 0;
        let keep = has_raw || n.supp + remaining[n.item as usize] >= minsupp;
        if keep {
            any_raw |= has_raw;
            new_head = merge_node(a, new_head, cur);
        } else {
            // a dropped node never carries terminals (has_raw is false),
            // so no raw transfer is needed — only the child splice
            let mut c = pruned_ch;
            a.get_mut(cur).children = NONE;
            while c != NONE {
                let cnext = a.get(c).sibling;
                a.get_mut(c).sibling = NONE;
                new_head = merge_node(a, new_head, c);
                c = cnext;
            }
            a.free(cur);
        }
        cur = next;
    }
    (new_head, any_raw)
}

/// Inserts node `x` (with its subtree) into the descending sibling list
/// `head`; on an item collision the supports are max-merged and the
/// children lists merged recursively. Returns the new head.
fn merge_node(a: &mut NodeArena, head: u32, x: u32) -> u32 {
    let xi = a.get(x).item;
    if head == NONE || a.get(head).item < xi {
        a.get_mut(x).sibling = head;
        return x;
    }
    if a.get(head).item == xi {
        merge_into(a, head, x);
        return head;
    }
    let mut prev = head;
    loop {
        let nxt = a.get(prev).sibling;
        if nxt == NONE || a.get(nxt).item < xi {
            a.get_mut(x).sibling = nxt;
            a.get_mut(prev).sibling = x;
            return head;
        }
        if a.get(nxt).item == xi {
            merge_into(a, nxt, x);
            return head;
        }
        prev = nxt;
    }
}

/// Merges node `x` into `dst` (same item): max support, merged children.
fn merge_into(a: &mut NodeArena, dst: u32, x: u32) {
    debug_assert_eq!(a.get(dst).item, a.get(x).item);
    let xr = a.get(x).raw;
    a.get_mut(dst).raw += xr;
    let xs = a.get(x).supp;
    if a.get(dst).supp < xs {
        a.get_mut(dst).supp = xs;
    }
    let mut c = a.get(x).children;
    a.get_mut(x).children = NONE;
    while c != NONE {
        let cnext = a.get(c).sibling;
        a.get_mut(c).sibling = NONE;
        let merged = merge_node(a, a.get(dst).children, c);
        a.get_mut(dst).children = merged;
        c = cnext;
    }
    a.free(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a tree from ascending-sorted transactions.
    fn build(num_items: u32, txs: &[&[Item]]) -> PlainPrefixTree {
        let mut t = PlainPrefixTree::new(num_items);
        for tx in txs {
            t.add_transaction(tx);
        }
        t.validate_invariants();
        t
    }

    #[test]
    fn figure3_trace() {
        // Paper Fig. 3: transactions {e,c,a}, {e,d,b}, {d,c,b,a}
        // with item codes a=0 b=1 c=2 d=3 e=4.
        let mut t = PlainPrefixTree::new(5);

        t.add_transaction(&[0, 2, 4]); // {e,c,a}
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([0, 2, 4])), Some(1));
        assert_eq!(t.node_count(), 3);

        t.add_transaction(&[1, 3, 4]); // {e,d,b}
        t.validate_invariants();
        // Fig. 3 step 2: e:2, d:1, b:1 (new path), c:1, a:1 untouched
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([3, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([1, 3, 4])), Some(1));
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1));
        assert_eq!(t.node_count(), 5);

        t.add_transaction(&[0, 1, 2, 3]); // {d,c,b,a}
        t.validate_invariants();
        // Fig. 3 step 3.3 final supports:
        assert_eq!(t.lookup(&ItemSet::from([4])), Some(2)); // {e}
        assert_eq!(t.lookup(&ItemSet::from([3, 4])), Some(1)); // {e,d}
        assert_eq!(t.lookup(&ItemSet::from([1, 3, 4])), Some(1)); // {e,d,b}
        assert_eq!(t.lookup(&ItemSet::from([2, 4])), Some(1)); // {e,c}
        assert_eq!(t.lookup(&ItemSet::from([0, 2, 4])), Some(1)); // {e,c,a}
        assert_eq!(t.lookup(&ItemSet::from([3])), Some(2)); // {d}
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2)); // {d,b}
        assert_eq!(t.lookup(&ItemSet::from([2, 3])), Some(1)); // {d,c}
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), Some(1)); // {d,c,b}
        assert_eq!(t.lookup(&ItemSet::from([0, 1, 2, 3])), Some(1)); // full
        assert_eq!(t.lookup(&ItemSet::from([2])), Some(2)); // {c}
        assert_eq!(t.lookup(&ItemSet::from([0, 2])), Some(2)); // {c,a}
                                                               // exactly the 12 nodes of Fig. 3.3
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.transactions_processed(), 3);
    }

    #[test]
    fn repeated_transactions_accumulate() {
        let t = build(3, &[&[0, 1], &[0, 1], &[0, 1]]);
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), Some(3));
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn every_node_support_is_exact() {
        // random-ish fixed database; verify every stored set's support by
        // rescanning the transactions
        let txs: Vec<Vec<Item>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 2, 3],
            vec![0, 2, 3, 5],
            vec![1, 5],
            vec![0, 1, 2, 3, 5],
            vec![2, 4],
            vec![0, 4, 5],
        ];
        let mut t = PlainPrefixTree::new(6);
        for tx in &txs {
            t.add_transaction(tx);
        }
        t.validate_invariants();
        // enumerate all stored sets via report at minsupp 1 — every reported
        // support must equal the scan support
        for fs in t.report(1) {
            let scan = txs
                .iter()
                .filter(|tx| fim_core::itemset::is_subset(fs.items.as_slice(), tx))
                .count() as u32;
            assert_eq!(fs.support, scan, "support of {:?}", fs.items);
        }
    }

    #[test]
    fn report_filters_non_closed_prefix_nodes() {
        // {e,d} is an interior path node of {e,d,b} with equal support and
        // must not be reported
        let t = build(5, &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3]]);
        let r = t.report(1);
        let sets: Vec<&ItemSet> = r.iter().map(|f| &f.items).collect();
        assert!(
            !sets.contains(&&ItemSet::from([3, 4])),
            "{{e,d}} not closed"
        );
        assert!(
            sets.contains(&&ItemSet::from([1, 3, 4])),
            "{{e,d,b}} closed"
        );
        assert!(sets.contains(&&ItemSet::from([4])), "{{e}} closed supp 2");
    }

    #[test]
    fn report_respects_minsupp() {
        let t = build(5, &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3]]);
        let r = t.report(2);
        assert!(r.iter().all(|f| f.support >= 2));
        let sets: Vec<&ItemSet> = r.iter().map(|f| &f.items).collect();
        // the only closed sets with support >= 2: {e}, {d,b}, {c,a}
        // ({d} and {c} are not closed: their closures are {d,b} and {c,a})
        assert!(sets.contains(&&ItemSet::from([4])));
        assert!(sets.contains(&&ItemSet::from([1, 3])));
        assert!(sets.contains(&&ItemSet::from([0, 2])));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn lookup_missing_set() {
        let t = build(5, &[&[0, 2, 4]]);
        assert_eq!(t.lookup(&ItemSet::from([1])), None);
        assert_eq!(t.lookup(&ItemSet::from([0, 4])), None); // not a path
        assert_eq!(t.lookup(&ItemSet::empty()), Some(1)); // root = prefix len
    }

    #[test]
    fn prune_removes_hopeless_items() {
        // items: 0 appears twice overall, 1 four times; minsupp 4
        let mut t = PlainPrefixTree::new(2);
        t.add_transaction(&[0, 1]);
        t.add_transaction(&[0, 1]);
        // remaining transactions: {1}, {1} → remaining[0]=0, remaining[1]=2
        t.prune(&[0, 2], 4);
        t.validate_invariants();
        // item 0 cannot reach support 4 → node(s) containing 0 dropped
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), None);
        assert_eq!(t.lookup(&ItemSet::from([1])), Some(2));
        t.add_transaction(&[1]);
        t.add_transaction(&[1]);
        let r = t.report(4);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].items, ItemSet::from([1]));
        assert_eq!(r[0].support, 4);
    }

    #[test]
    fn prune_merges_subtrees() {
        // build paths 3→1 and 3→2→1, then eliminate item 2:
        // node {3,2} (child 2 under 3) must merge its child 1 with the
        // existing child 1 under 3
        let mut t = PlainPrefixTree::new(4);
        t.add_transaction(&[1, 3]);
        t.add_transaction(&[1, 2, 3]);
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), Some(1));
        // pretend item 2 never occurs again and minsupp is 2
        t.prune(&[10, 10, 0, 10], 2);
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([1, 2, 3])), None);
        // the reduced set {3,1} keeps max supp 2
        assert_eq!(t.lookup(&ItemSet::from([1, 3])), Some(2));
    }

    #[test]
    fn empty_transaction_is_ignored() {
        let mut t = PlainPrefixTree::new(3);
        t.add_transaction(&[]);
        assert_eq!(t.transactions_processed(), 0);
        assert_eq!(t.node_count(), 0);
        assert!(t.report(1).is_empty());
    }

    #[test]
    fn single_item_universe() {
        let t = build(1, &[&[0], &[0]]);
        let r = t.report(1);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].support, 2);
    }

    #[test]
    fn interleaved_disjoint_transactions() {
        let t = build(4, &[&[0, 1], &[2, 3], &[0, 1], &[2, 3]]);
        let r = t.report(2);
        assert_eq!(r.len(), 2);
        assert_eq!(t.lookup(&ItemSet::from([0, 1])), Some(2));
        assert_eq!(t.lookup(&ItemSet::from([2, 3])), Some(2));
    }

    /// Sorted `(set, supp)` dump for order-insensitive tree comparison.
    fn canon(t: &PlainPrefixTree, minsupp: u32) -> Vec<(Vec<Item>, u32)> {
        let mut v: Vec<(Vec<Item>, u32)> = t
            .report(minsupp)
            .into_iter()
            .map(|f| (f.items.as_slice().to_vec(), f.support))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn weighted_add_equals_repeated_adds() {
        let txs: Vec<Vec<Item>> = vec![vec![0, 1, 2], vec![1, 2, 3], vec![0, 3], vec![1, 2]];
        let weights = [3u32, 1, 2, 4];
        let mut plain = PlainPrefixTree::new(4);
        let mut weighted = PlainPrefixTree::new(4);
        for (t, &w) in txs.iter().zip(&weights) {
            for _ in 0..w {
                plain.add_transaction(t);
            }
            weighted.add_transaction_weighted(t, w);
        }
        plain.validate_invariants();
        weighted.validate_invariants();
        assert_eq!(plain.transactions_processed(), 10);
        assert_eq!(weighted.transactions_processed(), 10);
        assert_eq!(canon(&plain, 1), canon(&weighted, 1));
    }

    #[test]
    fn weighted_transactions_round_trip() {
        let txs: &[&[Item]] = &[&[0, 2, 4], &[1, 3, 4], &[0, 1, 2, 3], &[0, 2, 4]];
        let t = build(5, txs);
        let mut listed = t.weighted_transactions();
        listed.sort();
        assert_eq!(
            listed,
            vec![
                (vec![0, 1, 2, 3], 1),
                (vec![0, 2, 4], 2),
                (vec![1, 3, 4], 1)
            ]
        );
        assert_eq!(t.empty_weight(), 0);
        // replaying the listed multiset rebuilds an equivalent tree
        let mut rebuilt = PlainPrefixTree::new(5);
        for (tx, w) in &listed {
            rebuilt.add_transaction_weighted(tx, *w);
        }
        rebuilt.validate_invariants();
        assert_eq!(canon(&t, 1), canon(&rebuilt, 1));
    }

    #[test]
    fn merge_matches_sequential_processing() {
        let all: Vec<Vec<Item>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 2, 3],
            vec![0, 2, 3, 5],
            vec![1, 5],
            vec![0, 1, 2, 3, 5],
            vec![2, 4],
            vec![0, 4, 5],
        ];
        for split in 0..=all.len() {
            let mut whole = PlainPrefixTree::new(6);
            for tx in &all {
                whole.add_transaction(tx);
            }
            let mut left = PlainPrefixTree::new(6);
            for tx in &all[..split] {
                left.add_transaction(tx);
            }
            let mut right = PlainPrefixTree::new(6);
            for tx in &all[split..] {
                right.add_transaction(tx);
            }
            left.merge(&right);
            left.validate_invariants();
            assert_eq!(
                left.transactions_processed(),
                whole.transactions_processed()
            );
            assert_eq!(canon(&left, 1), canon(&whole, 1), "split at {split}");
        }
    }

    #[test]
    fn merge_after_pruning_keeps_viable_supports() {
        // item 0 is hopeless in the left shard (never occurs again);
        // pruning reduces {0,1} to {1} and the merged result must still
        // report {1} and {2,3}-side sets with exact supports at minsupp 3
        let mut left = PlainPrefixTree::new(4);
        left.add_transaction(&[0, 1]);
        left.add_transaction(&[0, 1]);
        left.prune(&[0, 4, 10, 10], 4);
        left.validate_invariants();
        assert_eq!(left.empty_weight(), 0);
        let mut ws = left.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![1], 2)], "reduced transaction keeps weight");

        let mut right = PlainPrefixTree::new(4);
        right.add_transaction(&[1, 2]);
        right.add_transaction(&[1, 3]);
        right.merge(&left);
        right.validate_invariants();
        assert_eq!(right.transactions_processed(), 4);
        assert_eq!(right.lookup(&ItemSet::from([1])), Some(4));
    }

    #[test]
    fn prune_to_empty_set_keeps_weight_via_root() {
        let mut t = PlainPrefixTree::new(2);
        t.add_transaction(&[0]);
        t.add_transaction(&[0, 1]);
        // both items hopeless → everything pruned away
        t.prune(&[0, 0], 5);
        t.validate_invariants();
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.empty_weight(), 2);
        assert!(t.weighted_transactions().is_empty());
        // merging the emptied tree still transfers its weight
        let mut dst = PlainPrefixTree::new(2);
        dst.add_transaction(&[0, 1]);
        dst.merge(&t);
        dst.validate_invariants();
        assert_eq!(dst.transactions_processed(), 3);
    }

    #[test]
    fn merge_into_empty_and_empty_into() {
        let filled = build(4, &[&[0, 1], &[1, 2, 3]]);
        let mut empty = PlainPrefixTree::new(4);
        empty.merge(&filled);
        empty.validate_invariants();
        assert_eq!(canon(&empty, 1), canon(&filled, 1));

        let mut filled2 = build(4, &[&[0, 1], &[1, 2, 3]]);
        filled2.merge(&PlainPrefixTree::new(4));
        filled2.validate_invariants();
        assert_eq!(canon(&filled2, 1), canon(&filled, 1));
    }

    #[test]
    fn prune_keeping_terminals_never_reduces_transactions() {
        // set {1,2} is locally hopeless at minsupp 5 (supp 1 + remaining 3)
        // but both items are individually viable: the plain prune would
        // reduce the stored transaction {1,2} to {2}, the terminal-keeping
        // variant must list it verbatim
        let mut t = PlainPrefixTree::new(3);
        t.add_transaction(&[1, 2]);
        t.add_transaction(&[0, 1]);
        t.prune_keeping_terminals(&[0, 3, 3], 5);
        t.validate_invariants();
        let mut ws = t.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![0, 1], 1), (vec![1, 2], 1)]);
        // a genuinely terminal-free hopeless node still gets pruned: the
        // intersection node {1} has raw 0 … but it is viable here; check
        // instead that pruning with everything viable keeps the tree intact
        assert_eq!(t.lookup(&ItemSet::from([1])), Some(2));
    }

    #[test]
    fn prune_keeping_terminals_drops_terminal_free_nodes() {
        // paths 3→1→0 and 3→2→0 carry the terminals; their intersection
        // {0,3} branches off as a raw-free node 0 directly under 3 and is
        // the only node the terminal-keeping prune may remove
        let mut t = PlainPrefixTree::new(4);
        t.add_transaction(&[0, 1, 3]);
        t.add_transaction(&[0, 2, 3]);
        assert_eq!(t.lookup(&ItemSet::from([0, 3])), Some(2));
        let before = t.node_count();
        // node {0,3}: supp 2 + remaining[0]=1 < 9 → hopeless, raw-free
        t.prune_keeping_terminals(&[1, 9, 9, 9], 9);
        t.validate_invariants();
        assert_eq!(t.node_count(), before - 1, "raw-free node dropped");
        assert_eq!(t.lookup(&ItemSet::from([0, 3])), None);
        let mut ws = t.weighted_transactions();
        ws.sort();
        assert_eq!(ws, vec![(vec![0, 1, 3], 1), (vec![0, 2, 3], 1)]);
    }

    #[test]
    #[should_panic(expected = "identical item universes")]
    fn merge_rejects_mismatched_universe() {
        let mut a = PlainPrefixTree::new(3);
        let b = PlainPrefixTree::new(4);
        a.merge(&b);
    }

    #[test]
    fn compact_preserves_reports_after_pruning_churn() {
        let txs: Vec<Vec<Item>> = vec![
            vec![0, 1, 2, 5],
            vec![1, 2, 3],
            vec![0, 2, 3, 5],
            vec![1, 5],
            vec![0, 1, 2, 3, 5],
            vec![2, 4],
            vec![0, 4, 5],
        ];
        let mut t = PlainPrefixTree::new(6);
        for (k, tx) in txs.iter().enumerate() {
            t.add_transaction(tx);
            if k == 3 {
                // mid-stream prune scatters live nodes via the free list
                let mut remaining = vec![0u32; 6];
                for later in &txs[k + 1..] {
                    for &i in later {
                        remaining[i as usize] += 1;
                    }
                }
                t.prune(&remaining, 3);
            }
        }
        t.validate_invariants();
        let before = canon(&t, 3);
        let stats_before = t.memory_stats();
        t.compact();
        t.validate_invariants();
        assert_eq!(canon(&t, 3), before);
        let stats_after = t.memory_stats();
        assert_eq!(stats_after.free_slots, 0);
        assert_eq!(stats_after.live_nodes, stats_before.live_nodes);
        assert_eq!(stats_after.total_slots, stats_before.live_nodes);
        // mining continues seamlessly on the compacted tree
        t.add_transaction(&[1, 2, 3]);
        t.validate_invariants();
    }

    #[test]
    fn compact_on_empty_tree() {
        let mut t = PlainPrefixTree::new(3);
        t.compact();
        t.add_transaction(&[0, 2]);
        t.validate_invariants();
        assert_eq!(t.lookup(&ItemSet::from([0, 2])), Some(1));
    }

    #[test]
    fn memory_stats_tracks_free_list() {
        let mut t = PlainPrefixTree::new(4);
        t.add_transaction(&[1, 3]);
        t.add_transaction(&[1, 2, 3]);
        let fresh = t.memory_stats();
        assert_eq!(fresh.free_slots, 0);
        assert_eq!(fresh.live_nodes, fresh.total_slots);
        assert_eq!(
            fresh.approx_bytes,
            fresh.total_slots * std::mem::size_of::<Node>() + 4 * 4
        );
        // drops the {2,3} node and merges its child {1,2,3} into the
        // existing {1,3} node — two slots return to the free list
        t.prune(&[10, 10, 0, 10], 2);
        let pruned = t.memory_stats();
        assert_eq!(pruned.total_slots, fresh.total_slots);
        assert_eq!(pruned.free_slots, 2);
        assert_eq!(pruned.live_nodes, fresh.live_nodes - 2);
    }
}

//! Data-parallel IsTa: shard the database, mine each shard's prefix tree on
//! its own thread, and combine the shard trees with [`PrefixTree::merge`] in
//! a binary reduction.
//!
//! The decomposition rests on the additive support identity
//!
//! ```text
//! supp_{D₁ ∪ D₂}(S) = supp_{D₁}(S) + supp_{D₂}(S)
//! ```
//!
//! for a database split into disjoint transaction multisets: the closed sets
//! of the union are the closed sets of the parts plus their pairwise
//! intersections, and replaying one shard tree's (deduplicated, possibly
//! pruning-reduced) transactions into another via the ordinary cumulative
//! intersection update computes exactly those intersections with correct
//! summed supports.
//!
//! Shards are **contiguous** transaction ranges, so the §3.4
//! size-then-lexicographic processing order is preserved inside each shard.
//! Item-elimination pruning keeps working per shard: a shard starts from a
//! snapshot of the *global* item support counts and decrements only the
//! occurrences it has itself consumed — occurrences held by other shards are
//! still "remaining" because they arrive later through the merge, so the
//! viability bound `supp + remaining[i] ≥ minsupp` stays safe.

use crate::miner::{IstaConfig, IstaMiner, PrunePacer, PrunePolicy};
use crate::tree::{PrefixTree, TreeMemoryStats};
use fim_core::{
    checkpoint, Budget, CancelToken, ClosedMiner, Governor, Item, MineOutcome, MiningResult,
    Progress, RecodedDatabase, TripReason,
};
use fim_obs::Counters;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Test-only fault injection for the shard threads.
///
/// Hidden from the public API surface: integration tests arm a one-shot
/// panic in a chosen shard to exercise the `catch_unwind` recovery path;
/// production code never touches this.
#[doc(hidden)]
pub mod test_hooks {
    use std::sync::atomic::{AtomicUsize, Ordering};

    static PANIC_SHARD: AtomicUsize = AtomicUsize::new(usize::MAX);

    /// Arms a one-shot panic: the next time shard `idx` starts mining it
    /// panics (once — the recovery re-mine of the same data is spared).
    pub fn arm_shard_panic(idx: usize) {
        PANIC_SHARD.store(idx, Ordering::SeqCst);
    }

    /// Disarms any pending injected panic.
    pub fn disarm() {
        PANIC_SHARD.store(usize::MAX, Ordering::SeqCst);
    }

    pub(crate) fn maybe_panic(idx: usize) {
        if PANIC_SHARD
            .compare_exchange(idx, usize::MAX, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            panic!("injected shard panic (test hook) in shard {idx}");
        }
    }
}

/// Stack size for shard threads. The `isect` traversal recurses to the
/// tree depth, which is bounded by the longest transaction and can reach
/// tens of thousands of frames on gene-expression-shaped data; the
/// reservation is virtual and only committed as used.
const SHARD_STACK_BYTES: usize = 256 << 20;

/// Tuning knobs for [`ParallelIstaMiner`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelConfig {
    /// Number of shards/threads. `0` means "use the available parallelism
    /// of the machine"; `1` falls back to the sequential miner.
    pub threads: usize,
    /// Per-shard pruning placement policy (same semantics as the
    /// sequential miner's).
    pub policy: PrunePolicy,
    /// Coalesce each shard's (hopeless-item-filtered) transactions into
    /// `(items, weight)` pairs before insertion (same semantics as
    /// [`IstaConfig::coalesce`]).
    pub coalesce: bool,
    /// Compact shard/merge trees after pruning passes that freed slots
    /// (same semantics as [`IstaConfig::compact`]).
    pub compact: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        let seq = IstaConfig::default();
        ParallelConfig {
            threads: 0,
            policy: seq.policy,
            coalesce: seq.coalesce,
            compact: seq.compact,
        }
    }
}

impl ParallelConfig {
    /// Configuration with an explicit thread count and the default policy.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..Default::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Run report of one [`ParallelIstaMiner`] mining run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelMineStats {
    /// Shards the database was split into (1 for the sequential fallback).
    pub shards: usize,
    /// Shards whose thread panicked and whose data was re-mined
    /// sequentially by the panic-isolation path. `0` on a healthy run.
    pub shards_recovered: usize,
    /// Arena occupancy of the fully reduced tree, before reporting.
    pub memory: TreeMemoryStats,
    /// Hot-loop counters summed over every shard and every merge replay:
    /// each merge absorbs the donor tree's counters into the receiver, so
    /// the reduced tree accounts for all work done across threads.
    pub counters: Counters,
}

/// Data-parallel IsTa miner: contiguous shards on scoped threads, combined
/// by a binary merge reduction.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelIstaMiner {
    /// Algorithm configuration.
    pub config: ParallelConfig,
}

impl ParallelIstaMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: ParallelConfig) -> Self {
        ParallelIstaMiner { config }
    }

    /// Creates a miner with `threads` shards and the default prune policy.
    pub fn with_threads(threads: usize) -> Self {
        ParallelIstaMiner {
            config: ParallelConfig::with_threads(threads),
        }
    }

    /// Like [`ClosedMiner::mine`], but also reports the shard count, the
    /// panic-recovery count, and the final tree occupancy.
    ///
    /// A shard thread that panics does not take the run down: the panic is
    /// caught at the reduction step ([`catch_unwind`]), the lost shard's
    /// transactions are re-mined sequentially once on the surviving
    /// thread, and the incident is surfaced as
    /// [`shards_recovered`](ParallelMineStats::shards_recovered) — the
    /// mined result is identical to an unpanicked run. A panic during the
    /// re-mine itself (a deterministic bug, not a fault) propagates.
    pub fn mine_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
    ) -> (MiningResult, ParallelMineStats) {
        let (outcome, stats) = self.mine_governed_with_stats(db, minsupp, &Budget::unlimited());
        (outcome.into_result(), stats)
    }

    /// Governed parallel mining (see [`ClosedMiner::mine_governed`]).
    ///
    /// Every shard and every merge step runs under its own [`Governor`]
    /// sharing one internal [`CancelToken`]: the first shard to trip
    /// records the reason and cancels its siblings, so the whole reduction
    /// winds down at the next checkpoint instead of running to completion.
    /// Node/byte budgets bound each shard (and merge) tree individually,
    /// and the transaction budget is likewise per shard. The partial
    /// result is exact for the processed transaction subset. Graceful
    /// degradation (`Budget::degrade`) is a sequential-miner feature and
    /// is ignored here — a per-shard raised threshold would be unsound to
    /// merge.
    pub fn mine_governed_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        budget: &Budget,
    ) -> (MineOutcome, ParallelMineStats) {
        let minsupp = minsupp.max(1);
        let threads = self.config.effective_threads();
        let txs = db.transactions();
        if threads <= 1 || txs.len() <= 1 {
            let seq = IstaMiner::with_config(IstaConfig {
                policy: self.config.policy,
                coalesce: self.config.coalesce,
                compact: self.config.compact,
                patricia: true,
                rep: fim_core::Representation::Scalar,
            });
            let (outcome, stats) = seq.mine_governed_with_stats(db, minsupp, budget);
            let stats = ParallelMineStats {
                shards: 1,
                shards_recovered: 0,
                memory: stats.memory,
                counters: stats.counters,
            };
            return (outcome, stats);
        }
        let chunk = txs.len().div_ceil(threads);
        let nchunks = txs.len().div_ceil(chunk);
        let ctx = RunCtx {
            num_items: db.num_items(),
            global_supports: db.item_supports(),
            cfg: self.config,
            minsupp,
            chunk,
            recovered: AtomicUsize::new(0),
            gov: (!budget.is_unlimited()).then(|| GovShared {
                budget: budget.clone(),
                shared: CancelToken::new(),
                tripped: Mutex::new(None),
                processed: AtomicU64::new(0),
            }),
        };
        let reduced = mine_reduce(txs, nchunks, 0, &ctx, true);
        let stats = ParallelMineStats {
            shards: nchunks,
            shards_recovered: ctx.recovered.load(Ordering::SeqCst),
            memory: reduced.tree.memory_stats(),
            counters: *reduced.tree.counters(),
        };
        let result = MiningResult {
            sets: reduced.tree.report(minsupp),
        };
        let tripped = ctx.gov.as_ref().and_then(GovShared::take_trip);
        let outcome = match tripped {
            Some(reason) => MineOutcome::Interrupted {
                partial: result,
                reason,
                progress: Progress {
                    processed: ctx
                        .gov
                        .as_ref()
                        .map_or(0, |g| g.processed.load(Ordering::SeqCst)),
                    total: Some(txs.len() as u64),
                },
            },
            None => MineOutcome::complete(result),
        };
        (outcome, stats)
    }
}

/// Everything a shard or merge step needs, shared across the reduction.
struct RunCtx<'a> {
    num_items: u32,
    global_supports: &'a [u32],
    cfg: ParallelConfig,
    minsupp: u32,
    /// Transactions per shard (the last shard may be shorter).
    chunk: usize,
    /// Shards recovered after a thread panic.
    recovered: AtomicUsize,
    /// Governance state; `None` on an unlimited budget (zero off-path
    /// cost: shards then carry no governor at all).
    gov: Option<GovShared>,
}

/// Shared governance state of one governed parallel run.
struct GovShared {
    budget: Budget,
    /// Internal secondary token: the first tripped shard cancels it so
    /// sibling shards and pending merges stop at their next checkpoint.
    shared: CancelToken,
    /// First tripped reason (later `Cancelled` trips of the siblings do
    /// not overwrite it).
    tripped: Mutex<Option<TripReason>>,
    /// Total (weighted) transactions consumed by shard mining.
    processed: AtomicU64,
}

impl GovShared {
    fn governor(&self) -> Governor {
        self.budget.start_with_secondary(Some(self.shared.clone()))
    }

    fn note_trip(&self, reason: TripReason) {
        let mut t = self.tripped.lock().unwrap_or_else(|e| e.into_inner());
        if t.is_none() {
            *t = Some(reason);
        }
        drop(t);
        self.shared.cancel();
    }

    fn take_trip(&self) -> Option<TripReason> {
        *self.tripped.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mines one contiguous shard `txs` of the database into its own tree.
///
/// `global_supports` is the item-support snapshot over the *whole* database;
/// only this shard's own consumption is subtracted while it runs (see the
/// module docs for why that is the correct "remaining" bound).
///
/// Items that are globally hopeless (`global_supports[i] < minsupp`) are
/// filtered out of every transaction before insertion — no viable set can
/// contain them, and dropping them up front lets the per-shard pruning use
/// [`PrefixTree::prune_keeping_terminals`], which never reduces a stored
/// transaction and so keeps the merge replay exact for viable sets (the
/// plain per-node prune may eliminate locally hopeless but globally viable
/// items from a transaction, under-counting subsets after the merge).
fn mine_shard(txs: &[Box<[Item]>], ctx: &RunCtx) -> ShardTree {
    let RunCtx {
        num_items,
        global_supports,
        cfg,
        minsupp,
        ..
    } = *ctx;
    let mut gov = ctx.gov.as_ref().map(GovShared::governor);
    let mut tree = PrefixTree::new(num_items);
    let mut remaining: Vec<u32> = global_supports.to_vec();
    let mut pacer = PrunePacer::new(cfg.policy);
    // Filter globally hopeless items out of every transaction. Their
    // remaining counts can be settled immediately: no tree node ever
    // carries a hopeless item, so pruning never consults those entries.
    let mut filtered: Vec<Vec<Item>> = Vec::with_capacity(txs.len());
    for t in txs.iter() {
        let mut f = Vec::with_capacity(t.len());
        for &i in t.iter() {
            if global_supports[i as usize] >= minsupp {
                f.push(i);
            } else {
                remaining[i as usize] -= 1;
            }
        }
        filtered.push(f);
    }
    let weighted: Vec<(&[Item], u32)> = if cfg.coalesce {
        fim_core::coalesce(&filtered)
    } else {
        filtered.iter().map(|t| (t.as_slice(), 1)).collect()
    };
    for (t, w) in &weighted {
        for &i in t.iter() {
            remaining[i as usize] -= w;
        }
        tree.add_transaction_weighted(t, *w);
        if let Some(g) = gov.as_mut() {
            g.add_processed(u64::from(*w));
        }
        if let Some(reason) =
            checkpoint!(gov, tree.node_count(), tree.memory_stats().approx_bytes, 0)
        {
            // stop inserting; the tree stays merge-safe (terminal-keeping
            // pruning only) and represents exactly the inserted prefix.
            // `remaining` still carries the unconsumed occurrences, which
            // can only make later pruning more conservative — sound.
            if let Some(gs) = ctx.gov.as_ref() {
                gs.note_trip(reason);
            }
            break;
        }
        if pacer.due(tree.node_count()) {
            tree.prune_keeping_terminals(&remaining, minsupp);
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
    }
    if let (Some(gs), Some(g)) = (ctx.gov.as_ref(), gov.as_ref()) {
        gs.processed.fetch_add(g.processed(), Ordering::SeqCst);
    }
    ShardTree { tree, remaining }
}

/// A mined shard (or partially reduced group of shards): its prefix tree
/// plus the item occurrences *not yet folded into it* — the global
/// support snapshot minus everything the covered transactions consumed.
struct ShardTree {
    tree: PrefixTree,
    remaining: Vec<u32>,
}

/// Folds `right` into `left`, pruning mid-replay so the combined tree does
/// not balloon past what the per-shard pruning kept bounded. The remaining
/// counts are decremented transaction by transaction during the replay —
/// decrementing them all up front would over-prune nodes whose support has
/// not yet absorbed the still-unreplayed occurrences.
///
/// `is_final` marks the root of the reduction: its result is only reported,
/// never merged again, so the replay may use the plain (terminal-reducing)
/// prune, which shrinks the tree harder than the terminal-keeping variant
/// every intermediate level must use.
fn merge_pruned(left: &mut ShardTree, mut right: ShardTree, ctx: &RunCtx, is_final: bool) {
    let RunCtx { cfg, minsupp, .. } = *ctx;
    let mut gov = ctx.gov.as_ref().map(GovShared::governor);
    // replay the lighter side into the heavier one: replay cost is one
    // isect pass per distinct stored transaction of the source
    if right.tree.transactions_processed() > left.tree.transactions_processed() {
        std::mem::swap(left, &mut right);
    }
    let ShardTree { tree, remaining } = left;
    let mut pacer = PrunePacer::new(cfg.policy);
    // prune before replaying anything: shard trees are pruned against
    // near-global remaining counts (weak), while here `remaining` already
    // excludes everything this side consumed — the final merge in
    // particular can use the plain (terminal-reducing) prune and slash the
    // tree before the expensive replay passes begin
    if !matches!(cfg.policy, PrunePolicy::Never) {
        if is_final {
            tree.prune(remaining, minsupp);
        } else {
            tree.prune_keeping_terminals(remaining, minsupp);
        }
        if cfg.compact {
            tree.compact_if_fragmented();
        }
    }
    pacer.pruned(tree.node_count());
    let replay: Result<(), TripReason> = tree.try_merge_with(&right.tree, |tree, t, w| {
        for &i in t {
            remaining[i as usize] -= w;
        }
        if pacer.due(tree.node_count()) {
            if is_final {
                tree.prune(remaining, minsupp);
            } else {
                tree.prune_keeping_terminals(remaining, minsupp);
            }
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
        match checkpoint!(gov, tree.node_count(), tree.memory_stats().approx_bytes, 0) {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    });
    if let Err(reason) = replay {
        // the merged tree holds the replayed prefix exactly; the rest of
        // `right` is dropped and the reduction winds down via the token
        if let Some(gs) = ctx.gov.as_ref() {
            gs.note_trip(reason);
        }
    }
    // the replay itself counted in `tree`; carrying over the donor's own
    // mining history makes the reduced tree's counters the total work of
    // every shard and merge level
    tree.absorb_counters(right.tree.counters());
}

/// Mines the shards of `chunks` and reduces them to a single tree.
///
/// Recursive binary split: the right half runs on a freshly spawned scoped
/// thread while the left half runs on the current one, so the reduction
/// forms a balanced binary tree whose merges at different levels proceed
/// concurrently as their inputs finish — no global barrier between the
/// mining and merging phases.
fn mine_reduce(
    txs: &[Box<[Item]>],
    nchunks: usize,
    shard_base: usize,
    ctx: &RunCtx,
    is_final: bool,
) -> ShardTree {
    match nchunks {
        0 => ShardTree {
            tree: PrefixTree::new(ctx.num_items),
            remaining: ctx.global_supports.to_vec(),
        },
        1 => {
            test_hooks::maybe_panic(shard_base);
            mine_shard(txs, ctx)
        }
        n => {
            let mid = n / 2;
            let tx_mid = (mid * ctx.chunk).min(txs.len());
            let (left, right) = std::thread::scope(|s| {
                let right = std::thread::Builder::new()
                    .name("ista-shard".into())
                    .stack_size(SHARD_STACK_BYTES)
                    .spawn_scoped(s, || {
                        catch_unwind(AssertUnwindSafe(|| {
                            mine_reduce(&txs[tx_mid..], n - mid, shard_base + mid, ctx, false)
                        }))
                    })
                    .expect("failed to spawn shard thread");
                let left = catch_unwind(AssertUnwindSafe(|| {
                    mine_reduce(&txs[..tx_mid], mid, shard_base, ctx, false)
                }));
                // a panic that escaped the catch (impossible in practice)
                // still surfaces as Err through join
                (left, right.join().unwrap_or_else(Err))
            });
            // Panic isolation: a poisoned half is re-mined sequentially
            // once, as one flat shard over the same contiguous range — the
            // result is identical because shard boundaries only affect
            // scheduling, not the mined sets (additive-support merge).
            let mut left = left.unwrap_or_else(|_| recover_range(txs, 0, tx_mid, mid, ctx));
            let right =
                right.unwrap_or_else(|_| recover_range(txs, tx_mid, txs.len(), n - mid, ctx));
            merge_pruned(&mut left, right, ctx, is_final);
            left
        }
    }
}

/// Re-mines the transaction range `[lo, hi)` (covering `nshards` lost
/// shards) sequentially after its thread panicked. Runs on the surviving
/// thread with no further catch: a second panic over the same data is a
/// deterministic bug and must propagate.
fn recover_range(
    txs: &[Box<[Item]>],
    lo: usize,
    hi: usize,
    nshards: usize,
    ctx: &RunCtx,
) -> ShardTree {
    ctx.recovered.fetch_add(nshards, Ordering::SeqCst);
    mine_shard(&txs[lo..hi], ctx)
}

impl ClosedMiner for ParallelIstaMiner {
    fn name(&self) -> &'static str {
        "ista-par"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        self.mine_with_stats(db, minsupp).0
    }

    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        self.mine_governed_with_stats(db, minsupp, budget).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_across_thread_counts() {
        let db = paper_db();
        for threads in [1, 2, 3, 4, 7, 16] {
            for minsupp in 1..=8 {
                let want = mine_reference(&db, minsupp);
                let got = ParallelIstaMiner::with_threads(threads)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "threads={threads} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn more_threads_than_transactions() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1], vec![1, 2]], 3);
        let want = mine_reference(&db, 1);
        let got = ParallelIstaMiner::with_threads(64)
            .mine(&db, 1)
            .canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 0);
        assert!(ParallelIstaMiner::with_threads(4).mine(&db, 1).is_empty());
    }

    #[test]
    fn single_transaction() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 2, 4]], 5);
        let want = mine_reference(&db, 1);
        let got = ParallelIstaMiner::with_threads(4)
            .mine(&db, 1)
            .canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn pruning_policies_agree_with_reference() {
        let db = paper_db();
        let policies = [
            PrunePolicy::Never,
            PrunePolicy::EveryN(1),
            PrunePolicy::EveryN(2),
            PrunePolicy::Growth(1.1),
        ];
        for policy in policies {
            for threads in [2, 3] {
                for minsupp in 1..=8 {
                    let want = mine_reference(&db, minsupp);
                    let got = ParallelIstaMiner::with_config(ParallelConfig {
                        threads,
                        policy,
                        ..Default::default()
                    })
                    .mine(&db, minsupp)
                    .canonicalized();
                    assert_eq!(
                        got, want,
                        "policy={policy:?} threads={threads} ms={minsupp}"
                    );
                }
            }
        }
    }

    #[test]
    fn coalesce_and_compact_toggles_agree_with_reference() {
        let db = paper_db();
        for coalesce in [false, true] {
            for compact in [false, true] {
                for minsupp in 1..=8 {
                    let want = mine_reference(&db, minsupp);
                    let got = ParallelIstaMiner::with_config(ParallelConfig {
                        threads: 3,
                        policy: PrunePolicy::EveryN(1),
                        coalesce,
                        compact,
                    })
                    .mine(&db, minsupp)
                    .canonicalized();
                    assert_eq!(
                        got, want,
                        "coalesce={coalesce} compact={compact} ms={minsupp}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let db = paper_db();
        let want = mine_reference(&db, 2);
        let got = ParallelIstaMiner::default().mine(&db, 2).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn miner_name() {
        assert_eq!(ParallelIstaMiner::default().name(), "ista-par");
    }

    #[test]
    fn healthy_run_reports_zero_recoveries() {
        let db = paper_db();
        let (result, stats) = ParallelIstaMiner::with_threads(3).mine_with_stats(&db, 2);
        assert_eq!(result.canonicalized(), mine_reference(&db, 2));
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.shards_recovered, 0);
        assert!(stats.memory.live_nodes >= 1);
    }

    // Injected-panic recovery is exercised in tests/fault_injection.rs —
    // its process-global hook must not race the other parallel tests here.

    #[test]
    fn governed_unlimited_is_complete() {
        let db = paper_db();
        let (outcome, _) = ParallelIstaMiner::with_threads(3).mine_governed_with_stats(
            &db,
            2,
            &Budget::unlimited(),
        );
        assert!(!outcome.is_interrupted());
        assert_eq!(
            outcome.into_result().canonicalized(),
            mine_reference(&db, 2)
        );
    }

    #[test]
    fn cancelled_token_stops_all_shards() {
        let db = paper_db();
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let (outcome, _) =
            ParallelIstaMiner::with_threads(3).mine_governed_with_stats(&db, 1, &budget);
        match outcome {
            MineOutcome::Interrupted { reason, .. } => {
                assert_eq!(reason, TripReason::Cancelled);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn node_budget_interrupts_with_sound_partial() {
        let db = paper_db();
        let budget = Budget::unlimited().with_max_nodes(2);
        let (outcome, _) =
            ParallelIstaMiner::with_threads(3).mine_governed_with_stats(&db, 1, &budget);
        match outcome {
            MineOutcome::Interrupted {
                partial, reason, ..
            } => {
                assert_eq!(reason, TripReason::NodeBudget);
                // every reported support is exact for a transaction subset:
                // it can never exceed the support over the full database
                for fs in &partial.sets {
                    assert!(
                        fs.support <= db.support(&fs.items),
                        "partial support of {:?} exceeds the full-database support",
                        fs.items
                    );
                }
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn governed_sequential_fallback_still_governs() {
        let db = paper_db();
        let budget = Budget::unlimited().with_max_transactions(2);
        let (outcome, stats) =
            ParallelIstaMiner::with_threads(1).mine_governed_with_stats(&db, 1, &budget);
        assert_eq!(stats.shards, 1);
        assert!(outcome.is_interrupted());
    }
}

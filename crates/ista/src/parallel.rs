//! Data-parallel IsTa: shard the database, mine each shard's prefix tree on
//! its own thread, and combine the shard trees with [`PrefixTree::merge`] in
//! a binary reduction.
//!
//! The decomposition rests on the additive support identity
//!
//! ```text
//! supp_{D₁ ∪ D₂}(S) = supp_{D₁}(S) + supp_{D₂}(S)
//! ```
//!
//! for a database split into disjoint transaction multisets: the closed sets
//! of the union are the closed sets of the parts plus their pairwise
//! intersections, and replaying one shard tree's (deduplicated, possibly
//! pruning-reduced) transactions into another via the ordinary cumulative
//! intersection update computes exactly those intersections with correct
//! summed supports.
//!
//! Shards are **contiguous** transaction ranges, so the §3.4
//! size-then-lexicographic processing order is preserved inside each shard.
//! Item-elimination pruning keeps working per shard: a shard starts from a
//! snapshot of the *global* item support counts and decrements only the
//! occurrences it has itself consumed — occurrences held by other shards are
//! still "remaining" because they arrive later through the merge, so the
//! viability bound `supp + remaining[i] ≥ minsupp` stays safe.

use crate::miner::{IstaConfig, IstaMiner, PrunePacer, PrunePolicy};
use crate::tree::PrefixTree;
use fim_core::{ClosedMiner, Item, MiningResult, RecodedDatabase};

/// Stack size for shard threads. The `isect` traversal recurses to the
/// tree depth, which is bounded by the longest transaction and can reach
/// tens of thousands of frames on gene-expression-shaped data; the
/// reservation is virtual and only committed as used.
const SHARD_STACK_BYTES: usize = 256 << 20;

/// Tuning knobs for [`ParallelIstaMiner`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelConfig {
    /// Number of shards/threads. `0` means "use the available parallelism
    /// of the machine"; `1` falls back to the sequential miner.
    pub threads: usize,
    /// Per-shard pruning placement policy (same semantics as the
    /// sequential miner's).
    pub policy: PrunePolicy,
    /// Coalesce each shard's (hopeless-item-filtered) transactions into
    /// `(items, weight)` pairs before insertion (same semantics as
    /// [`IstaConfig::coalesce`]).
    pub coalesce: bool,
    /// Compact shard/merge trees after pruning passes that freed slots
    /// (same semantics as [`IstaConfig::compact`]).
    pub compact: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        let seq = IstaConfig::default();
        ParallelConfig {
            threads: 0,
            policy: seq.policy,
            coalesce: seq.coalesce,
            compact: seq.compact,
        }
    }
}

impl ParallelConfig {
    /// Configuration with an explicit thread count and the default policy.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..Default::default()
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Data-parallel IsTa miner: contiguous shards on scoped threads, combined
/// by a binary merge reduction.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelIstaMiner {
    /// Algorithm configuration.
    pub config: ParallelConfig,
}

impl ParallelIstaMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: ParallelConfig) -> Self {
        ParallelIstaMiner { config }
    }

    /// Creates a miner with `threads` shards and the default prune policy.
    pub fn with_threads(threads: usize) -> Self {
        ParallelIstaMiner {
            config: ParallelConfig::with_threads(threads),
        }
    }
}

/// Mines one contiguous shard `txs` of the database into its own tree.
///
/// `global_supports` is the item-support snapshot over the *whole* database;
/// only this shard's own consumption is subtracted while it runs (see the
/// module docs for why that is the correct "remaining" bound).
///
/// Items that are globally hopeless (`global_supports[i] < minsupp`) are
/// filtered out of every transaction before insertion — no viable set can
/// contain them, and dropping them up front lets the per-shard pruning use
/// [`PrefixTree::prune_keeping_terminals`], which never reduces a stored
/// transaction and so keeps the merge replay exact for viable sets (the
/// plain per-node prune may eliminate locally hopeless but globally viable
/// items from a transaction, under-counting subsets after the merge).
fn mine_shard(
    txs: &[Box<[Item]>],
    num_items: u32,
    global_supports: &[u32],
    cfg: ParallelConfig,
    minsupp: u32,
) -> ShardTree {
    let mut tree = PrefixTree::new(num_items);
    let mut remaining: Vec<u32> = global_supports.to_vec();
    let mut pacer = PrunePacer::new(cfg.policy);
    // Filter globally hopeless items out of every transaction. Their
    // remaining counts can be settled immediately: no tree node ever
    // carries a hopeless item, so pruning never consults those entries.
    let mut filtered: Vec<Vec<Item>> = Vec::with_capacity(txs.len());
    for t in txs.iter() {
        let mut f = Vec::with_capacity(t.len());
        for &i in t.iter() {
            if global_supports[i as usize] >= minsupp {
                f.push(i);
            } else {
                remaining[i as usize] -= 1;
            }
        }
        filtered.push(f);
    }
    let weighted: Vec<(&[Item], u32)> = if cfg.coalesce {
        fim_core::coalesce(&filtered)
    } else {
        filtered.iter().map(|t| (t.as_slice(), 1)).collect()
    };
    for (t, w) in &weighted {
        for &i in t.iter() {
            remaining[i as usize] -= w;
        }
        tree.add_transaction_weighted(t, *w);
        if pacer.due(tree.node_count()) {
            tree.prune_keeping_terminals(&remaining, minsupp);
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
    }
    ShardTree { tree, remaining }
}

/// A mined shard (or partially reduced group of shards): its prefix tree
/// plus the item occurrences *not yet folded into it* — the global
/// support snapshot minus everything the covered transactions consumed.
struct ShardTree {
    tree: PrefixTree,
    remaining: Vec<u32>,
}

/// Folds `right` into `left`, pruning mid-replay so the combined tree does
/// not balloon past what the per-shard pruning kept bounded. The remaining
/// counts are decremented transaction by transaction during the replay —
/// decrementing them all up front would over-prune nodes whose support has
/// not yet absorbed the still-unreplayed occurrences.
///
/// `is_final` marks the root of the reduction: its result is only reported,
/// never merged again, so the replay may use the plain (terminal-reducing)
/// prune, which shrinks the tree harder than the terminal-keeping variant
/// every intermediate level must use.
fn merge_pruned(
    left: &mut ShardTree,
    mut right: ShardTree,
    cfg: ParallelConfig,
    minsupp: u32,
    is_final: bool,
) {
    // replay the lighter side into the heavier one: replay cost is one
    // isect pass per distinct stored transaction of the source
    if right.tree.transactions_processed() > left.tree.transactions_processed() {
        std::mem::swap(left, &mut right);
    }
    let ShardTree { tree, remaining } = left;
    let mut pacer = PrunePacer::new(cfg.policy);
    // prune before replaying anything: shard trees are pruned against
    // near-global remaining counts (weak), while here `remaining` already
    // excludes everything this side consumed — the final merge in
    // particular can use the plain (terminal-reducing) prune and slash the
    // tree before the expensive replay passes begin
    if !matches!(cfg.policy, PrunePolicy::Never) {
        if is_final {
            tree.prune(remaining, minsupp);
        } else {
            tree.prune_keeping_terminals(remaining, minsupp);
        }
        if cfg.compact {
            tree.compact_if_fragmented();
        }
    }
    pacer.pruned(tree.node_count());
    tree.merge_with(&right.tree, |tree, t, w| {
        for &i in t {
            remaining[i as usize] -= w;
        }
        if pacer.due(tree.node_count()) {
            if is_final {
                tree.prune(remaining, minsupp);
            } else {
                tree.prune_keeping_terminals(remaining, minsupp);
            }
            pacer.pruned(tree.node_count());
            if cfg.compact {
                tree.compact_if_fragmented();
            }
        }
    });
}

/// Mines the shards of `chunks` and reduces them to a single tree.
///
/// Recursive binary split: the right half runs on a freshly spawned scoped
/// thread while the left half runs on the current one, so the reduction
/// forms a balanced binary tree whose merges at different levels proceed
/// concurrently as their inputs finish — no global barrier between the
/// mining and merging phases.
fn mine_reduce(
    chunks: &[&[Box<[Item]>]],
    num_items: u32,
    global_supports: &[u32],
    cfg: ParallelConfig,
    minsupp: u32,
    is_final: bool,
) -> ShardTree {
    match chunks.len() {
        0 => ShardTree {
            tree: PrefixTree::new(num_items),
            remaining: global_supports.to_vec(),
        },
        1 => mine_shard(chunks[0], num_items, global_supports, cfg, minsupp),
        n => {
            let mid = n / 2;
            let (mut left, right) = std::thread::scope(|s| {
                let right = std::thread::Builder::new()
                    .name("ista-shard".into())
                    .stack_size(SHARD_STACK_BYTES)
                    .spawn_scoped(s, || {
                        mine_reduce(
                            &chunks[mid..],
                            num_items,
                            global_supports,
                            cfg,
                            minsupp,
                            false,
                        )
                    })
                    .expect("failed to spawn shard thread");
                let left = mine_reduce(
                    &chunks[..mid],
                    num_items,
                    global_supports,
                    cfg,
                    minsupp,
                    false,
                );
                (left, right.join().expect("shard thread panicked"))
            });
            merge_pruned(&mut left, right, cfg, minsupp, is_final);
            left
        }
    }
}

impl ClosedMiner for ParallelIstaMiner {
    fn name(&self) -> &'static str {
        "ista-par"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let threads = self.config.effective_threads();
        if threads <= 1 || db.transactions().len() <= 1 {
            return IstaMiner::with_config(IstaConfig {
                policy: self.config.policy,
                coalesce: self.config.coalesce,
                compact: self.config.compact,
            })
            .mine(db, minsupp);
        }
        let txs = db.transactions();
        let chunk = txs.len().div_ceil(threads);
        let chunks: Vec<&[Box<[Item]>]> = txs.chunks(chunk).collect();
        let reduced = mine_reduce(
            &chunks,
            db.num_items(),
            db.item_supports(),
            self.config,
            minsupp,
            true,
        );
        MiningResult {
            sets: reduced.tree.report(minsupp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_across_thread_counts() {
        let db = paper_db();
        for threads in [1, 2, 3, 4, 7, 16] {
            for minsupp in 1..=8 {
                let want = mine_reference(&db, minsupp);
                let got = ParallelIstaMiner::with_threads(threads)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "threads={threads} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn more_threads_than_transactions() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1], vec![1, 2]], 3);
        let want = mine_reference(&db, 1);
        let got = ParallelIstaMiner::with_threads(64)
            .mine(&db, 1)
            .canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 0);
        assert!(ParallelIstaMiner::with_threads(4).mine(&db, 1).is_empty());
    }

    #[test]
    fn single_transaction() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 2, 4]], 5);
        let want = mine_reference(&db, 1);
        let got = ParallelIstaMiner::with_threads(4)
            .mine(&db, 1)
            .canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn pruning_policies_agree_with_reference() {
        let db = paper_db();
        let policies = [
            PrunePolicy::Never,
            PrunePolicy::EveryN(1),
            PrunePolicy::EveryN(2),
            PrunePolicy::Growth(1.1),
        ];
        for policy in policies {
            for threads in [2, 3] {
                for minsupp in 1..=8 {
                    let want = mine_reference(&db, minsupp);
                    let got = ParallelIstaMiner::with_config(ParallelConfig {
                        threads,
                        policy,
                        ..Default::default()
                    })
                    .mine(&db, minsupp)
                    .canonicalized();
                    assert_eq!(
                        got, want,
                        "policy={policy:?} threads={threads} ms={minsupp}"
                    );
                }
            }
        }
    }

    #[test]
    fn coalesce_and_compact_toggles_agree_with_reference() {
        let db = paper_db();
        for coalesce in [false, true] {
            for compact in [false, true] {
                for minsupp in 1..=8 {
                    let want = mine_reference(&db, minsupp);
                    let got = ParallelIstaMiner::with_config(ParallelConfig {
                        threads: 3,
                        policy: PrunePolicy::EveryN(1),
                        coalesce,
                        compact,
                    })
                    .mine(&db, minsupp)
                    .canonicalized();
                    assert_eq!(
                        got, want,
                        "coalesce={coalesce} compact={compact} ms={minsupp}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let db = paper_db();
        let want = mine_reference(&db, 2);
        let got = ParallelIstaMiner::default().mine(&db, 2).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn miner_name() {
        assert_eq!(ParallelIstaMiner::default().name(), "ista-par");
    }
}

//! # fim-carpenter
//!
//! The **Carpenter** algorithm (Pan et al., KDD 2003) in the two improved
//! implementations of Borgelt et al. (EDBT 2011, §3.1): closed frequent item
//! set mining by *enumerating and intersecting transaction sets* — the
//! divide-and-conquer scheme of item set enumeration applied to transaction
//! indices instead of items.
//!
//! Both variants share the same search ([`search`]) and the same
//! duplicate-suppressing [`Repository`] prefix tree; they differ in how the
//! database is represented:
//!
//! * [`CarpenterListMiner`] (§3.1.1) — a vertical representation: one
//!   ascending transaction-index list per item, with per-recursion cursors
//!   that track the next unprocessed index (the Rust analog of the C
//!   implementation's pointer arithmetic).
//! * [`CarpenterTableMiner`] (§3.1.2) — the `n × |B|` suffix-count matrix of
//!   paper Table 1, which makes both the membership test and the
//!   item-elimination counter a single array lookup.
//!
//! The search applies three prunings, all individually switchable through
//! [`CarpenterConfig`] for the ablation experiments:
//!
//! 1. *perfect extension* (transaction absorption): a transaction containing
//!    the whole current intersection is included unconditionally,
//! 2. *item elimination*: an item is dropped from an intersection as soon as
//!    its included-count plus remaining occurrences cannot reach minimum
//!    support (the paper's "considerable speed-up"),
//! 3. *repository subtree pruning*: a node whose intersection was already
//!    reported cannot produce anything new and is cut.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lists;
pub mod repo;
pub mod search;
pub mod table;

pub use lists::{BitsetListRep, CarpenterListMiner, ListRep};
pub use repo::Repository;
pub use search::{search_governed, search_governed_with_stats, search_with_stats, CarpenterConfig};
pub use table::CarpenterTableMiner;

//! The repository of already-reported closed item sets (paper §3.1.1).
//!
//! A prefix tree whose **top level is a flat array** indexed by item code —
//! important because the data sets Carpenter targets have very many items,
//! so the top level is densely populated and a sibling list would degrade
//! to a long linear scan. Deeper levels are expected to be sparse and use
//! plain sibling lists (descending item order, children below their parent's
//! item, exactly like the IsTa tree).
//!
//! Sets are stored along the path of their items in descending order; a
//! `terminal` marker distinguishes inserted sets from mere path prefixes.

use fim_core::Item;

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct RNode {
    item: Item,
    sibling: u32,
    children: u32,
    terminal: bool,
}

/// Prefix-tree repository with a flat top-level array.
#[derive(Clone, Debug)]
pub struct Repository {
    /// Per item code: root of the subtree for sets whose largest item is
    /// that code, or `NONE`.
    top: Vec<u32>,
    /// Terminal flags for top-level singletons `{i}`.
    top_terminal: Vec<bool>,
    nodes: Vec<RNode>,
    len: usize,
}

impl Repository {
    /// Creates an empty repository over `num_items` item codes.
    pub fn new(num_items: u32) -> Self {
        Repository {
            top: vec![NONE; num_items as usize],
            top_terminal: vec![false; num_items as usize],
            nodes: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored sets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated tree nodes (excluding the flat top level).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `items` (strictly ascending) was inserted before.
    pub fn contains(&self, items: &[Item]) -> bool {
        let Some((&first, rest)) = items.split_last() else {
            return false; // the empty set is never stored
        };
        if rest.is_empty() {
            return self.top_terminal[first as usize];
        }
        let mut list = self.top[first as usize];
        // walk the remaining items in descending order
        for (pos, &item) in rest.iter().rev().enumerate() {
            let node = loop {
                if list == NONE {
                    return false;
                }
                let n = &self.nodes[list as usize];
                match n.item.cmp(&item) {
                    std::cmp::Ordering::Greater => list = n.sibling,
                    std::cmp::Ordering::Equal => break list,
                    std::cmp::Ordering::Less => return false,
                }
            };
            let n = &self.nodes[node as usize];
            if pos + 1 == rest.len() {
                return n.terminal;
            }
            list = n.children;
        }
        unreachable!("loop returns for the last item")
    }

    /// Inserts `items` (strictly ascending, non-empty). Returns `true` if
    /// the set was new, `false` if it was already present.
    pub fn insert(&mut self, items: &[Item]) -> bool {
        let (&first, rest) = items
            .split_last()
            .expect("cannot insert the empty set into the repository");
        if rest.is_empty() {
            let t = &mut self.top_terminal[first as usize];
            let new = !*t;
            *t = true;
            self.len += usize::from(new);
            return new;
        }
        // descend from the flat top level, creating nodes as needed;
        // `slot` is the field the current sibling list hangs off
        enum Slot {
            Top(usize),
            Child(u32),
            Sib(u32),
        }
        let mut slot = Slot::Top(first as usize);
        let mut last_node = NONE;
        for &item in rest.iter().rev() {
            // find `item` in the sibling list at `slot`
            loop {
                let head = match slot {
                    Slot::Top(i) => self.top[i],
                    Slot::Child(n) => self.nodes[n as usize].children,
                    Slot::Sib(n) => self.nodes[n as usize].sibling,
                };
                if head != NONE && self.nodes[head as usize].item > item {
                    slot = Slot::Sib(head);
                } else if head != NONE && self.nodes[head as usize].item == item {
                    last_node = head;
                    slot = Slot::Child(head);
                    break;
                } else {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(RNode {
                        item,
                        sibling: head,
                        children: NONE,
                        terminal: false,
                    });
                    match slot {
                        Slot::Top(i) => self.top[i] = idx,
                        Slot::Child(n) => self.nodes[n as usize].children = idx,
                        Slot::Sib(n) => self.nodes[n as usize].sibling = idx,
                    }
                    last_node = idx;
                    slot = Slot::Child(idx);
                    break;
                }
            }
        }
        let t = &mut self.nodes[last_node as usize].terminal;
        let new = !*t;
        *t = true;
        self.len += usize::from(new);
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_repository() {
        let r = Repository::new(5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(!r.contains(&[0]));
        assert!(!r.contains(&[1, 3]));
        assert!(!r.contains(&[]));
    }

    #[test]
    fn insert_and_lookup_singletons() {
        let mut r = Repository::new(4);
        assert!(r.insert(&[2]));
        assert!(!r.insert(&[2]));
        assert!(r.contains(&[2]));
        assert!(!r.contains(&[1]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.node_count(), 0, "singletons live in the flat top level");
    }

    #[test]
    fn prefixes_are_not_members() {
        let mut r = Repository::new(6);
        assert!(r.insert(&[0, 2, 5]));
        assert!(r.contains(&[0, 2, 5]));
        assert!(!r.contains(&[2, 5]), "path prefix is not a member");
        assert!(!r.contains(&[5]));
        assert!(!r.contains(&[0, 5]));
        assert!(r.insert(&[2, 5]));
        assert!(r.contains(&[2, 5]));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn shared_prefix_paths() {
        let mut r = Repository::new(8);
        assert!(r.insert(&[1, 3, 7]));
        assert!(r.insert(&[2, 3, 7]));
        assert!(r.insert(&[0, 1, 3, 7]));
        assert!(r.contains(&[1, 3, 7]));
        assert!(r.contains(&[2, 3, 7]));
        assert!(r.contains(&[0, 1, 3, 7]));
        assert!(!r.contains(&[0, 2, 3, 7]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn sibling_order_handles_any_insert_order() {
        let mut r = Repository::new(10);
        assert!(r.insert(&[1, 9]));
        assert!(r.insert(&[5, 9]));
        assert!(r.insert(&[3, 9]));
        assert!(r.insert(&[7, 9]));
        for i in [1u32, 3, 5, 7] {
            assert!(r.contains(&[i, 9]), "{{{i},9}}");
        }
        assert!(!r.contains(&[2, 9]));
        assert!(!r.contains(&[9]));
    }

    #[test]
    fn deep_chain() {
        let mut r = Repository::new(32);
        let set: Vec<Item> = (0..32).collect();
        assert!(r.insert(&set));
        assert!(r.contains(&set));
        assert!(!r.contains(&set[..31]));
        assert!(!r.contains(&set[1..]));
        assert!(r.insert(&set[1..]));
        assert!(r.contains(&set[1..]));
    }

    #[test]
    fn len_counts_distinct_sets() {
        let mut r = Repository::new(4);
        r.insert(&[0, 1]);
        r.insert(&[0, 1]);
        r.insert(&[0, 2]);
        r.insert(&[3]);
        r.insert(&[3]);
        assert_eq!(r.len(), 3);
    }
}

//! The shared Carpenter search: transaction-set enumeration with
//! perfect-extension absorption, item elimination, and repository pruning.
//!
//! The recursion enumerates, in ascending transaction order, which
//! transaction is intersected next (paper §3.1). A node is described by the
//! current intersection `I`, the number `k` of transactions already known to
//! contain it, and the next transaction index to consider. Thanks to the
//! include-before-exclude order, the *first* time a closed set is completed
//! its `k` equals the exact support, and any later completion finds it in
//! the [`Repository`] and is suppressed.

use crate::repo::Repository;
use fim_core::{
    checkpoint, constraint::area, Budget, ConstraintSet, FoundSet, Governor, ItemSet, MineOutcome,
    MiningResult, Progress, Tid, TripReason,
};
use fim_obs::{Counter, Counters};

/// Pruning switches for the Carpenter search (all on by default).
///
/// Disabling a switch never changes the mined output, only the running
/// time — exercised by the ablation tests and the `pruning` experiment
/// runner (E9).
#[derive(Clone, Copy, Debug)]
pub struct CarpenterConfig {
    /// Transaction absorption (the perfect-extension analog, §3.1):
    /// a transaction containing the whole current intersection is included
    /// unconditionally instead of branching.
    pub perfect_extension: bool,
    /// Item elimination (§3.1.1): drop an item from an intersection once
    /// its included-count plus remaining occurrences cannot reach minimum
    /// support.
    pub item_elimination: bool,
    /// Cut a subtree as soon as its intersection is already in the
    /// repository.
    pub repo_prune: bool,
    /// Early-stopping intersections (Nguyen 2019): skip probing an item
    /// whose count of already-matched transactions plus a cheap upper
    /// bound on its remaining occurrences (the unscanned tail of its tid
    /// list, or the suffix-count entry) cannot reach minimum support. The
    /// bound may lag behind the exact remaining count, so it only ever
    /// *overestimates* — a skipped item is genuinely hopeless, making the
    /// skip output-neutral like item elimination.
    pub early_stop: bool,
}

impl Default for CarpenterConfig {
    fn default() -> Self {
        CarpenterConfig {
            perfect_extension: true,
            item_elimination: true,
            repo_prune: true,
            early_stop: true,
        }
    }
}

impl CarpenterConfig {
    /// All prunings disabled (slowest, for ablation baselines).
    pub fn unpruned() -> Self {
        CarpenterConfig {
            perfect_extension: false,
            item_elimination: false,
            repo_prune: false,
            early_stop: false,
        }
    }
}

/// Database representation driving the search. Implemented by the
/// list-based ([`crate::lists`]) and table-based ([`crate::table`])
/// variants.
pub trait Representation {
    /// The representation of a current intersection.
    type State;

    /// The state for the full item base (the search root, paper `(B, ∅, 1)`).
    fn initial_state(&self) -> Self::State;

    /// Number of items in the state.
    fn state_len(&self, state: &Self::State) -> usize;

    /// Number of transactions.
    fn num_transactions(&self) -> u32;

    /// Intersects `state` with transaction `tid` (advancing any internal
    /// cursors in `state`). Returns the sub-state of matched items and the
    /// raw match count *before* item elimination. When
    /// `config.item_elimination` is set, items whose `k_new` included
    /// occurrences plus occurrences in transactions after `tid` cannot
    /// reach `minsupp` are dropped from the returned state. When
    /// `config.early_stop` is set, the representation may skip probing a
    /// hopeless item entirely (it then counts toward neither the raw match
    /// count nor the sub-state; undercounting the raw matches only
    /// disables perfect-extension absorption, which is output-neutral).
    ///
    /// `counters` receives the representation's per-probe accounting
    /// ([`Counter::TidEarlyStops`], [`Counter::Eliminations`]).
    fn intersect(
        &self,
        state: &mut Self::State,
        tid: Tid,
        k_new: u32,
        minsupp: u32,
        config: CarpenterConfig,
        counters: &mut Counters,
    ) -> (usize, Self::State);

    /// The item set represented by a state (strictly ascending codes).
    fn items_of(&self, state: &Self::State) -> ItemSet;
}

/// Runs the Carpenter search over `rep` and returns all closed frequent
/// item sets with support ≥ `minsupp`.
pub fn search<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
) -> MiningResult {
    search_with_stats(rep, num_items, minsupp, config).0
}

/// Like [`search`], also returning the hot-loop counters of the run:
/// search steps, absorptions, eliminations, early stops, and repository
/// probes/hits (the accounting the paper's §4 evaluation asks about).
pub fn search_with_stats<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
) -> (MiningResult, Counters) {
    search_impl(rep, num_items, minsupp.max(1), config, None)
}

/// Constrained Carpenter search with the monotone / convertible
/// constraints pushed into the recursion.
///
/// The transaction-set enumeration *shrinks* its intersection state with
/// depth, which makes it the natural host for the monotone constraints: a
/// node whose state has fewer items than `min_size`, or no longer contains
/// every must-include item, cannot emit a satisfying set anywhere below —
/// nor can it affect any satisfying set's support, because the first
/// completion of a satisfying set happens along ancestors whose states all
/// contain it (include-first order). Min-area cuts on the envelope bound
/// `(k + remaining) × state_len`, and additionally raises the effective
/// support floor ([`ConstraintSet::support_floor`]). Max-size cannot cut
/// recursion (deeper nodes shrink back under the bound) and is applied at
/// emission only.
///
/// Emission keeps the repository insert unconditional: a set failing the
/// constraints is still recorded so that later, inexact-`k` completions of
/// the same set stay suppressed. That is sound because a later completion
/// has the same items and a support no larger than the exact first one, so
/// it fails the (support-independent or support-monotone) constraints
/// whenever the first completion did.
pub fn search_constrained_with_stats<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
    constraints: &ConstraintSet,
) -> (MiningResult, Counters) {
    let eff = constraints.support_floor(num_items, minsupp.max(1));
    if eff == u32::MAX {
        return (MiningResult::new(), Counters::new());
    }
    search_impl(rep, num_items, eff, config, Some(constraints))
}

fn search_impl<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
    cs: Option<&ConstraintSet>,
) -> (MiningResult, Counters) {
    let mut repo = Repository::new(num_items);
    let mut out = Vec::new();
    let mut counters = Counters::new();
    let mut root = rep.initial_state();
    if rep.state_len(&root) > 0 && rep.num_transactions() > 0 {
        // with no governor installed the recursion cannot trip
        let ungoverned: Result<(), TripReason> = recurse(
            rep,
            &mut root,
            0,
            0,
            minsupp,
            config,
            cs,
            &mut repo,
            &mut out,
            &mut None,
            &mut counters,
        );
        debug_assert!(ungoverned.is_ok());
    }
    (MiningResult { sets: out }, counters)
}

/// Like [`search`], under a resource [`Budget`]. The enumeration checks the
/// governor once per search-tree node and once per emitted set; on a trip
/// the partial result is the subset of the answer emitted so far — every
/// set in it is a closed frequent set of the full database with its exact
/// support (the include-first order makes every emission final).
///
/// The [`Progress`] counts emitted sets; the search-space size is unknown
/// up front, so `total` is `None`.
pub fn search_governed<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
    budget: &Budget,
) -> MineOutcome {
    search_governed_with_stats(rep, num_items, minsupp, config, budget).0
}

/// Like [`search_governed`], also returning the hot-loop counters (they
/// describe the work done up to the trip point on an interrupted run).
pub fn search_governed_with_stats<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
    budget: &Budget,
) -> (MineOutcome, Counters) {
    search_governed_impl(rep, num_items, minsupp.max(1), config, None, budget)
}

/// Governed constrained search: the pushes of
/// [`search_constrained_with_stats`] under a resource [`Budget`]. An
/// interrupted partial contains only satisfying closed sets with exact
/// supports — every emission is final, exactly as in the unconstrained
/// governed search.
pub fn search_constrained_governed_with_stats<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
    constraints: &ConstraintSet,
    budget: &Budget,
) -> (MineOutcome, Counters) {
    let eff = constraints.support_floor(num_items, minsupp.max(1));
    if eff == u32::MAX {
        return (MineOutcome::complete(MiningResult::new()), Counters::new());
    }
    search_governed_impl(rep, num_items, eff, config, Some(constraints), budget)
}

fn search_governed_impl<R: Representation>(
    rep: &R,
    num_items: u32,
    minsupp: u32,
    config: CarpenterConfig,
    cs: Option<&ConstraintSet>,
    budget: &Budget,
) -> (MineOutcome, Counters) {
    let mut counters = Counters::new();
    let mut gov = Some(budget.start());
    if let Some(reason) = checkpoint!(gov, 0, 0, 0) {
        let outcome = MineOutcome::Interrupted {
            partial: MiningResult::new(),
            reason,
            progress: Progress {
                processed: 0,
                total: None,
            },
        };
        return (outcome, counters);
    }
    let mut repo = Repository::new(num_items);
    let mut out = Vec::new();
    let mut root = rep.initial_state();
    let tripped = if rep.state_len(&root) > 0 && rep.num_transactions() > 0 {
        recurse(
            rep,
            &mut root,
            0,
            0,
            minsupp,
            config,
            cs,
            &mut repo,
            &mut out,
            &mut gov,
            &mut counters,
        )
        .err()
    } else {
        None
    };
    let outcome = match tripped {
        Some(reason) => {
            let processed = gov.as_ref().map_or(0, Governor::processed);
            MineOutcome::Interrupted {
                partial: MiningResult { sets: out },
                reason,
                progress: Progress {
                    processed,
                    total: None,
                },
            }
        }
        None => MineOutcome::complete(MiningResult { sets: out }),
    };
    (outcome, counters)
}

#[allow(clippy::too_many_arguments)]
fn recurse<R: Representation>(
    rep: &R,
    state: &mut R::State,
    mut k: u32,
    start: Tid,
    minsupp: u32,
    config: CarpenterConfig,
    cs: Option<&ConstraintSet>,
    repo: &mut Repository,
    out: &mut Vec<FoundSet>,
    gov: &mut Option<Governor>,
    counters: &mut Counters,
) -> Result<(), TripReason> {
    if let Some(reason) = checkpoint!(gov, 0, 0, out.len()) {
        return Err(reason);
    }
    counters.bump(Counter::SearchSteps);
    let n = rep.num_transactions();
    let state_len = rep.state_len(state);
    if config.repo_prune {
        counters.bump(Counter::RepoLookups);
        let items = rep.items_of(state);
        if repo.contains(items.as_slice()) {
            counters.bump(Counter::RepoHits);
            return Ok(()); // everything below was already explored earlier
        }
    }
    // constraint push: states only shrink below here, so a state that is
    // already too small, misses a must-include item, or cannot reach the
    // area bound even with every remaining transaction included, has no
    // satisfying emission anywhere in its subtree (and no first completion
    // of a satisfying set runs through it — see
    // `search_constrained_with_stats`). Max-size deliberately absent.
    if let Some(cs) = cs {
        if (state_len as u32) < cs.min_size
            || area(k + (n - start), state_len) < cs.min_area
            || !(cs.include.is_empty() || cs.include.is_subset_of(&rep.items_of(state)))
        {
            counters.bump(Counter::ConstraintPrunes);
            return Ok(());
        }
    }
    for tid in start..n {
        // nothing below can reach minimum support anymore
        if k + (n - tid) < minsupp {
            return Ok(());
        }
        let (raw_len, mut sub) = rep.intersect(state, tid, k + 1, minsupp, config, counters);
        if raw_len == state_len {
            // transaction contains the whole intersection
            if config.perfect_extension {
                counters.bump(Counter::AbsorptionHits);
                k += 1; // absorb: no exclude branch can produce output
                continue;
            }
            // unpruned variant: explicit include branch; the exclude branch
            // is the continuation of this loop (item elimination may still
            // have emptied the sub-state, in which case nothing below the
            // include branch can be frequent)
            if rep.state_len(&sub) > 0 {
                recurse(
                    rep,
                    &mut sub,
                    k + 1,
                    tid + 1,
                    minsupp,
                    config,
                    cs,
                    repo,
                    out,
                    gov,
                    counters,
                )?;
            }
            continue;
        }
        if rep.state_len(&sub) > 0 {
            recurse(
                rep,
                &mut sub,
                k + 1,
                tid + 1,
                minsupp,
                config,
                cs,
                repo,
                out,
                gov,
                counters,
            )?;
        }
    }
    // leaf for the current intersection: `k` now counts every transaction
    // containing it (include-first order makes the first arrival exact)
    if k >= minsupp {
        let items = rep.items_of(state);
        // the insert stays unconditional under constraints: a failing set is
        // still recorded so later, inexact-`k` completions of the same items
        // are suppressed — they would fail the (support-independent or
        // support-monotone) predicates identically
        if repo.insert(items.as_slice()) {
            if cs.is_some_and(|c| !c.satisfied_by(&items, k)) {
                counters.bump(Counter::ConstraintPrunes);
            } else {
                out.push(FoundSet::new(items, k));
                if let Some(g) = gov.as_mut() {
                    g.add_processed(1);
                }
                // emissions also happen while the stack unwinds, where no
                // node entry intervenes — checkpoint here too, so a set
                // budget trips promptly
                if let Some(reason) = checkpoint!(gov, 0, 0, out.len()) {
                    return Err(reason);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially correct representation over owned transactions, used to
    /// test the search logic independently of the list/table machinery.
    struct NaiveRep {
        txs: Vec<Vec<u32>>,
        num_items: u32,
    }

    impl Representation for NaiveRep {
        type State = Vec<u32>;
        fn initial_state(&self) -> Vec<u32> {
            (0..self.num_items).collect()
        }
        fn state_len(&self, s: &Vec<u32>) -> usize {
            s.len()
        }
        fn num_transactions(&self) -> u32 {
            self.txs.len() as u32
        }
        fn intersect(
            &self,
            state: &mut Vec<u32>,
            tid: Tid,
            _k_new: u32,
            _minsupp: u32,
            _config: CarpenterConfig,
            _counters: &mut Counters,
        ) -> (usize, Vec<u32>) {
            let t = &self.txs[tid as usize];
            let matched: Vec<u32> = state.iter().copied().filter(|i| t.contains(i)).collect();
            (matched.len(), matched)
        }
        fn items_of(&self, s: &Vec<u32>) -> ItemSet {
            ItemSet::from_sorted(s.clone())
        }
    }

    fn paper_rep() -> NaiveRep {
        NaiveRep {
            txs: vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            num_items: 5,
        }
    }

    #[test]
    fn search_matches_reference_on_paper_example() {
        use fim_core::{recode::RecodedDatabase, reference::mine_reference};
        let rep = paper_rep();
        let db = RecodedDatabase::from_dense(rep.txs.clone(), 5);
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = search(&rep, 5, minsupp, CarpenterConfig::default()).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn all_pruning_combinations_agree() {
        use fim_core::{recode::RecodedDatabase, reference::mine_reference};
        let rep = paper_rep();
        let db = RecodedDatabase::from_dense(rep.txs.clone(), 5);
        for pe in [false, true] {
            for rp in [false, true] {
                let config = CarpenterConfig {
                    perfect_extension: pe,
                    item_elimination: false, // NaiveRep does not implement it
                    repo_prune: rp,
                    early_stop: false, // nor this
                };
                for minsupp in 1..=5 {
                    let want = mine_reference(&db, minsupp);
                    let got = search(&rep, 5, minsupp, config).canonicalized();
                    assert_eq!(got, want, "pe={pe} rp={rp} minsupp={minsupp}");
                }
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let rep = NaiveRep {
            txs: vec![],
            num_items: 3,
        };
        assert!(search(&rep, 3, 1, CarpenterConfig::default()).is_empty());
        let rep = NaiveRep {
            txs: vec![vec![0]],
            num_items: 0,
        };
        assert!(search(&rep, 0, 1, CarpenterConfig::default()).is_empty());
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let rep = paper_rep();
        for minsupp in 1..=5 {
            let want = search(&rep, 5, minsupp, CarpenterConfig::default()).canonicalized();
            let outcome = search_governed(
                &rep,
                5,
                minsupp,
                CarpenterConfig::default(),
                &Budget::unlimited(),
            );
            assert!(!outcome.is_interrupted());
            assert_eq!(outcome.into_result().canonicalized(), want);
        }
    }

    #[test]
    fn set_budget_partial_is_a_subset_of_the_answer() {
        use fim_core::{recode::RecodedDatabase, reference::mine_reference};
        let rep = paper_rep();
        let db = RecodedDatabase::from_dense(rep.txs.clone(), 5);
        let full = mine_reference(&db, 1);
        for cap in 0..full.len() {
            let budget = Budget::unlimited().with_max_closed_sets(cap);
            let outcome = search_governed(&rep, 5, 1, CarpenterConfig::default(), &budget);
            match outcome {
                MineOutcome::Interrupted {
                    partial,
                    reason,
                    progress,
                } => {
                    assert_eq!(reason, TripReason::ClosedSetBudget);
                    assert_eq!(progress.processed, partial.len() as u64);
                    assert!(partial.len() <= cap + 1, "cap {cap}");
                    for fs in &partial.sets {
                        assert_eq!(
                            full.support_of(&fs.items),
                            Some(fs.support),
                            "cap {cap}: {:?} must be a closed set with exact support",
                            fs.items
                        );
                    }
                }
                other => panic!("cap {cap}: expected interruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_before_start_returns_empty_partial() {
        let rep = paper_rep();
        let token = fim_core::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token);
        let outcome = search_governed(&rep, 5, 1, CarpenterConfig::default(), &budget);
        match outcome {
            MineOutcome::Interrupted {
                partial, reason, ..
            } => {
                assert!(partial.is_empty());
                assert_eq!(reason, TripReason::Cancelled);
            }
            other => panic!("expected interruption, got {other:?}"),
        }
    }

    #[test]
    fn zero_timeout_trips_the_search() {
        let rep = paper_rep();
        let budget = Budget::unlimited().with_timeout(std::time::Duration::from_secs(0));
        let outcome = search_governed(&rep, 5, 1, CarpenterConfig::default(), &budget);
        assert!(outcome.is_interrupted());
    }

    #[test]
    fn single_transaction_reported_once() {
        let rep = NaiveRep {
            txs: vec![vec![1, 3]],
            num_items: 4,
        };
        let r = search(&rep, 4, 1, CarpenterConfig::default());
        assert_eq!(r.len(), 1);
        assert_eq!(r.sets[0].items, ItemSet::from([1, 3]));
        assert_eq!(r.sets[0].support, 1);
    }
}

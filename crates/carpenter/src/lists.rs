//! The list-based Carpenter variant (paper §3.1.1).
//!
//! The database is held vertically as one ascending transaction-index list
//! per item ([`TidLists`]); the current intersection is a vector of
//! `(item, cursor)` pairs where the cursor points at the first index of the
//! item's list that has not been passed yet. Because the recursion only
//! ever moves forward through the transaction indices, cursors advance
//! monotonically — the Rust analog of the pointer arithmetic the paper uses
//! in C. The cursor also yields the remaining-occurrence count for item
//! elimination in O(1).

use crate::search::{
    search, search_constrained_governed_with_stats, search_constrained_with_stats, search_governed,
    search_governed_with_stats, search_with_stats, CarpenterConfig, Representation,
};
use fim_core::{
    gallop_advance, Budget, ClosedMiner, ConstraintSet, Item, ItemSet, MineOutcome, MiningResult,
    RecodedDatabase, Representation as KernelRep, Tid, TidLists, WordSet,
};
use fim_obs::{Counter, Counters};

/// The vertical (tid-list) representation.
pub struct ListRep {
    lists: TidLists,
    num_items: u32,
    gallop: bool,
}

impl ListRep {
    /// Builds the representation from a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        ListRep {
            lists: TidLists::from_database(db),
            num_items: db.num_items(),
            gallop: false,
        }
    }

    /// Like [`from_database`](Self::from_database) but with galloping
    /// (exponential-search) cursor advances instead of the linear walk.
    /// The cursor lands on exactly the same index either way, so every
    /// downstream decision — probe, early stop, elimination — is identical.
    pub fn from_database_gallop(db: &RecodedDatabase) -> Self {
        ListRep {
            gallop: true,
            ..ListRep::from_database(db)
        }
    }

    /// The probe loop of [`Representation::intersect`], monomorphized over
    /// the early-stop check (so the plain scan carries no bound arithmetic)
    /// and the cursor-advance kernel.
    #[allow(clippy::too_many_arguments)]
    fn scan<const EARLY: bool, const GALLOP: bool>(
        &self,
        state: &mut [(Item, u32)],
        tid: Tid,
        k_new: u32,
        need: u32,
        minsupp: u32,
        config: CarpenterConfig,
        counters: &mut Counters,
    ) -> (usize, Vec<(Item, u32)>) {
        let mut raw = 0usize;
        let mut sub = Vec::with_capacity(state.len());
        for (item, cur) in state.iter_mut() {
            let list = self.lists.list(*item);
            if EARLY && (list.len() as u32 - *cur) < need {
                // Early stop: even if every unscanned entry of this item's
                // list matched a future transaction, no set containing the
                // item can reach `minsupp` below this node — skip both the
                // cursor advance and the probe. The cursor may lag behind
                // `tid`, so `len - cur` only ever overestimates the true
                // remaining count: a skipped item is genuinely hopeless.
                counters.bump(Counter::TidEarlyStops);
                continue;
            }
            if GALLOP {
                let (next, probes) = gallop_advance(list, *cur as usize, tid);
                counters.add(Counter::GallopProbes, probes);
                *cur = next as u32;
            } else {
                while (*cur as usize) < list.len() && list[*cur as usize] < tid {
                    *cur += 1;
                }
            }
            if (*cur as usize) < list.len() && list[*cur as usize] == tid {
                raw += 1;
                let remaining_after = (list.len() - *cur as usize - 1) as u32;
                if !config.item_elimination || k_new + remaining_after >= minsupp {
                    sub.push((*item, *cur + 1));
                } else {
                    counters.bump(Counter::Eliminations);
                }
            }
        }
        (raw, sub)
    }
}

impl Representation for ListRep {
    /// `(item, cursor into the item's tid list)` pairs, ascending by item.
    type State = Vec<(Item, u32)>;

    fn initial_state(&self) -> Self::State {
        (0..self.num_items).map(|i| (i, 0)).collect()
    }

    fn state_len(&self, state: &Self::State) -> usize {
        state.len()
    }

    fn num_transactions(&self) -> u32 {
        self.lists.num_transactions()
    }

    fn intersect(
        &self,
        state: &mut Self::State,
        tid: Tid,
        k_new: u32,
        minsupp: u32,
        config: CarpenterConfig,
        counters: &mut Counters,
    ) -> (usize, Self::State) {
        // `need` is how many more matches the current intersection still
        // requires; once `k_new >= minsupp` the early-stop bound can never
        // fire, so the scan can drop the per-item check entirely. The
        // split is monomorphized so the checking code costs nothing when
        // it cannot trigger (the bound is a rare event on dense data, but
        // it sat on every probe of every item).
        let need = minsupp.saturating_sub(k_new);
        match (config.early_stop && need > 0, self.gallop) {
            (true, false) => {
                self.scan::<true, false>(state, tid, k_new, need, minsupp, config, counters)
            }
            (false, false) => {
                self.scan::<false, false>(state, tid, k_new, need, minsupp, config, counters)
            }
            (true, true) => {
                self.scan::<true, true>(state, tid, k_new, need, minsupp, config, counters)
            }
            (false, true) => {
                self.scan::<false, true>(state, tid, k_new, need, minsupp, config, counters)
            }
        }
    }

    fn items_of(&self, state: &Self::State) -> ItemSet {
        ItemSet::from_sorted(state.iter().map(|&(i, _)| i).collect())
    }
}

/// The vertical bitset representation: one packed [`WordSet`] of
/// transaction ids per item, with per-word prefix popcounts so the exact
/// remaining-occurrence count `supp − rank(tid)` is one popcount away.
///
/// Unlike [`ListRep`] there are no cursors to advance — a membership probe
/// is a word test — and the early-stop/elimination bounds are *exact*
/// rather than the cursor-lag overestimate (both are sound: they only ever
/// skip items that genuinely cannot reach minimum support).
pub struct BitsetListRep {
    sets: Vec<WordSet>,
    ranks: Vec<Vec<u32>>,
    supports: Vec<u32>,
    num_items: u32,
    num_transactions: u32,
}

impl BitsetListRep {
    /// Builds the representation from a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        let lists = TidLists::from_database(db);
        let n = lists.num_transactions();
        let sets: Vec<WordSet> = (0..db.num_items())
            .map(|i| WordSet::from_sorted(lists.list(i), n as usize))
            .collect();
        let ranks = sets.iter().map(WordSet::prefix_ranks).collect();
        let supports = sets.iter().map(WordSet::count).collect();
        BitsetListRep {
            sets,
            ranks,
            supports,
            num_items: db.num_items(),
            num_transactions: n,
        }
    }

    /// Number of the item's transactions with id < `tid`, in O(1) via the
    /// precomputed per-word prefix ranks plus one partial-word popcount.
    fn rank_at(&self, item: Item, tid: Tid) -> u32 {
        let w = (tid / 64) as usize;
        let below = self.sets[item as usize].words()[w] & ((1u64 << (tid % 64)) - 1);
        self.ranks[item as usize][w] + below.count_ones()
    }
}

impl Representation for BitsetListRep {
    /// The items of the current intersection, strictly ascending. No
    /// cursors: the prefix ranks replace them.
    type State = Vec<Item>;

    fn initial_state(&self) -> Self::State {
        (0..self.num_items).collect()
    }

    fn state_len(&self, state: &Self::State) -> usize {
        state.len()
    }

    fn num_transactions(&self) -> u32 {
        self.num_transactions
    }

    fn intersect(
        &self,
        state: &mut Self::State,
        tid: Tid,
        k_new: u32,
        minsupp: u32,
        config: CarpenterConfig,
        counters: &mut Counters,
    ) -> (usize, Self::State) {
        let need = minsupp.saturating_sub(k_new);
        let mut raw = 0usize;
        let mut sub = Vec::with_capacity(state.len());
        for &item in state.iter() {
            let supp = self.supports[item as usize];
            let rank = self.rank_at(item, tid);
            counters.bump(Counter::PopcountCalls);
            if config.early_stop && need > 0 && supp - rank < need {
                // exact remaining count: every one of the item's tids ≥ tid
                // matching could not lift the intersection to minsupp
                counters.bump(Counter::TidEarlyStops);
                continue;
            }
            if self.sets[item as usize].contains(tid) {
                raw += 1;
                let remaining_after = supp - rank - 1;
                if !config.item_elimination || k_new + remaining_after >= minsupp {
                    sub.push(item);
                } else {
                    counters.bump(Counter::Eliminations);
                }
            }
        }
        (raw, sub)
    }

    fn items_of(&self, state: &Self::State) -> ItemSet {
        ItemSet::from_sorted(state.clone())
    }
}

/// The list-based Carpenter miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct CarpenterListMiner {
    /// Pruning configuration.
    pub config: CarpenterConfig,
    /// Physical tid-set layout driving the search. Output-invariant.
    pub rep: KernelRep,
}

/// Runs `$body` with `$rep` bound to the representation matching the
/// miner's kernel selection (each arm monomorphizes the search separately).
macro_rules! dispatch_rep {
    ($self:ident, $db:ident, |$rep:ident| $body:expr) => {
        match $self.rep {
            KernelRep::Bitset => {
                let $rep = BitsetListRep::from_database($db);
                $body
            }
            KernelRep::Gallop => {
                let $rep = ListRep::from_database_gallop($db);
                $body
            }
            KernelRep::Scalar => {
                let $rep = ListRep::from_database($db);
                $body
            }
        }
    };
}

impl CarpenterListMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: CarpenterConfig) -> Self {
        CarpenterListMiner {
            config,
            ..Default::default()
        }
    }

    /// Creates a miner with an explicit tid-set representation.
    pub fn with_rep(rep: KernelRep) -> Self {
        CarpenterListMiner {
            rep,
            ..Default::default()
        }
    }

    /// Like [`ClosedMiner::mine`] but also returns the search counters
    /// (steps, absorptions, eliminations, early stops, repository probes,
    /// and the kernel accounting of the selected representation).
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, Counters) {
        dispatch_rep!(self, db, |rep| search_with_stats(
            &rep,
            db.num_items(),
            minsupp,
            self.config
        ))
    }

    /// Like [`ClosedMiner::mine_governed`] but also returns the counters.
    pub fn mine_governed_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        budget: &Budget,
    ) -> (MineOutcome, Counters) {
        dispatch_rep!(self, db, |rep| search_governed_with_stats(
            &rep,
            db.num_items(),
            minsupp,
            self.config,
            budget
        ))
    }

    /// Like [`ClosedMiner::mine_constrained`] but also returns the
    /// counters (`constraint_prunes` among them).
    pub fn mine_constrained_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> (MiningResult, Counters) {
        dispatch_rep!(self, db, |rep| search_constrained_with_stats(
            &rep,
            db.num_items(),
            minsupp,
            self.config,
            constraints
        ))
    }
}

impl ClosedMiner for CarpenterListMiner {
    fn name(&self) -> &'static str {
        match self.rep {
            KernelRep::Scalar => "carpenter-lists",
            KernelRep::Bitset => "carpenter-lists-bitset",
            KernelRep::Gallop => "carpenter-lists-gallop",
        }
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        dispatch_rep!(self, db, |rep| search(
            &rep,
            db.num_items(),
            minsupp,
            self.config
        ))
    }

    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        dispatch_rep!(self, db, |rep| search_governed(
            &rep,
            db.num_items(),
            minsupp,
            self.config,
            budget
        ))
    }

    fn supports_constraints(&self) -> bool {
        true
    }

    fn mine_constrained(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> MiningResult {
        self.mine_constrained_with_stats(db, minsupp, constraints).0
    }

    fn mine_constrained_governed(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
        budget: &Budget,
    ) -> MineOutcome {
        dispatch_rep!(self, db, |rep| search_constrained_governed_with_stats(
            &rep,
            db.num_items(),
            minsupp,
            self.config,
            constraints,
            budget
        )
        .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = CarpenterListMiner::default()
                .mine(&db, minsupp)
                .canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn pruning_ablations_agree() {
        let db = paper_db();
        let configs = [
            CarpenterConfig::default(),
            CarpenterConfig::unpruned(),
            CarpenterConfig {
                item_elimination: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                perfect_extension: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                repo_prune: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                early_stop: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                early_stop: true,
                ..CarpenterConfig::unpruned()
            },
            CarpenterConfig {
                early_stop: true,
                item_elimination: false,
                ..CarpenterConfig::default()
            },
        ];
        for minsupp in 1..=6 {
            let want = mine_reference(&db, minsupp);
            for c in configs {
                let got = CarpenterListMiner::with_config(c)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "config={c:?} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn cursor_advance_is_monotone() {
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (_, _) = rep.intersect(&mut s, 3, 1, 1, CarpenterConfig::unpruned(), &mut c);
        // after probing tid 3, every cursor sits at the first tid >= 3
        for &(item, cur) in &s {
            let list = rep.lists.list(item);
            assert!(list[..cur as usize].iter().all(|&t| t < 3), "item {item}");
            assert!(
                (cur as usize) == list.len() || list[cur as usize] >= 3,
                "item {item}"
            );
        }
    }

    #[test]
    fn item_elimination_drops_doomed_items() {
        let elim_only = CarpenterConfig {
            early_stop: false,
            ..CarpenterConfig::default()
        };
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        let mut s = rep.initial_state();
        // intersect with t5 (= tid 4, items {1,2}) at k_new=1, minsupp=5:
        // item 1 occurs in tids 0,2,3,4,5 → 1 remaining after tid 4 → 1+1 < 5 drop
        // item 2 occurs in tids 0,2,3,4,7 → 1 remaining after       → drop
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 4, 1, 5, elim_only, &mut c);
        assert_eq!(raw, 2);
        assert!(sub.is_empty());
        assert_eq!(c.get(Counter::Eliminations), 2);
        // without elimination both stay
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 4, 1, 5, CarpenterConfig::unpruned(), &mut c);
        assert_eq!(raw, 2);
        assert_eq!(rep.items_of(&sub), ItemSet::from([1, 2]));
        assert_eq!(c.get(Counter::Eliminations), 0);
    }

    #[test]
    fn early_stop_skips_hopeless_probes() {
        let es_only = CarpenterConfig {
            early_stop: true,
            ..CarpenterConfig::unpruned()
        };
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        // intersect with tid 1 ({0,3,4}) at k_new=1, minsupp=5: item 4 has
        // a 3-entry tid list (1,6,7) → 1 + 3 < 5, so its probe is skipped
        // entirely — it matches tid 1 yet counts toward neither raw nor sub,
        // and its cursor stays untouched
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 1, 1, 5, es_only, &mut c);
        assert_eq!(raw, 2, "item 4 matched but was skipped");
        assert_eq!(rep.items_of(&sub), ItemSet::from([0, 3]));
        assert_eq!(s[4], (4, 0), "skipped cursor must not advance");
        assert!(c.get(Counter::TidEarlyStops) >= 1);
        // without early stop the same probe counts item 4
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 1, 1, 5, CarpenterConfig::unpruned(), &mut c);
        assert_eq!(raw, 3);
        assert_eq!(rep.items_of(&sub), ItemSet::from([0, 3, 4]));
    }

    #[test]
    fn miner_name() {
        assert_eq!(CarpenterListMiner::default().name(), "carpenter-lists");
        assert_eq!(
            CarpenterListMiner::with_rep(KernelRep::Bitset).name(),
            "carpenter-lists-bitset"
        );
        assert_eq!(
            CarpenterListMiner::with_rep(KernelRep::Gallop).name(),
            "carpenter-lists-gallop"
        );
    }

    #[test]
    fn all_representations_match_reference() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            for rep in [KernelRep::Scalar, KernelRep::Bitset, KernelRep::Gallop] {
                let got = CarpenterListMiner::with_rep(rep)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "rep={rep} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn bitset_rep_pruning_ablations_agree() {
        let db = paper_db();
        let configs = [
            CarpenterConfig::default(),
            CarpenterConfig::unpruned(),
            CarpenterConfig {
                item_elimination: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                early_stop: false,
                ..CarpenterConfig::default()
            },
        ];
        for minsupp in 1..=6 {
            let want = mine_reference(&db, minsupp);
            for c in configs {
                let miner = CarpenterListMiner {
                    config: c,
                    rep: KernelRep::Bitset,
                };
                let got = miner.mine(&db, minsupp).canonicalized();
                assert_eq!(got, want, "config={c:?} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn bitset_rank_is_exact_remaining_bound() {
        let db = paper_db();
        let bits = BitsetListRep::from_database(&db);
        let lists = TidLists::from_database(&db);
        for item in 0..db.num_items() {
            for tid in 0..db.transactions().len() as Tid {
                let want = lists.list(item).iter().filter(|&&t| t < tid).count() as u32;
                assert_eq!(bits.rank_at(item, tid), want, "item={item} tid={tid}");
            }
        }
    }

    #[test]
    fn gallop_cursor_lands_where_linear_does() {
        let db = paper_db();
        let lin = ListRep::from_database(&db);
        let gal = ListRep::from_database_gallop(&db);
        let mut s_lin = lin.initial_state();
        let mut s_gal = gal.initial_state();
        let mut c = Counters::new();
        for tid in [1, 3, 6] {
            lin.intersect(&mut s_lin, tid, 1, 1, CarpenterConfig::unpruned(), &mut c);
            gal.intersect(&mut s_gal, tid, 1, 1, CarpenterConfig::unpruned(), &mut c);
            assert_eq!(s_lin, s_gal, "after tid {tid}");
        }
        assert!(c.get(Counter::GallopProbes) > 0);
    }
}
